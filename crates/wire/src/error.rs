//! Typed wire-stack errors and the retry policy.
//!
//! The wire client and server never `unwrap` on the hot path: every
//! failure either maps to a [`WireError`] variant the caller can act on
//! (retry, fail over, report a Failed outcome) or is counted and
//! dropped. The taxonomy distinguishes the *phase* that failed, because
//! the recovery differs: a dead PING round retries with backoff, a
//! mid-probe stall fails over to the next-best server, a feedback loss
//! is tolerated outright.

use crate::proto::ProtoError;
use std::net::SocketAddr;
use std::time::Duration;

/// The protocol phase an error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestPhase {
    /// Server selection (PING / PONG).
    Ping,
    /// Paced data probing.
    Probe,
    /// Client feedback on the reverse path.
    Feedback,
}

impl std::fmt::Display for TestPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TestPhase::Ping => "ping",
            TestPhase::Probe => "probe",
            TestPhase::Feedback => "feedback",
        })
    }
}

/// Errors a wire test can hit.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A malformed datagram where a well-formed one was required.
    Proto(ProtoError),
    /// No server answered any PING round, including retries.
    NoServerReachable {
        /// How many candidate servers were pinged per round.
        attempted: usize,
        /// How many ping rounds ran before giving up.
        rounds: u32,
    },
    /// The selected server stopped sending mid-phase.
    ServerStalled {
        /// The server that went quiet.
        server: SocketAddr,
        /// How long the client waited without receiving anything.
        idle: Duration,
    },
    /// Every ranked server was tried and each one failed.
    AllServersFailed {
        /// How many servers the client attempted a test against.
        attempted: usize,
    },
    /// A phase overran its deadline.
    Deadline {
        /// The phase that timed out.
        phase: TestPhase,
        /// The deadline that was exceeded.
        after: Duration,
    },
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ProtoError> for WireError {
    fn from(e: ProtoError) -> Self {
        WireError::Proto(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Proto(e) => write!(f, "protocol error: {e}"),
            WireError::NoServerReachable { attempted, rounds } => write!(
                f,
                "no test server answered PING ({attempted} candidates, {rounds} rounds)"
            ),
            WireError::ServerStalled { server, idle } => {
                write!(f, "server {server} went quiet for {idle:?} mid-test")
            }
            WireError::AllServersFailed { attempted } => {
                write!(f, "all {attempted} ranked servers failed")
            }
            WireError::Deadline { phase, after } => {
                write!(f, "{phase} phase exceeded its {after:?} deadline")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

/// Bounded exponential backoff for retryable phases.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retry.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Growth factor between consecutive delays.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 2,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        Self {
            attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff before retry number `retry` (0-based): `base × mult^retry`,
    /// clamped to `max_delay`.
    pub fn delay(&self, retry: u32) -> Duration {
        let scaled = self.base_delay.as_secs_f64() * self.multiplier.powi(retry as i32);
        Duration::from_secs_f64(scaled.min(self.max_delay.as_secs_f64()))
    }

    /// Worst-case total time spent sleeping between attempts.
    pub fn total_backoff(&self) -> Duration {
        (0..self.attempts.saturating_sub(1))
            .map(|i| self.delay(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_clamps() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(500),
            multiplier: 2.0,
        };
        assert_eq!(p.delay(0), Duration::from_millis(100));
        assert_eq!(p.delay(1), Duration::from_millis(200));
        assert_eq!(p.delay(2), Duration::from_millis(400));
        assert_eq!(p.delay(3), Duration::from_millis(500), "clamped");
        assert_eq!(p.delay(10), Duration::from_millis(500));
    }

    #[test]
    fn no_retry_has_no_backoff() {
        let p = RetryPolicy::no_retry();
        assert_eq!(p.attempts, 1);
        assert_eq!(p.total_backoff(), Duration::ZERO);
    }

    #[test]
    fn errors_display_their_context() {
        let e = WireError::NoServerReachable {
            attempted: 3,
            rounds: 2,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('2'), "{s}");
        let e = WireError::AllServersFailed { attempted: 4 };
        assert!(e.to_string().contains('4'));
        let e: WireError = ProtoError::Truncated.into();
        assert!(matches!(e, WireError::Proto(ProtoError::Truncated)));
    }
}
