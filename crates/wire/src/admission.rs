//! Session admission control for the long-running Swiftest service.
//!
//! A BTS serving a metro area is not a lab harness: clients arrive in
//! bursts, tenants misbehave, and the server must keep in-flight tests
//! accurate instead of admitting everyone into a congested collapse.
//! This module is the policy layer that decides, per `Hello`, whether a
//! session may start:
//!
//! - **Authentication** — each tenant holds a shared-secret token;
//!   unknown (tenant, token) pairs are rejected `BadToken`.
//! - **Rate limiting** — a per-tenant token bucket caps session starts
//!   per second with a configurable burst; empty bucket rejects
//!   `RateLimited`.
//! - **Bounded admission queue** — a granted `Hello` becomes a
//!   *pending ticket* the client must claim with its `RateRequest`
//!   within a TTL. The pending set is bounded; when it is full new
//!   `Hello`s are rejected `Capacity`, so a SYN-flood of handshakes
//!   cannot grow server state without bound.
//! - **Load shedding** — a hysteresis state machine (Normal →
//!   Shedding → Normal) driven by the live inflight-session count:
//!   above `shed_enter · max_sessions` new sessions are rejected
//!   `Overloaded` until the count falls below `shed_exit ·
//!   max_sessions`. Shedding protects the pacing accuracy of tests
//!   already running — the paper's estimates are only meaningful if
//!   the emulated capacity is not oversubscribed.
//! - **Drain** — a sticky terminal state for graceful shutdown: every
//!   new `Hello` is rejected `Draining` while in-flight sessions run
//!   to completion.
//!
//! The controller is *time-parameterized*: every method takes an
//! explicit `now: Duration` (time since an arbitrary epoch). The real
//! server feeds it `Instant::now() - epoch`; the `mbw-bench` load
//! harness feeds it virtual time, so tens of thousands of simulated
//! clients exercise the exact policy code that gates real sockets.

use crate::proto::RejectReason;
use mbw_telemetry::ServiceMetrics;
use std::collections::HashMap;
use std::time::Duration;

/// One tenant's credentials and rate-limit budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant identifier carried in `Hello`.
    pub tenant: u64,
    /// Shared-secret token the tenant must present.
    pub token: u64,
    /// Sustained session starts per second (token-bucket refill rate).
    pub sessions_per_sec: f64,
    /// Burst allowance (token-bucket depth).
    pub burst: f64,
}

impl TenantConfig {
    /// A tenant with sane service defaults: 50 session starts/s
    /// sustained, bursts of 100.
    pub fn new(tenant: u64, token: u64) -> Self {
        TenantConfig {
            tenant,
            token,
            sessions_per_sec: 50.0,
            burst: 100.0,
        }
    }
}

/// Admission policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Known tenants. Empty means *open admission*: any (tenant, token)
    /// authenticates and shares one default rate budget per tenant id.
    pub tenants: Vec<TenantConfig>,
    /// Hard cap on concurrently admitted (claimed or pending) sessions.
    pub max_sessions: usize,
    /// Bound on granted-but-unclaimed tickets (the admission queue).
    pub queue_depth: usize,
    /// How long a granted ticket may sit unclaimed before it expires.
    pub pending_ttl: Duration,
    /// Fraction of `max_sessions` at which shedding engages.
    pub shed_enter: f64,
    /// Fraction of `max_sessions` at which shedding disengages
    /// (strictly below `shed_enter` for hysteresis).
    pub shed_exit: f64,
}

impl AdmissionConfig {
    /// Open admission (no tenant list) with the given session cap.
    pub fn open(max_sessions: usize) -> Self {
        AdmissionConfig {
            tenants: Vec::new(),
            max_sessions,
            queue_depth: max_sessions.div_ceil(4).max(8),
            pending_ttl: Duration::from_secs(2),
            shed_enter: 0.90,
            shed_exit: 0.75,
        }
    }

    /// Same policy, restricted to the given tenants.
    pub fn with_tenants(mut self, tenants: Vec<TenantConfig>) -> Self {
        self.tenants = tenants;
        self
    }

    fn inflight_limit(&self) -> usize {
        self.max_sessions.max(1)
    }

    fn shed_enter_at(&self) -> usize {
        ((self.inflight_limit() as f64) * self.shed_enter.clamp(0.0, 1.0)).ceil() as usize
    }

    fn shed_exit_at(&self) -> usize {
        ((self.inflight_limit() as f64) * self.shed_exit.clamp(0.0, 1.0)).floor() as usize
    }
}

/// The load-shedding state machine's states, in telemetry label order
/// (`mbw_telemetry::service::SHED_STATE_LABELS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedState {
    /// Admitting normally.
    Normal,
    /// Above the high-water mark: rejecting new sessions `Overloaded`
    /// to protect in-flight tests.
    Shedding,
    /// Graceful shutdown: rejecting everything `Draining`; sticky.
    Drain,
}

impl ShedState {
    /// Index into `SHED_STATE_LABELS`.
    pub fn label_index(self) -> usize {
        match self {
            ShedState::Normal => 0,
            ShedState::Shedding => 1,
            ShedState::Drain => 2,
        }
    }
}

/// Outcome of an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Granted: a pending ticket now awaits the session's claim.
    Granted,
    /// Rejected, with the typed reason to put on the wire.
    Rejected(RejectReason),
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refill_per_sec: f64,
    depth: f64,
    last: Duration,
}

impl Bucket {
    fn take(&mut self, now: Duration) -> bool {
        let dt = now.saturating_sub(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.depth);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The admission decision engine. Single-owner, interior state only —
/// the server wraps it in its session-map mutex; the load harness owns
/// it outright.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    metrics: ServiceMetrics,
    state: ShedState,
    /// Granted tickets not yet claimed: session id → (grant time, tenant).
    pending: HashMap<u64, (Duration, u64)>,
    /// Sessions that claimed their ticket and are running.
    inflight: usize,
    buckets: HashMap<u64, Bucket>,
}

impl AdmissionController {
    /// Build a controller reporting through `metrics`.
    pub fn new(config: AdmissionConfig, metrics: ServiceMetrics) -> Self {
        AdmissionController {
            config,
            metrics,
            state: ShedState::Normal,
            pending: HashMap::new(),
            inflight: 0,
            buckets: HashMap::new(),
        }
    }

    /// Current shed state.
    pub fn state(&self) -> ShedState {
        self.state
    }

    /// Claimed, still-running sessions.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Granted-but-unclaimed tickets.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The policy in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decide a `Hello{tenant, token, session}` arriving at `now`.
    pub fn request(&mut self, tenant: u64, token: u64, session: u64, now: Duration) -> Admission {
        self.expire_pending(now);
        if self.state == ShedState::Drain {
            return self.reject(RejectReason::Draining);
        }
        if !self.authenticate(tenant, token) {
            return self.reject(RejectReason::BadToken);
        }
        self.step_shedding();
        if self.state == ShedState::Shedding {
            return self.reject(RejectReason::Overloaded);
        }
        if self.pending.contains_key(&session) {
            // Re-sent Hello for an already-granted ticket (the first
            // Admit was lost): refresh the grant, charge nothing.
            self.pending.insert(session, (now, tenant));
            return Admission::Granted;
        }
        if self.pending.len() >= self.config.queue_depth
            || self.pending.len() + self.inflight >= self.config.inflight_limit()
        {
            return self.reject(RejectReason::Capacity);
        }
        if !self.bucket_for(tenant).take(now) {
            return self.reject(RejectReason::RateLimited);
        }
        self.pending.insert(session, (now, tenant));
        self.metrics.observe_admitted(self.inflight);
        Admission::Granted
    }

    /// Claim a granted ticket when the session's `RateRequest` arrives,
    /// returning the tenant that was granted it. `None` means there is
    /// no live ticket (expired, never granted, or already claimed) — on
    /// a server that enforces admission, such a session is refused.
    pub fn claim(&mut self, session: u64, now: Duration) -> Option<u64> {
        self.expire_pending(now);
        if let Some((_, tenant)) = self.pending.remove(&session) {
            self.inflight += 1;
            self.metrics.set_inflight(self.inflight);
            self.step_shedding();
            Some(tenant)
        } else {
            None
        }
    }

    /// Release one claimed session (it stopped, timed out, or its
    /// socket died).
    pub fn release(&mut self, _session: u64) {
        self.inflight = self.inflight.saturating_sub(1);
        self.metrics.set_inflight(self.inflight);
        self.step_shedding();
    }

    /// Enter the sticky Drain state: all further `Hello`s are rejected
    /// `Draining`; in-flight sessions run to completion.
    pub fn begin_drain(&mut self) {
        if self.state != ShedState::Drain {
            self.transition(ShedState::Drain);
            self.pending.clear();
        }
    }

    /// True once draining and nothing is left in flight.
    pub fn drained(&self) -> bool {
        self.state == ShedState::Drain && self.inflight == 0
    }

    fn authenticate(&self, tenant: u64, token: u64) -> bool {
        if self.config.tenants.is_empty() {
            return true;
        }
        self.config
            .tenants
            .iter()
            .any(|t| t.tenant == tenant && t.token == token)
    }

    fn bucket_for(&mut self, tenant: u64) -> &mut Bucket {
        let (rate, depth) = self
            .config
            .tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map(|t| (t.sessions_per_sec, t.burst))
            .unwrap_or((50.0, 100.0));
        self.buckets.entry(tenant).or_insert(Bucket {
            tokens: depth,
            refill_per_sec: rate.max(0.0),
            depth: depth.max(1.0),
            last: Duration::ZERO,
        })
    }

    fn expire_pending(&mut self, now: Duration) {
        let ttl = self.config.pending_ttl;
        self.pending
            .retain(|_, (granted, _)| now.saturating_sub(*granted) <= ttl);
    }

    /// Hysteresis: engage shedding above the high-water mark, recover
    /// only once load falls below the (lower) exit mark. Drain is
    /// sticky and never left.
    fn step_shedding(&mut self) {
        match self.state {
            ShedState::Drain => {}
            ShedState::Normal => {
                if self.inflight >= self.config.shed_enter_at() {
                    self.transition(ShedState::Shedding);
                }
            }
            ShedState::Shedding => {
                if self.inflight <= self.config.shed_exit_at() {
                    self.transition(ShedState::Normal);
                }
            }
        }
    }

    fn transition(&mut self, to: ShedState) {
        self.state = to;
        self.metrics.observe_shed_transition(to.label_index());
    }

    fn reject(&self, reason: RejectReason) -> Admission {
        self.metrics.observe_rejected(reason.label_index());
        Admission::Rejected(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_telemetry::Registry;

    fn controller(config: AdmissionConfig) -> AdmissionController {
        let registry = Registry::new();
        AdmissionController::new(config, ServiceMetrics::register(&registry))
    }

    fn t(secs: f64) -> Duration {
        Duration::from_secs_f64(secs)
    }

    #[test]
    fn open_admission_grants_and_claims() {
        let mut c = controller(AdmissionConfig::open(16));
        assert_eq!(c.request(1, 0, 100, t(0.0)), Admission::Granted);
        assert_eq!(c.pending(), 1);
        assert_eq!(c.claim(100, t(0.1)), Some(1));
        assert_eq!(c.inflight(), 1);
        assert_eq!(c.pending(), 0);
        assert!(c.claim(100, t(0.2)).is_none(), "ticket is single-use");
        c.release(100);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn bad_token_rejected_when_tenants_configured() {
        let cfg = AdmissionConfig::open(16).with_tenants(vec![TenantConfig::new(7, 0x5EC12E7)]);
        let mut c = controller(cfg);
        assert_eq!(
            c.request(7, 0xBAD, 1, t(0.0)),
            Admission::Rejected(RejectReason::BadToken)
        );
        assert_eq!(
            c.request(8, 0x5EC12E7, 2, t(0.0)),
            Admission::Rejected(RejectReason::BadToken)
        );
        assert_eq!(c.request(7, 0x5EC12E7, 3, t(0.0)), Admission::Granted);
    }

    #[test]
    fn rate_limit_exhausts_and_refills() {
        let mut tenant = TenantConfig::new(1, 42);
        tenant.sessions_per_sec = 10.0;
        tenant.burst = 2.0;
        let cfg = AdmissionConfig::open(1024).with_tenants(vec![tenant]);
        let mut c = controller(cfg);
        assert_eq!(c.request(1, 42, 1, t(0.0)), Admission::Granted);
        assert_eq!(c.request(1, 42, 2, t(0.0)), Admission::Granted);
        assert_eq!(
            c.request(1, 42, 3, t(0.0)),
            Admission::Rejected(RejectReason::RateLimited),
            "burst of 2 exhausted"
        );
        // 0.1 s at 10/s refills one token.
        assert_eq!(c.request(1, 42, 4, t(0.11)), Admission::Granted);
    }

    #[test]
    fn queue_depth_bounds_unclaimed_tickets() {
        let mut cfg = AdmissionConfig::open(1024);
        cfg.queue_depth = 3;
        let mut c = controller(cfg);
        for session in 0..3 {
            assert_eq!(c.request(1, 0, session, t(0.0)), Admission::Granted);
        }
        assert_eq!(
            c.request(1, 0, 99, t(0.0)),
            Admission::Rejected(RejectReason::Capacity)
        );
        // Claiming one frees a queue slot.
        assert_eq!(c.claim(0, t(0.1)), Some(1));
        assert_eq!(c.request(1, 0, 99, t(0.2)), Admission::Granted);
    }

    #[test]
    fn pending_tickets_expire_after_ttl() {
        let mut cfg = AdmissionConfig::open(16);
        cfg.pending_ttl = Duration::from_millis(500);
        let mut c = controller(cfg);
        assert_eq!(c.request(1, 0, 5, t(0.0)), Admission::Granted);
        assert!(
            c.claim(5, t(1.0)).is_none(),
            "ticket expired before the claim"
        );
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn shedding_engages_high_and_recovers_low() {
        let mut cfg = AdmissionConfig::open(10);
        cfg.shed_enter = 0.8; // sheds at 8
        cfg.shed_exit = 0.5; // recovers at 5
        cfg.queue_depth = 16;
        let mut c = controller(cfg);
        for session in 0..8u64 {
            assert_eq!(c.request(1, 0, session, t(0.0)), Admission::Granted);
            assert_eq!(c.claim(session, t(0.0)), Some(1));
        }
        assert_eq!(c.state(), ShedState::Shedding);
        assert_eq!(
            c.request(1, 0, 100, t(0.1)),
            Admission::Rejected(RejectReason::Overloaded)
        );
        // Dropping to 6 inflight is not enough (hysteresis)...
        c.release(0);
        c.release(1);
        assert_eq!(c.state(), ShedState::Shedding);
        // ...but 5 crosses the exit mark.
        c.release(2);
        assert_eq!(c.state(), ShedState::Normal);
        assert_eq!(c.request(1, 0, 100, t(0.2)), Admission::Granted);
    }

    #[test]
    fn drain_is_sticky_and_completes_when_empty() {
        let mut c = controller(AdmissionConfig::open(16));
        assert_eq!(c.request(1, 0, 1, t(0.0)), Admission::Granted);
        assert_eq!(c.claim(1, t(0.0)), Some(1));
        c.begin_drain();
        assert_eq!(c.state(), ShedState::Drain);
        assert!(!c.drained(), "one session still in flight");
        assert_eq!(
            c.request(1, 0, 2, t(0.1)),
            Admission::Rejected(RejectReason::Draining)
        );
        c.release(1);
        assert!(c.drained());
        // Still draining — release does not resurrect admission.
        assert_eq!(
            c.request(1, 0, 3, t(0.2)),
            Admission::Rejected(RejectReason::Draining)
        );
    }

    #[test]
    fn resent_hello_refreshes_without_double_charge() {
        let mut tenant = TenantConfig::new(1, 9);
        tenant.burst = 1.0;
        tenant.sessions_per_sec = 0.0;
        let cfg = AdmissionConfig::open(16).with_tenants(vec![tenant]);
        let mut c = controller(cfg);
        assert_eq!(c.request(1, 9, 5, t(0.0)), Admission::Granted);
        // Same session retries its Hello (lost Admit): granted again
        // even though the bucket is empty.
        assert_eq!(c.request(1, 9, 5, t(0.1)), Admission::Granted);
        // A *different* session is out of tokens.
        assert_eq!(
            c.request(1, 9, 6, t(0.1)),
            Admission::Rejected(RejectReason::RateLimited)
        );
    }
}
