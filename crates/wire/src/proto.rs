//! The Swiftest wire format.
//!
//! One datagram = one message. Layout: a magic byte (`0xB7`), a type
//! tag, then fixed-width big-endian fields; `Data` carries an opaque
//! payload that pads the packet to the probing packet size. The format
//! is deliberately trivial — the protocol's value is in *when* packets
//! are sent, not what they say.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol magic byte.
pub const MAGIC: u8 = 0xB7;

/// Payload bytes carried by each [`Message::Data`] packet; with headers
/// this keeps datagrams comfortably under a 1500-byte MTU.
pub const DATA_PAYLOAD: usize = 1200;

/// Why the server turned a session away at admission.
///
/// Carried in [`Message::Reject`] as one byte; the variants mirror the
/// labels the service publishes under
/// `swiftest_service_rejected_total{reason=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The (tenant, token) pair is unknown — or the session skipped the
    /// handshake entirely on a server that requires one.
    BadToken,
    /// The session table or the admission queue is full.
    Capacity,
    /// The tenant's token bucket is empty: too many session starts per
    /// second.
    RateLimited,
    /// The server is shedding load to protect in-flight tests.
    Overloaded,
    /// The server is draining for shutdown and takes no new work.
    Draining,
}

impl RejectReason {
    /// Wire byte for this reason.
    pub fn as_u8(self) -> u8 {
        match self {
            RejectReason::BadToken => 1,
            RejectReason::Capacity => 2,
            RejectReason::RateLimited => 3,
            RejectReason::Overloaded => 4,
            RejectReason::Draining => 5,
        }
    }

    /// Parse the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(RejectReason::BadToken),
            2 => Some(RejectReason::Capacity),
            3 => Some(RejectReason::RateLimited),
            4 => Some(RejectReason::Overloaded),
            5 => Some(RejectReason::Draining),
            _ => None,
        }
    }

    /// Index into the telemetry label set
    /// (`mbw_telemetry::service::REJECT_REASON_LABELS`).
    pub fn label_index(self) -> usize {
        self.as_u8() as usize - 1
    }

    /// Whether a client may sensibly retry the same server after
    /// backing off (rate limiting and shedding are transient; a bad
    /// token is not).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            RejectReason::RateLimited | RejectReason::Overloaded | RejectReason::Capacity
        )
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::BadToken => "bad token",
            RejectReason::Capacity => "at capacity",
            RejectReason::RateLimited => "rate limited",
            RejectReason::Overloaded => "overloaded",
            RejectReason::Draining => "draining",
        })
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Latency probe (client → server).
    Ping {
        /// Echo token.
        nonce: u64,
    },
    /// Latency reply (server → client).
    Pong {
        /// The probe's token.
        nonce: u64,
    },
    /// Start probing, or change the probing rate mid-session
    /// (client → server).
    RateRequest {
        /// Client-chosen session identifier.
        session: u64,
        /// Requested downlink pacing rate, bits/second.
        rate_bps: u64,
    },
    /// One paced payload packet (server → client).
    Data {
        /// Session the packet belongs to.
        session: u64,
        /// Monotonic sequence number within the session.
        seq: u64,
        /// Padding payload.
        payload: Bytes,
    },
    /// Periodic client feedback: how much arrived (client → server).
    Feedback {
        /// Session.
        session: u64,
        /// Total bytes received so far.
        received_bytes: u64,
    },
    /// End the session (client → server).
    Stop {
        /// Session.
        session: u64,
    },
    /// Admission handshake: request a session ticket before probing
    /// (client → server). Servers without admission control ignore it;
    /// servers with it answer [`Message::Admit`] or [`Message::Reject`].
    Hello {
        /// Tenant identifier (who is asking).
        tenant: u64,
        /// Tenant's shared-secret token.
        token: u64,
        /// Client-chosen session identifier the ticket is for.
        session: u64,
        /// Trace context: the client's trace identifier, or `0` for
        /// "not tracing". Encoded as an optional trailing field so
        /// pre-trace decoders (which read only the first 24 body
        /// bytes) interoperate unchanged.
        trace: u64,
    },
    /// Admission granted: the session may send its `RateRequest`
    /// (server → client).
    Admit {
        /// The admitted session.
        session: u64,
    },
    /// Admission denied, with a typed reason (server → client).
    Reject {
        /// The rejected session.
        session: u64,
        /// Why the server turned it away.
        reason: RejectReason,
    },
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Datagram shorter than its declared layout.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// A `Reject` carried an unknown reason byte.
    BadReason(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated datagram"),
            ProtoError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::BadReason(b) => write!(f, "unknown reject reason {b}"),
        }
    }
}

impl std::error::Error for ProtoError {}

const TAG_PING: u8 = 1;
const TAG_PONG: u8 = 2;
const TAG_RATE: u8 = 3;
const TAG_DATA: u8 = 4;
const TAG_FEEDBACK: u8 = 5;
const TAG_STOP: u8 = 6;
const TAG_HELLO: u8 = 7;
const TAG_ADMIT: u8 = 8;
const TAG_REJECT: u8 = 9;

impl Message {
    /// Serialise into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(DATA_PAYLOAD + 32);
        buf.put_u8(MAGIC);
        match self {
            Message::Ping { nonce } => {
                buf.put_u8(TAG_PING);
                buf.put_u64(*nonce);
            }
            Message::Pong { nonce } => {
                buf.put_u8(TAG_PONG);
                buf.put_u64(*nonce);
            }
            Message::RateRequest { session, rate_bps } => {
                buf.put_u8(TAG_RATE);
                buf.put_u64(*session);
                buf.put_u64(*rate_bps);
            }
            Message::Data {
                session,
                seq,
                payload,
            } => {
                buf.put_u8(TAG_DATA);
                buf.put_u64(*session);
                buf.put_u64(*seq);
                buf.put_slice(payload);
            }
            Message::Feedback {
                session,
                received_bytes,
            } => {
                buf.put_u8(TAG_FEEDBACK);
                buf.put_u64(*session);
                buf.put_u64(*received_bytes);
            }
            Message::Stop { session } => {
                buf.put_u8(TAG_STOP);
                buf.put_u64(*session);
            }
            Message::Hello {
                tenant,
                token,
                session,
                trace,
            } => {
                buf.put_u8(TAG_HELLO);
                buf.put_u64(*tenant);
                buf.put_u64(*token);
                buf.put_u64(*session);
                // Optional trailing trace context: omitted when zero so
                // a non-tracing client's HELLO is byte-identical to the
                // pre-trace wire format.
                if *trace != 0 {
                    buf.put_u64(*trace);
                }
            }
            Message::Admit { session } => {
                buf.put_u8(TAG_ADMIT);
                buf.put_u64(*session);
            }
            Message::Reject { session, reason } => {
                buf.put_u8(TAG_REJECT);
                buf.put_u64(*session);
                buf.put_u8(reason.as_u8());
            }
        }
        buf.freeze()
    }

    /// Parse one datagram.
    pub fn decode(mut buf: Bytes) -> Result<Message, ProtoError> {
        if buf.remaining() < 2 {
            return Err(ProtoError::Truncated);
        }
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| {
            if buf.remaining() < n {
                Err(ProtoError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_PING => {
                need(&buf, 8)?;
                Ok(Message::Ping {
                    nonce: buf.get_u64(),
                })
            }
            TAG_PONG => {
                need(&buf, 8)?;
                Ok(Message::Pong {
                    nonce: buf.get_u64(),
                })
            }
            TAG_RATE => {
                need(&buf, 16)?;
                Ok(Message::RateRequest {
                    session: buf.get_u64(),
                    rate_bps: buf.get_u64(),
                })
            }
            TAG_DATA => {
                need(&buf, 16)?;
                let session = buf.get_u64();
                let seq = buf.get_u64();
                Ok(Message::Data {
                    session,
                    seq,
                    payload: buf,
                })
            }
            TAG_FEEDBACK => {
                need(&buf, 16)?;
                Ok(Message::Feedback {
                    session: buf.get_u64(),
                    received_bytes: buf.get_u64(),
                })
            }
            TAG_STOP => {
                need(&buf, 8)?;
                Ok(Message::Stop {
                    session: buf.get_u64(),
                })
            }
            TAG_HELLO => {
                need(&buf, 24)?;
                let tenant = buf.get_u64();
                let token = buf.get_u64();
                let session = buf.get_u64();
                // Optional trailing trace context; absent (or short) on
                // datagrams from pre-trace encoders, which is fine —
                // it defaults to "not tracing".
                let trace = if buf.remaining() >= 8 {
                    buf.get_u64()
                } else {
                    0
                };
                Ok(Message::Hello {
                    tenant,
                    token,
                    session,
                    trace,
                })
            }
            TAG_ADMIT => {
                need(&buf, 8)?;
                Ok(Message::Admit {
                    session: buf.get_u64(),
                })
            }
            TAG_REJECT => {
                need(&buf, 9)?;
                let session = buf.get_u64();
                let byte = buf.get_u8();
                let reason = RejectReason::from_u8(byte).ok_or(ProtoError::BadReason(byte))?;
                Ok(Message::Reject { session, reason })
            }
            other => Err(ProtoError::BadTag(other)),
        }
    }

    /// A standard-size data packet.
    pub fn data_packet(session: u64, seq: u64) -> Message {
        Message::Data {
            session,
            seq,
            payload: Bytes::from_static(&[0u8; DATA_PAYLOAD]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let msgs = vec![
            Message::Ping { nonce: 42 },
            Message::Pong { nonce: u64::MAX },
            Message::RateRequest {
                session: 7,
                rate_bps: 300_000_000,
            },
            Message::data_packet(7, 12345),
            Message::Feedback {
                session: 7,
                received_bytes: 1 << 30,
            },
            Message::Stop { session: 7 },
            Message::Hello {
                tenant: 3,
                token: 0xDEAD_BEEF_CAFE_F00D,
                session: 7,
                trace: 0,
            },
            Message::Hello {
                tenant: 3,
                token: 0xDEAD_BEEF_CAFE_F00D,
                session: 7,
                trace: 0x5EED_5EED_5EED_5EED,
            },
            Message::Admit { session: 7 },
            Message::Reject {
                session: 7,
                reason: RejectReason::RateLimited,
            },
        ];
        for msg in msgs {
            let decoded = Message::decode(msg.encode()).expect("roundtrip");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn data_packet_fits_in_an_mtu() {
        let wire = Message::data_packet(1, 1).encode();
        assert!(wire.len() <= 1500 - 28, "len {}", wire.len());
        assert!(wire.len() >= DATA_PAYLOAD);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x00);
        raw.put_u8(TAG_PING);
        raw.put_u64(1);
        assert_eq!(Message::decode(raw.freeze()), Err(ProtoError::BadMagic(0)));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut raw = BytesMut::new();
        raw.put_u8(MAGIC);
        raw.put_u8(99);
        assert_eq!(Message::decode(raw.freeze()), Err(ProtoError::BadTag(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = Message::RateRequest {
            session: 1,
            rate_bps: 2,
        }
        .encode();
        for cut in 0..full.len() {
            let sliced = full.slice(0..cut);
            assert!(
                Message::decode(sliced).is_err(),
                "decode succeeded at cut {cut}"
            );
        }
    }

    #[test]
    fn reject_reasons_roundtrip_and_unknown_bytes_fail() {
        for reason in [
            RejectReason::BadToken,
            RejectReason::Capacity,
            RejectReason::RateLimited,
            RejectReason::Overloaded,
            RejectReason::Draining,
        ] {
            assert_eq!(RejectReason::from_u8(reason.as_u8()), Some(reason));
            let msg = Message::Reject { session: 9, reason };
            assert_eq!(Message::decode(msg.encode()), Ok(msg));
        }
        let mut raw = BytesMut::new();
        raw.put_u8(MAGIC);
        raw.put_u8(TAG_REJECT);
        raw.put_u64(9);
        raw.put_u8(0); // reserved, never a valid reason
        assert_eq!(Message::decode(raw.freeze()), Err(ProtoError::BadReason(0)));
    }

    #[test]
    fn hello_trace_context_is_backward_compatible() {
        // Not tracing: the encoding is the pre-trace 24-byte body.
        let plain = Message::Hello {
            tenant: 1,
            token: 2,
            session: 3,
            trace: 0,
        };
        assert_eq!(plain.encode().len(), 2 + 24);

        // Tracing: eight extra trailing bytes that roundtrip.
        let traced = Message::Hello {
            tenant: 1,
            token: 2,
            session: 3,
            trace: 0xABCD,
        };
        let wire = traced.encode();
        assert_eq!(wire.len(), 2 + 32);
        assert_eq!(Message::decode(wire.clone()), Ok(traced));

        // A pre-trace decoder reads only the first 24 body bytes; a
        // pre-trace *encoder* emits exactly those. Simulate its
        // datagram by truncating ours: the trace defaults to zero.
        let legacy = wire.slice(0..2 + 24);
        assert_eq!(Message::decode(legacy), Ok(plain));
    }

    #[test]
    fn data_payload_survives() {
        let payload = Bytes::from(vec![0xAB; 300]);
        let msg = Message::Data {
            session: 1,
            seq: 2,
            payload: payload.clone(),
        };
        match Message::decode(msg.encode()).unwrap() {
            Message::Data { payload: p, .. } => assert_eq!(p, payload),
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod proptests {
    //! Decode-robustness properties: `decode` is the server's first
    //! contact with untrusted bytes, so it must never panic — only
    //! return `Ok` or a typed `ProtoError` — for *any* input.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary datagrams (including empty and oversized) never
        /// panic the decoder.
        #[test]
        fn decode_never_panics_on_arbitrary_bytes(raw in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = Message::decode(Bytes::from(raw));
        }

        /// Arbitrary bytes behind a valid header never panic either —
        /// this forces the fuzzer past the magic/tag checks into the
        /// per-variant field parsing.
        #[test]
        fn decode_never_panics_past_a_valid_header(
            tag in 0u8..=12,
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut raw = Vec::with_capacity(2 + body.len());
            raw.push(MAGIC);
            raw.push(tag);
            raw.extend_from_slice(&body);
            let _ = Message::decode(Bytes::from(raw));
        }

        /// Every truncation of every variant's valid encoding fails
        /// cleanly with `Truncated` (or a header error), never a panic
        /// and never a bogus `Ok`.
        #[test]
        fn truncations_of_valid_encodings_fail_cleanly(
            which in 0usize..9,
            session in any::<u64>(),
            value in any::<u64>(),
        ) {
            let msg = match which {
                0 => Message::Ping { nonce: value },
                1 => Message::Pong { nonce: value },
                2 => Message::RateRequest { session, rate_bps: value },
                3 => Message::Data {
                    session,
                    seq: value,
                    payload: Bytes::from(vec![0u8; 32]),
                },
                4 => Message::Feedback { session, received_bytes: value },
                5 => Message::Stop { session },
                6 => Message::Hello {
                    tenant: value,
                    token: value.rotate_left(17),
                    session,
                    trace: 0,
                },
                7 => Message::Admit { session },
                _ => Message::Reject {
                    session,
                    reason: RejectReason::from_u8(1 + (value % 5) as u8).unwrap(),
                },
            };
            let wire = msg.encode();
            // `Data` accepts any payload length (it is opaque padding),
            // so truncations inside the payload still decode; cut before
            // the payload starts for it, everywhere for the rest.
            let cut_end = if matches!(msg, Message::Data { .. }) { 18 } else { wire.len() };
            for cut in 0..cut_end {
                prop_assert!(
                    Message::decode(wire.slice(0..cut)).is_err(),
                    "variant {which} decoded at cut {cut}"
                );
            }
        }

        /// Encode→decode is the identity for fuzzed field values.
        #[test]
        fn roundtrip_holds_for_fuzzed_fields(session in any::<u64>(), value in any::<u64>()) {
            for msg in [
                Message::Ping { nonce: value },
                Message::RateRequest { session, rate_bps: value },
                Message::Feedback { session, received_bytes: value },
                Message::Stop { session },
                Message::Hello { tenant: session, token: value, session, trace: value },
                Message::Admit { session },
                Message::Reject {
                    session,
                    reason: RejectReason::from_u8(1 + (value % 5) as u8).unwrap(),
                },
            ] {
                prop_assert_eq!(Message::decode(msg.encode()), Ok(msg));
            }
        }
    }
}
