//! The TCP flooding baseline over real sockets.
//!
//! A BTS-APP-style server that writes a byte stream as fast as the
//! (optionally token-bucket-capped) connection allows, and a client that
//! reads for a fixed window, samples goodput every 50 ms, and feeds the
//! grouped-trimmed-mean estimator — the wire twin of the simulated
//! flooding prober, used to compare TCP flooding and Swiftest UDP on the
//! same emulated link.

use mbw_core::estimator::{BandwidthEstimator, EstimatorDecision, GroupedTrimmedMean};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::task::JoinHandle;

/// A running flood server.
pub struct TcpFloodServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_task: JoinHandle<()>,
}

/// Chunk written per send.
const CHUNK: usize = 16 * 1024;

impl TcpFloodServer {
    /// Start a flood server; `rate_cap_bps` emulates the access link.
    pub async fn start(rate_cap_bps: Option<u64>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_task = tokio::spawn(async move {
            loop {
                let (stream, _) = match listener.accept().await {
                    Ok(x) => x,
                    Err(_) => break,
                };
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let stop3 = Arc::clone(&stop2);
                tokio::spawn(flood_connection(stream, rate_cap_bps, stop3));
            }
        });
        Ok(Self {
            local_addr,
            stop,
            accept_task,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and flooding.
    pub async fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.accept_task.abort();
        let _ = self.accept_task.await;
    }
}

async fn flood_connection(mut stream: TcpStream, rate_cap_bps: Option<u64>, stop: Arc<AtomicBool>) {
    let chunk = vec![0u8; CHUNK];
    match rate_cap_bps {
        None => {
            while !stop.load(Ordering::Relaxed) {
                if stream.write_all(&chunk).await.is_err() {
                    return;
                }
            }
        }
        Some(rate) => {
            // Token-bucket pacing on a 5 ms tick.
            const TICK: Duration = Duration::from_millis(5);
            let mut interval = tokio::time::interval(TICK);
            interval.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
            let mut credit = 0.0f64;
            while !stop.load(Ordering::Relaxed) {
                interval.tick().await;
                credit += rate as f64 * TICK.as_secs_f64() / 8.0;
                credit = credit.min(2.0 * rate as f64 * TICK.as_secs_f64() / 8.0 + CHUNK as f64);
                while credit >= CHUNK as f64 {
                    if stream.write_all(&chunk).await.is_err() {
                        return;
                    }
                    credit -= CHUNK as f64;
                }
            }
        }
    }
}

/// Flood-client configuration.
#[derive(Debug, Clone)]
pub struct FloodClientConfig {
    /// How long to flood. The production BTS-APP floods 10 s with a
    /// 20 × 10 estimator; tests shrink both proportionally.
    pub duration: Duration,
    /// Sampling interval.
    pub sample_interval: Duration,
    /// Estimator grouping `(groups, group_size, drop_low, drop_high)`.
    pub grouping: (usize, usize, usize, usize),
}

impl Default for FloodClientConfig {
    fn default() -> Self {
        Self {
            duration: Duration::from_secs(10),
            sample_interval: Duration::from_millis(50),
            grouping: (20, 10, 5, 2),
        }
    }
}

impl FloodClientConfig {
    /// A shortened configuration for CI: 2 s, 8 × 5 samples, drop 2 + 1.
    pub fn quick() -> Self {
        Self {
            duration: Duration::from_secs(2),
            sample_interval: Duration::from_millis(50),
            grouping: (8, 5, 2, 1),
        }
    }
}

/// Result of one TCP flood test.
#[derive(Debug, Clone)]
pub struct FloodReport {
    /// Trimmed-mean estimate, Mbps.
    pub estimate_mbps: f64,
    /// Wall time spent flooding.
    pub duration: Duration,
    /// Bytes downloaded.
    pub data_bytes: u64,
    /// 50 ms samples, Mbps.
    pub samples: Vec<f64>,
}

/// Run one flood test against `server`.
pub async fn run_flood_test(
    server: SocketAddr,
    config: &FloodClientConfig,
) -> std::io::Result<FloodReport> {
    let mut stream = TcpStream::connect(server).await?;
    let (g, gs, dl, dh) = config.grouping;
    let mut estimator = GroupedTrimmedMean::new(g, gs, dl, dh);
    let started = tokio::time::Instant::now();
    let mut tick = tokio::time::interval(config.sample_interval);
    tick.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    tick.tick().await;

    let mut buf = vec![0u8; 64 * 1024];
    let mut total = 0u64;
    let mut window = 0u64;
    let mut samples = Vec::new();
    let mut estimate = None;

    'outer: while started.elapsed() < config.duration {
        tokio::select! {
            biased;
            _ = tick.tick() => {
                let mbps = window as f64 * 8.0 / config.sample_interval.as_secs_f64() / 1e6;
                window = 0;
                samples.push(mbps);
                if let EstimatorDecision::Done(v) = estimator.push(mbps) {
                    estimate = Some(v);
                    break 'outer;
                }
            }
            read = stream.read(&mut buf) => {
                let n = read?;
                if n == 0 {
                    break 'outer;
                }
                total += n as u64;
                window += n as u64;
            }
        }
    }
    Ok(FloodReport {
        estimate_mbps: estimate.or_else(|| estimator.finalize()).unwrap_or(0.0),
        duration: started.elapsed(),
        data_bytes: total,
        samples,
    })
}

/// Multi-connection flooding (§2): start one connection, add another
/// every time the aggregate sample crosses the next threshold (25, 35,
/// … Mbps), exactly like BTS-APP/Speedtest saturating a fast link.
pub async fn run_flood_test_multi(
    server: SocketAddr,
    config: &FloodClientConfig,
    thresholds_mbps: &[f64],
    max_connections: usize,
) -> std::io::Result<FloodReport> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let window = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let mut readers: Vec<tokio::task::JoinHandle<()>> = Vec::new();

    let spawn_reader = |window: Arc<AtomicU64>, total: Arc<AtomicU64>| async move {
        let Ok(mut stream) = TcpStream::connect(server).await else {
            return;
        };
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            match stream.read(&mut buf).await {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    window.fetch_add(n as u64, Ordering::Relaxed);
                    total.fetch_add(n as u64, Ordering::Relaxed);
                }
            }
        }
    };
    readers.push(tokio::spawn(spawn_reader(
        Arc::clone(&window),
        Arc::clone(&total),
    )));

    let (g, gs, dl, dh) = config.grouping;
    let mut estimator = GroupedTrimmedMean::new(g, gs, dl, dh);
    let started = tokio::time::Instant::now();
    let mut tick = tokio::time::interval(config.sample_interval);
    tick.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    tick.tick().await;

    let mut samples = Vec::new();
    let mut estimate = None;
    let mut next_threshold = 0usize;
    while started.elapsed() < config.duration {
        tick.tick().await;
        let bytes = window.swap(0, std::sync::atomic::Ordering::Relaxed);
        let mbps = bytes as f64 * 8.0 / config.sample_interval.as_secs_f64() / 1e6;
        samples.push(mbps);
        while next_threshold < thresholds_mbps.len() && mbps >= thresholds_mbps[next_threshold] {
            next_threshold += 1;
            if readers.len() < max_connections {
                readers.push(tokio::spawn(spawn_reader(
                    Arc::clone(&window),
                    Arc::clone(&total),
                )));
            }
        }
        if let EstimatorDecision::Done(v) = estimator.push(mbps) {
            estimate = Some(v);
            break;
        }
    }
    for r in &readers {
        r.abort();
    }
    Ok(FloodReport {
        estimate_mbps: estimate.or_else(|| estimator.finalize()).unwrap_or(0.0),
        duration: started.elapsed(),
        data_bytes: total.load(std::sync::atomic::Ordering::Relaxed),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread")]
    async fn multi_connection_flood_measures_and_scales() {
        let _net = crate::net_test_lock().lock().await;
        // Per-connection cap 10 Mbps: a single connection reads ~10, the
        // threshold ladder spawns more until the aggregate passes 25.
        let server = TcpFloodServer::start(Some(10_000_000)).await.unwrap();
        let report = run_flood_test_multi(
            server.local_addr(),
            &FloodClientConfig {
                duration: std::time::Duration::from_secs(3),
                ..FloodClientConfig::quick()
            },
            &[8.0, 16.0, 24.0],
            4,
        )
        .await
        .unwrap();
        // 4 connections × 10 Mbps cap ⇒ aggregate well above a single
        // connection's 10.
        assert!(
            report.estimate_mbps > 16.0,
            "aggregate {:.1} Mbps",
            report.estimate_mbps
        );
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn flood_measures_a_capped_link() {
        let _net = crate::net_test_lock().lock().await;
        let cap = 30_000_000u64; // 30 Mbps
        let server = TcpFloodServer::start(Some(cap)).await.unwrap();
        let report = run_flood_test(server.local_addr(), &FloodClientConfig::quick())
            .await
            .unwrap();
        assert!(
            (report.estimate_mbps - 30.0).abs() < 8.0,
            "estimate {:.1} Mbps",
            report.estimate_mbps
        );
        assert!(report.samples.len() >= 20);
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn flood_downloads_duration_times_rate() {
        let _net = crate::net_test_lock().lock().await;
        let cap = 16_000_000u64;
        let server = TcpFloodServer::start(Some(cap)).await.unwrap();
        let report = run_flood_test(server.local_addr(), &FloodClientConfig::quick())
            .await
            .unwrap();
        // 2 s at 16 Mbps ≈ 4 MB.
        assert!(
            (report.data_bytes as f64 - 4e6).abs() < 2e6,
            "bytes {}",
            report.data_bytes
        );
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn uncapped_flood_is_fast_on_loopback() {
        let _net = crate::net_test_lock().lock().await;
        let server = TcpFloodServer::start(None).await.unwrap();
        let report = run_flood_test(
            server.local_addr(),
            &FloodClientConfig {
                duration: Duration::from_millis(500),
                ..FloodClientConfig::quick()
            },
        )
        .await
        .unwrap();
        assert!(
            report.estimate_mbps > 100.0,
            "loopback {:.0}",
            report.estimate_mbps
        );
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn udp_swiftest_uses_less_data_than_tcp_flooding_on_same_link() {
        let _net = crate::net_test_lock().lock().await;
        // The headline §5.3 comparison, on real sockets: same 20 Mbps
        // emulated link, Swiftest UDP vs TCP flooding.
        let cap = 20_000_000u64;
        let tcp = TcpFloodServer::start(Some(cap)).await.unwrap();
        let (udp_servers, udp_addrs) = crate::client::spawn_local_fleet(1, Some(cap))
            .await
            .unwrap();

        // Production-length flooding (10 s): the comparison the paper
        // makes. Swiftest is hard-capped at 4.5 s, so even a
        // non-converging run uses less than half the data.
        let flood = run_flood_test(tcp.local_addr(), &FloodClientConfig::default())
            .await
            .unwrap();
        let model = mbw_stats::Gmm::from_triples(&[(0.6, 10.0, 2.0), (0.4, 30.0, 5.0)]).unwrap();
        let swift =
            crate::client::SwiftestClient::new(model, crate::client::WireTestConfig::default())
                .measure(&udp_addrs)
                .await
                .unwrap();

        assert!(
            swift.data_bytes < flood.data_bytes,
            "swiftest {} vs flooding {}",
            swift.data_bytes,
            flood.data_bytes
        );
        // Both land near the link rate.
        assert!(
            (flood.estimate_mbps - 20.0).abs() < 7.0,
            "{}",
            flood.estimate_mbps
        );
        assert!(
            (swift.estimate_mbps - 20.0).abs() < 7.0,
            "{}",
            swift.estimate_mbps
        );

        tcp.shutdown().await;
        for s in udp_servers {
            s.shutdown().await;
        }
    }
}
