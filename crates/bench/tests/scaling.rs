//! Thread-scaling smoke tests — ignored by default, run by the CI
//! `scaling` job on a ≥4-core runner:
//!
//! ```text
//! cargo test -p mbw-bench --release --test scaling -- --ignored
//! ```
//!
//! Two kinds of assertion:
//!
//! - *scaling*: multi-thread throughput must beat single-thread by a
//!   sane margin on a multi-core machine. For the streaming engine the
//!   comparison is made on the thread-parallel phase (generate +
//!   observe, `StreamTimings::parallel_records_per_second`) rather
//!   than end-to-end wall, which mixes phases with different scaling
//!   behaviour. The finish stage — once a single-threaded tail — now
//!   fans its per-figure jobs and GMM candidate fits over the same
//!   thread count and gets its own scaling gate on
//!   `StreamTimings::finish` wall time.
//! - *regression*: current throughput must stay within 20% of a
//!   baseline measured on the *same runner class*. Cross-machine
//!   wall-clock comparison is inherently unstable (the committed BENCH
//!   files are regenerated wherever the tree is developed, which may be
//!   a 1-core container), so the baseline lives in a file under
//!   `$MBW_SCALING_BASELINE_DIR` — in CI that directory is carried
//!   between runs by the actions cache, so every comparison is
//!   runner-against-same-runner. The first run on a fresh cache seeds
//!   the baseline and skips the assertion; later runs gate against it
//!   and ratchet it up to the best throughput seen.
//!
//! On a machine with fewer than 4 cores the scaling assertions are
//! vacuous, and without `MBW_SCALING_BASELINE_DIR` there is no
//! same-machine baseline to gate against — in both cases the tests
//! skip with a notice instead of failing.

use mbw_bench::eval_sweep::{plan_for, reduce, EvalFigureSet, EVAL_SWEEP_IDS};
use mbw_bench::measurement;
use mbw_core::{run_campaign, EvalCounts};
use mbw_dataset::ShardPlan;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Margin a multi-thread run must clear over single-thread.
const SCALING_MARGIN: f64 = 1.3;
/// Fraction of the same-runner baseline throughput we must retain.
const REGRESSION_FLOOR: f64 = 0.8;
const ITERS: usize = 2;

/// Workload sizes for the smoke runs (fixed so that a stored baseline
/// and a later measurement always describe the same work).
const SMOKE_RECORDS: usize = 120_000;
const SMOKE_TRIALS: usize = 40;

fn detected_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The scaling assertions need real cores; skip (don't fail) without them.
fn multicore_or_skip(test: &str) -> Option<usize> {
    let threads = detected_threads();
    if threads < 4 {
        eprintln!("{test}: skipping — only {threads} core(s) detected, need >= 4");
        return None;
    }
    Some(threads)
}

/// Where the same-runner-class baseline for `metric` lives, if a
/// baseline directory was configured at all.
fn baseline_path(test: &str, metric: &str) -> Option<PathBuf> {
    match std::env::var_os("MBW_SCALING_BASELINE_DIR") {
        Some(dir) => Some(PathBuf::from(dir).join(format!("{metric}.txt"))),
        None => {
            eprintln!(
                "{test}: skipping — MBW_SCALING_BASELINE_DIR not set, no same-machine \
                 baseline to gate against"
            );
            None
        }
    }
}

/// Gate `current` against the stored same-runner baseline for `metric`
/// (`unit` is only for messages). Seeds the baseline on first run, then
/// asserts the [`REGRESSION_FLOOR`] and ratchets the stored value up to
/// the best throughput seen so regressions can't creep in a few percent
/// at a time.
fn gate_against_baseline(test: &str, metric: &str, unit: &str, current: f64) {
    let Some(path) = baseline_path(test, metric) else {
        return;
    };
    let stored: Option<f64> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse().ok());
    let write = |value: f64| {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {dir:?}: {e}"));
        }
        std::fs::write(&path, format!("{value}\n"))
            .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    };
    match stored {
        None => {
            write(current);
            eprintln!("{test}: seeded baseline {current:.0} {unit} at {path:?} (no assertion)");
        }
        Some(base) => {
            eprintln!(
                "{test}: {current:.0} {unit} now vs {base:.0} baseline \
                 ({:.2}x, floor {REGRESSION_FLOOR})",
                current / base
            );
            write(base.max(current));
            assert!(
                current >= REGRESSION_FLOOR * base,
                "{metric} regressed >20%: {current:.0} {unit} vs same-runner baseline {base:.0}"
            );
        }
    }
}

/// Best-of-`ITERS` streaming timings at `threads` workers. Returns
/// `(end_to_end_rps, parallel_phase_rps)`, each the max over the
/// iterations.
fn stream_rps(records: usize, threads: usize) -> (f64, f64) {
    (0..ITERS)
        .map(|_| {
            let (figs, t) = measurement::stream_measurement_figures(
                records,
                0xBE7C,
                ShardPlan::threads(threads),
            );
            black_box(figs);
            (t.records_per_second(), t.parallel_records_per_second())
        })
        .fold((0.0, 0.0), |(e, p), (e2, p2)| (e.max(e2), p.max(p2)))
}

/// Best-of-`ITERS` finish-stage wall seconds at `threads` workers (the
/// finish pool inherits the shard plan's thread count).
fn finish_secs(records: usize, threads: usize) -> f64 {
    (0..ITERS)
        .map(|_| {
            let (figs, t) = measurement::stream_measurement_figures(
                records,
                0xBE7C,
                ShardPlan::threads(threads),
            );
            black_box(figs);
            t.finish.as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-`ITERS` campaign trials/s (plan → execute → reduce) at
/// `threads` workers.
fn campaign_tps(trials: usize, threads: usize) -> f64 {
    let counts = EvalCounts::uniform(trials);
    (0..ITERS)
        .map(|_| {
            let t0 = Instant::now();
            let plan = plan_for(&EVAL_SWEEP_IDS, &counts, 0xBE57);
            let planned = plan.len();
            let pool = run_campaign(&plan, threads);
            black_box(reduce(EvalFigureSet::new(0xC0), &pool));
            planned as f64 / t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE)
        })
        .fold(0.0, f64::max)
}

#[test]
#[ignore = "perf smoke: needs a quiet >=4-core machine (CI scaling job)"]
fn streaming_multithread_beats_single_thread() {
    let Some(threads) = multicore_or_skip("streaming_multithread_beats_single_thread") else {
        return;
    };
    let (single_e2e, single) = stream_rps(SMOKE_RECORDS, 1);
    let (multi_e2e, multi) = stream_rps(SMOKE_RECORDS, threads);
    eprintln!(
        "streaming parallel phase: {single:.0} rec/s at 1 thread, {multi:.0} rec/s at \
         {threads} ({:.2}x); end-to-end: {single_e2e:.0} \
         -> {multi_e2e:.0} rec/s ({:.2}x, informational)",
        multi / single,
        multi_e2e / single_e2e
    );
    assert!(
        multi > SCALING_MARGIN * single,
        "streaming engine's parallel phase does not scale: {multi:.0} rec/s at \
         {threads} threads vs {single:.0} at 1 (need > {SCALING_MARGIN}x)"
    );
}

#[test]
#[ignore = "perf smoke: needs a quiet >=4-core machine (CI scaling job)"]
fn finish_stage_multithread_beats_single_thread() {
    let Some(threads) = multicore_or_skip("finish_stage_multithread_beats_single_thread") else {
        return;
    };
    let single = finish_secs(SMOKE_RECORDS, 1);
    let multi = finish_secs(SMOKE_RECORDS, threads);
    eprintln!(
        "finish stage: {:.1} ms at 1 thread, {:.1} ms at {threads} ({:.2}x)",
        single * 1e3,
        multi * 1e3,
        single / multi.max(f64::MIN_POSITIVE)
    );
    assert!(
        single > SCALING_MARGIN * multi,
        "finish stage does not scale: {:.1} ms at {threads} threads vs {:.1} ms at 1 \
         (need > {SCALING_MARGIN}x)",
        multi * 1e3,
        single * 1e3
    );
}

#[test]
#[ignore = "perf smoke: needs a quiet >=4-core machine (CI scaling job)"]
fn campaign_multithread_beats_single_thread() {
    let Some(threads) = multicore_or_skip("campaign_multithread_beats_single_thread") else {
        return;
    };
    let single = campaign_tps(SMOKE_TRIALS, 1);
    let multi = campaign_tps(SMOKE_TRIALS, threads);
    eprintln!(
        "campaign: {single:.0} trials/s at 1 thread, {multi:.0} trials/s at {threads} \
         ({:.2}x)",
        multi / single
    );
    assert!(
        multi > SCALING_MARGIN * single,
        "campaign executor does not scale: {multi:.0} trials/s at {threads} threads vs \
         {single:.0} at 1 (need > {SCALING_MARGIN}x)"
    );
}

#[test]
#[ignore = "perf smoke: regression gate against the same-runner baseline cache"]
fn streaming_throughput_has_not_regressed() {
    let (rps, _) = stream_rps(SMOKE_RECORDS, detected_threads());
    gate_against_baseline(
        "streaming_throughput_has_not_regressed",
        "streaming_records_per_second",
        "rec/s",
        rps,
    );
}

#[test]
#[ignore = "perf smoke: regression gate against the same-runner baseline cache"]
fn campaign_throughput_has_not_regressed() {
    let tps = campaign_tps(SMOKE_TRIALS, detected_threads());
    gate_against_baseline(
        "campaign_throughput_has_not_regressed",
        "campaign_trials_per_second",
        "trials/s",
        tps,
    );
}
