//! End-to-end tests of the distributed plan→execute→reduce pipeline
//! through the real `figures` binary: k independent OS processes, each
//! executing one shard, reduced byte-identically to one process — plus
//! the crash-safety contracts (a SIGKILLed runner never leaves a torn
//! part; re-running resumes past completed shards).

use mbw_bench::distributed::PART_KIND;
use mbw_bench::eval_sweep::EVAL_SWEEP_IDS;
use mbw_frame::read_snapshot;
use std::path::{Path, PathBuf};
use std::process::Command;

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");

/// Every id the distributed pipeline covers, measurement + evaluation.
fn all_dist_ids() -> Vec<&'static str> {
    mbw_analysis::sweep::SWEEP_IDS
        .iter()
        .chain(EVAL_SWEEP_IDS.iter())
        .copied()
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbw-dist-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the figures binary, asserting success, and return its stderr.
fn figures(args: &[&str]) -> String {
    let out = Command::new(FIGURES)
        .args(args)
        .output()
        .expect("spawn figures");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "figures {:?} failed ({}):\n{stderr}",
        args,
        out.status
    );
    stderr
}

/// Drive a full k-way split: plan, one OS process per shard, reduce.
fn distributed_run(root: &Path, shards: u32, extra: &[&str]) -> PathBuf {
    let plans_dir = root.join("plans");
    let mut plan_args = vec!["shard-plan"];
    plan_args.extend_from_slice(extra);
    let shards_s = shards.to_string();
    plan_args.extend_from_slice(&["--shards", &shards_s]);
    let plans_s = plans_dir.to_str().unwrap().to_string();
    plan_args.extend_from_slice(&["--out", &plans_s]);
    figures(&plan_args);

    let parts_dir = root.join("parts");
    let mut plan_files: Vec<PathBuf> = std::fs::read_dir(&plans_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "plan"))
        .collect();
    plan_files.sort();
    assert_eq!(plan_files.len(), shards as usize);
    // Every shard in its own OS process, all at once.
    let children: Vec<_> = plan_files
        .iter()
        .map(|plan| {
            Command::new(FIGURES)
                .args([
                    "shard-runner",
                    "--plan",
                    plan.to_str().unwrap(),
                    "--out",
                    parts_dir.to_str().unwrap(),
                ])
                .spawn()
                .expect("spawn shard-runner")
        })
        .collect();
    for mut child in children {
        assert!(child.wait().expect("wait").success());
    }

    let out_dir = root.join("reduced");
    figures(&[
        "reduce",
        "--parts",
        parts_dir.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    out_dir
}

#[test]
fn two_and_four_process_splits_match_the_single_process_run() {
    let root = temp_dir("equiv");
    let params = ["--records", "2000", "--trials", "2"];

    // Reference: one process, every distributed-covered id.
    let single_dir = root.join("single");
    let mut single_args: Vec<&str> = vec![];
    single_args.extend_from_slice(&params);
    let single_s = single_dir.to_str().unwrap().to_string();
    single_args.extend_from_slice(&["--threads", "2", "--out", &single_s]);
    single_args.extend(all_dist_ids());
    figures(&single_args);

    for shards in [2u32, 4] {
        let run_root = root.join(format!("k{shards}"));
        let reduced = distributed_run(&run_root, shards, &params);
        for id in all_dist_ids() {
            let want = std::fs::read(single_dir.join(format!("{id}.txt")))
                .unwrap_or_else(|e| panic!("single-process {id}.txt: {e}"));
            let got = std::fs::read(reduced.join(format!("{id}.txt")))
                .unwrap_or_else(|e| panic!("{shards}-way reduced {id}.txt: {e}"));
            assert_eq!(
                want, got,
                "{id} differs between 1 process and {shards} processes"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rerunning_a_completed_shard_skips_and_leaves_the_part_untouched() {
    let root = temp_dir("resume");
    let plans_dir = root.join("plans");
    figures(&[
        "shard-plan",
        "--records",
        "1500",
        "--trials",
        "2",
        "--shards",
        "2",
        "--out",
        plans_dir.to_str().unwrap(),
    ]);
    let plan = plans_dir.join("shard-00-of-02.plan");
    let parts_dir = root.join("parts");
    figures(&[
        "shard-runner",
        "--plan",
        plan.to_str().unwrap(),
        "--out",
        parts_dir.to_str().unwrap(),
    ]);
    let part = parts_dir.join("shard-00-of-02.part");
    let first_bytes = std::fs::read(&part).expect("part written");

    let stderr = figures(&[
        "shard-runner",
        "--plan",
        plan.to_str().unwrap(),
        "--out",
        parts_dir.to_str().unwrap(),
    ]);
    assert!(
        stderr.contains("skipping shard"),
        "resume did not skip:\n{stderr}"
    );
    assert_eq!(
        first_bytes,
        std::fs::read(&part).unwrap(),
        "resume rewrote a completed part"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_sigkilled_runner_leaves_no_torn_part_behind() {
    let root = temp_dir("sigkill");
    let plans_dir = root.join("plans");
    // Big enough that the runner is still executing when the kill
    // lands; if it finishes first the assertions below still hold.
    figures(&[
        "shard-plan",
        "--records",
        "400000",
        "--trials",
        "40",
        "--shards",
        "2",
        "--out",
        plans_dir.to_str().unwrap(),
    ]);
    let parts_dir = root.join("parts");
    let mut child = Command::new(FIGURES)
        .args([
            "shard-runner",
            "--plan",
            plans_dir.join("shard-00-of-02.plan").to_str().unwrap(),
            "--out",
            parts_dir.to_str().unwrap(),
        ])
        .spawn()
        .expect("spawn shard-runner");
    std::thread::sleep(std::time::Duration::from_millis(200));
    let _ = child.kill();
    let _ = child.wait();

    // The out dir either never appeared, or holds only decodable part
    // snapshots (the atomic tmp+rename protocol may leave a dot-
    // prefixed temp file, which collect_parts ignores).
    if let Ok(entries) = std::fs::read_dir(&parts_dir) {
        for entry in entries {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with('.') {
                continue;
            }
            assert!(
                path.extension().is_some_and(|e| e == "part"),
                "unexpected file {name}"
            );
            let (head, _) = read_snapshot(&path)
                .unwrap_or_else(|e| panic!("torn part {name} survived the kill: {e}"));
            assert_eq!(head.kind, PART_KIND);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
