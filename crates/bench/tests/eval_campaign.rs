//! The fused evaluation campaign is byte-identical to the legacy
//! one-run-per-figure pipeline for every evaluation figure id, and the
//! executed pool is byte-identical for any worker thread count.
//!
//! This mirrors `sweep_equivalence.rs` (the measurement half's
//! guarantee) for the Swiftest evaluation half. The equivalence holds
//! by construction — per-trial seeds are structural, derived from what
//! a trial *is* rather than where it sits in the plan — and these
//! tests keep that construction honest.

use mbw_bench::eval_sweep::{plan_for, reduce, EvalFigureSet, EVAL_SWEEP_IDS};
use mbw_bench::{ablation, bts_eval, deploy_eval, fig17};
use mbw_core::{run_campaign, trial_seed, CampaignPlan, EvalCounts};
use proptest::prelude::*;

const SEED: u64 = 0xE7A1;
const COST_SEED: u64 = 0xC0;

fn counts() -> EvalCounts {
    EvalCounts::uniform(10)
}

/// The pre-campaign pipeline: one figure function per id, each running
/// its own trials.
fn legacy_render(id: &str, c: &EvalCounts) -> String {
    match id {
        "fig17" => fig17::fig17(c.ramp_paths, SEED).expect("ok").render(),
        "fig20" => bts_eval::fig20(c.tests, SEED).expect("ok").render(),
        "fig21" => bts_eval::fig21(c.tests, SEED).expect("ok").render(),
        "fig22" => bts_eval::fig22(c.tests, SEED).expect("ok").render(),
        "fig23" | "fig24" | "fig25" => bts_eval::fig23_25(c.groups, SEED).expect("ok").render(),
        "ablation_init" => ablation::render_variants(
            "Ablation: initial probing rate",
            &ablation::ablation_init(c.ablation, SEED).expect("ok"),
        ),
        "ablation_converge" => ablation::render_variants(
            "Ablation: convergence rule",
            &ablation::ablation_converge(c.ablation, SEED).expect("ok"),
        ),
        "ablation_escalate" => ablation::render_variants(
            "Ablation: escalation policy",
            &ablation::ablation_escalate(c.ablation, SEED).expect("ok"),
        ),
        "mmwave" => bts_eval::mmwave_report(c.mmwave, SEED)
            .expect("ok")
            .render(),
        "cost" => {
            // Legacy shape: estimate the workload from a pairs-only run,
            // then purchase for it.
            let mut plan = CampaignPlan::new(SEED);
            bts_eval::plan_pairs(&mut plan, c.tests);
            let pool = run_campaign(&plan, 1);
            let w = reduce(deploy_eval::WorkloadAcc::default(), &pool).expect("ok");
            deploy_eval::cost_report_with(&w, COST_SEED).render()
        }
        other => panic!("no legacy mapping for {other}"),
    }
}

#[test]
fn fused_campaign_reproduces_every_legacy_figure() {
    let c = counts();
    let legacy: Vec<(&str, String)> = EVAL_SWEEP_IDS
        .iter()
        .map(|&id| (id, legacy_render(id, &c)))
        .collect();

    let plan = plan_for(&EVAL_SWEEP_IDS, &c, SEED);
    for threads in [1usize, 4] {
        let pool = run_campaign(&plan, threads);
        let figs = reduce(EvalFigureSet::new(COST_SEED), &pool);
        for (id, expected) in &legacy {
            let fused = figs
                .render(id)
                .unwrap_or_else(|| panic!("unknown id {id}"))
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(
                &fused, expected,
                "{id} diverged from the legacy pipeline at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn pool_is_byte_identical_for_any_thread_count() {
    let plan = plan_for(&EVAL_SWEEP_IDS, &counts(), 0xDE7);
    let serial = run_campaign(&plan, 1);
    for threads in [2usize, 8] {
        let parallel = run_campaign(&plan, threads);
        assert_eq!(serial, parallel, "pool diverged at {threads} threads");
    }
}

#[test]
fn trial_count_does_not_disturb_the_shared_prefix() {
    // Growing a series appends trials; the existing ones keep their
    // structural seeds, so figures over the common prefix agree.
    let mut small = CampaignPlan::new(77);
    bts_eval::plan_pairs(&mut small, 6);
    let mut large = CampaignPlan::new(77);
    bts_eval::plan_pairs(&mut large, 9);
    let small_pool = run_campaign(&small, 1);
    let large_pool = run_campaign(&large, 2);
    for (i, spec) in small.specs().iter().enumerate() {
        let j = large
            .specs()
            .iter()
            .position(|s| s == spec)
            .expect("prefix spec present in the larger plan");
        assert_eq!(
            small_pool.view(i).outcome(0),
            large_pool.view(j).outcome(0),
            "trial {spec:?} changed when the plan grew"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distinct trial indices never collide within a series, and the
    /// figure series used by the evaluation never collide with each
    /// other — the property the old `seed.wrapping_add(i * 17)` strides
    /// could not guarantee.
    #[test]
    fn per_trial_seed_streams_never_collide(
        campaign_seed in any::<u64>(),
        series_a in 0u64..0x700,
        series_b in 0u64..0x700,
        i in 0u64..512,
        j in 0u64..512,
    ) {
        prop_assume!(series_a != series_b || i != j);
        prop_assert_ne!(
            trial_seed(campaign_seed, series_a, i),
            trial_seed(campaign_seed, series_b, j)
        );
    }
}
