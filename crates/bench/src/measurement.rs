//! Tables 1–2 and Figs 1–16 over the synthetic measurement dataset.
//!
//! A thin orchestration layer with two render paths:
//!
//! - [`populations`] / [`populations_with`] generate the two yearly
//!   populations through the sharded parallel generator — the output is
//!   a pure function of `(seed, tests, shard size)`, never of the
//!   worker thread count.
//! - [`measurement_figures`] folds both populations through the fused
//!   single-pass sweep (`mbw_analysis::sweep`), producing every figure
//!   at once; [`render_measurement`] is the legacy one-pass-per-figure
//!   path, kept as the reference the sweep is tested against.

use mbw_analysis::{
    cellular, devices, general, overview, pdfs, stream, tables, wifi, MeasurementFigures, Render,
    StreamTimings,
};
use mbw_dataset::{generate_sharded, DatasetConfig, EcosystemProfile, ShardPlan, TestRecord, Year};

/// The two yearly populations every measurement figure consumes.
pub struct Populations {
    /// 2020 records (BTS-APP's earlier measurement reports).
    pub y2020: Vec<TestRecord>,
    /// The paper's main Aug–Nov 2021 population.
    pub y2021: Vec<TestRecord>,
}

/// Generate both populations with `tests` records each under an
/// explicit shard plan. Only the plan's shard size affects the records;
/// its thread count affects wall time alone.
pub fn populations_with(tests: usize, seed: u64, plan: ShardPlan) -> Populations {
    let make = |year| {
        generate_sharded(
            DatasetConfig {
                seed,
                tests,
                year,
                ..Default::default()
            },
            plan,
        )
    };
    Populations {
        y2020: make(Year::Y2020),
        y2021: make(Year::Y2021),
    }
}

/// Generate both populations with `tests` records each (default shard
/// size, one worker).
pub fn populations(tests: usize, seed: u64) -> Populations {
    populations_with(tests, seed, ShardPlan::default())
}

/// Compute every measurement figure in one fused pass per population,
/// sharded over `threads` workers. Byte-identical to the legacy
/// per-figure path for every thread count.
pub fn measurement_figures(pops: &Populations, threads: usize) -> MeasurementFigures {
    mbw_analysis::sweep_records(&pops.y2020, &pops.y2021, threads)
}

/// Compute every measurement figure through the streaming fused
/// generate→analyze engine (`mbw_analysis::stream`): both populations
/// of `tests` records flow shard-by-shard from the generator straight
/// into the figure accumulators without ever being materialised.
/// Byte-identical to [`populations_with`] + [`measurement_figures`]
/// under the same shard plan, for every thread count.
pub fn stream_measurement_figures(
    tests: usize,
    seed: u64,
    plan: ShardPlan,
) -> (MeasurementFigures, StreamTimings) {
    stream_measurement_figures_for(EcosystemProfile::paper_china(), tests, seed, plan)
}

/// [`stream_measurement_figures`] under an explicit ecosystem profile.
/// Figures for any profile other than the paper's own come back tagged
/// with the profile name (see
/// [`MeasurementFigures::with_profile_tag`]).
pub fn stream_measurement_figures_for(
    profile: &'static EcosystemProfile,
    tests: usize,
    seed: u64,
    plan: ShardPlan,
) -> (MeasurementFigures, StreamTimings) {
    stream_measurement_figures_cached(profile, tests, seed, plan, None)
}

/// [`stream_measurement_figures_for`] with an optional GMM fit cache
/// consulted (and fed) by the finish stage. Warm cache hits skip
/// converged EM refits but reproduce the uncached figures
/// byte-for-byte.
pub fn stream_measurement_figures_cached(
    profile: &'static EcosystemProfile,
    tests: usize,
    seed: u64,
    plan: ShardPlan,
    cache: Option<&mbw_analysis::FitCache>,
) -> (MeasurementFigures, StreamTimings) {
    let cfg = |year| DatasetConfig {
        seed,
        tests,
        year,
        profile,
    };
    stream::stream_figures_cached(cfg(Year::Y2020), cfg(Year::Y2021), plan, cache)
}

/// Render one measurement experiment by id (`table1`, `table2`,
/// `fig01` … `fig16`, `general`) with the legacy one-pass-per-figure
/// pipeline. Returns `None` for unknown ids.
pub fn render_measurement(id: &str, pops: &Populations) -> Option<String> {
    let y20 = &pops.y2020;
    let y21 = &pops.y2021;
    Some(match id {
        "table1" => tables::Table1.render(),
        "table2" => tables::Table2.render(),
        "fig01" => overview::fig01(y20, y21).render(),
        "fig02" => overview::fig02(y21).render(),
        "fig03" => overview::fig03(y21).render(),
        "fig04" => cellular::fig04(y21).render(),
        "fig05" | "fig06" => cellular::fig05_06(y21).render(),
        "fig07" => cellular::fig07(y21).render(),
        "fig08" | "fig09" => cellular::fig08_09(y21).render(),
        "fig10" => cellular::fig10(y21).render(),
        "fig11" | "fig12" => cellular::fig11_12(y21).render(),
        "fig13" => wifi::fig13(y21).render(),
        "fig14" => wifi::fig14(y21).render(),
        "fig15" => wifi::fig15(y21).render(),
        "fig16" => pdfs::fig16(y21).render(),
        "fig18" => pdfs::fig18(y21).render(),
        "fig19" => pdfs::fig19(y21).render(),
        "general" => {
            let mut s = general::spatial_disparity(y21).render();
            s.push_str(&general::urban_rural_gap(y21).render());
            s.push_str(&general::same_group_decline(y20, y21).render());
            s.push_str(&general::correlations(y21).render());
            s
        }
        "devices" => {
            let mut s = String::new();
            for tech in [
                mbw_dataset::AccessTech::Cellular4g,
                mbw_dataset::AccessTech::Cellular5g,
                mbw_dataset::AccessTech::Wifi,
            ] {
                s.push_str(&devices::hardware_illusion(y21, tech).render());
            }
            s
        }
        "export_csv" => mbw_dataset::csv::to_csv(&y21[..y21.len().min(10_000)]),
        "summary" => general::dataset_summary(y21).render(),
        _ => return None,
    })
}

/// All measurement experiment ids, in paper order.
pub const MEASUREMENT_IDS: [&str; 19] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "general",
];

/// The cellular-PDF ids rendered from the 2021 population (Figs 18–19
/// live in §5 but are measurement figures).
pub const PDF_IDS: [&str; 2] = ["fig18", "fig19"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measurement_id_renders() {
        let pops = populations(40_000, 77);
        for id in MEASUREMENT_IDS.iter().chain(PDF_IDS.iter()) {
            let text = render_measurement(id, &pops).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(text.len() > 40, "{id} rendered almost nothing");
        }
        assert!(render_measurement("fig99", &pops).is_none());
    }

    #[test]
    fn populations_have_both_years() {
        let pops = populations(2_000, 78);
        assert_eq!(pops.y2020.len(), 2_000);
        assert_eq!(pops.y2021.len(), 2_000);
        assert!(pops.y2020.iter().all(|r| r.year == Year::Y2020));
        assert!(pops.y2021.iter().all(|r| r.year == Year::Y2021));
    }

    #[test]
    fn sharded_populations_are_thread_count_independent() {
        let single = populations_with(3_000, 79, ShardPlan::new(512, 1));
        let multi = populations_with(3_000, 79, ShardPlan::new(512, 4));
        assert_eq!(single.y2020, multi.y2020);
        assert_eq!(single.y2021, multi.y2021);
    }

    #[test]
    fn streaming_path_matches_materialize_then_sweep() {
        let plan = ShardPlan::new(1_024, 2);
        let pops = populations_with(12_000, 81, plan);
        let figs = measurement_figures(&pops, 2);
        let (streamed, timings) = stream_measurement_figures(12_000, 81, plan);
        assert_eq!(timings.records, 24_000);
        for id in mbw_analysis::sweep::SWEEP_IDS {
            assert_eq!(figs.render(id), streamed.render(id), "{id} diverged");
        }
    }

    #[test]
    fn profiled_streaming_is_tagged_and_distinct() {
        let plan = ShardPlan::new(1_024, 2);
        let (china, _) = stream_measurement_figures(8_000, 82, plan);
        let (eu, _) =
            stream_measurement_figures_for(EcosystemProfile::europe_ran(), 8_000, 82, plan);
        let eu_fig04 = eu.render("fig04").unwrap();
        assert!(eu_fig04.starts_with("profile: europe-ran\n"));
        assert_ne!(china.render("fig04").unwrap(), eu_fig04);
        assert!(!china.render("fig04").unwrap().starts_with("profile:"));
    }

    #[test]
    fn fused_sweep_matches_legacy_renderer() {
        let pops = populations(25_000, 80);
        let figs = measurement_figures(&pops, 2);
        for id in MEASUREMENT_IDS
            .iter()
            .chain(PDF_IDS.iter())
            .chain(["devices", "summary"].iter())
        {
            assert_eq!(
                figs.render(id).unwrap_or_else(|| panic!("unknown id {id}")),
                render_measurement(id, &pops).expect("legacy renders"),
                "{id} diverged between fused sweep and legacy path"
            );
        }
    }
}
