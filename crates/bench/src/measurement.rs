//! Tables 1–2 and Figs 1–16 over the synthetic measurement dataset.
//!
//! A thin orchestration layer: generate the two yearly populations once
//! and hand them to the `mbw-analysis` figure functions.

use mbw_analysis::{cellular, devices, general, overview, pdfs, tables, wifi, Render};
use mbw_dataset::{DatasetConfig, Generator, TestRecord, Year};

/// The two yearly populations every measurement figure consumes.
pub struct Populations {
    /// 2020 records (BTS-APP's earlier measurement reports).
    pub y2020: Vec<TestRecord>,
    /// The paper's main Aug–Nov 2021 population.
    pub y2021: Vec<TestRecord>,
}

/// Generate both populations with `tests` records each.
pub fn populations(tests: usize, seed: u64) -> Populations {
    Populations {
        y2020: Generator::new(DatasetConfig {
            seed,
            tests,
            year: Year::Y2020,
        })
        .generate(),
        y2021: Generator::new(DatasetConfig {
            seed,
            tests,
            year: Year::Y2021,
        })
        .generate(),
    }
}

/// Render one measurement experiment by id (`table1`, `table2`,
/// `fig01` … `fig16`, `general`). Returns `None` for unknown ids.
pub fn render_measurement(id: &str, pops: &Populations) -> Option<String> {
    let y20 = &pops.y2020;
    let y21 = &pops.y2021;
    Some(match id {
        "table1" => tables::Table1.render(),
        "table2" => tables::Table2.render(),
        "fig01" => overview::fig01(y20, y21).render(),
        "fig02" => overview::fig02(y21).render(),
        "fig03" => overview::fig03(y21).render(),
        "fig04" => cellular::fig04(y21).render(),
        "fig05" | "fig06" => cellular::fig05_06(y21).render(),
        "fig07" => cellular::fig07(y21).render(),
        "fig08" | "fig09" => cellular::fig08_09(y21).render(),
        "fig10" => cellular::fig10(y21).render(),
        "fig11" | "fig12" => cellular::fig11_12(y21).render(),
        "fig13" => wifi::fig13(y21).render(),
        "fig14" => wifi::fig14(y21).render(),
        "fig15" => wifi::fig15(y21).render(),
        "fig16" => pdfs::fig16(y21).render(),
        "fig18" => pdfs::fig18(y21).render(),
        "fig19" => pdfs::fig19(y21).render(),
        "general" => {
            let mut s = general::spatial_disparity(y21).render();
            s.push_str(&general::urban_rural_gap(y21).render());
            s.push_str(&general::same_group_decline(y20, y21).render());
            s.push_str(&general::correlations(y21).render());
            s
        }
        "devices" => {
            let mut s = String::new();
            for tech in [
                mbw_dataset::AccessTech::Cellular4g,
                mbw_dataset::AccessTech::Cellular5g,
                mbw_dataset::AccessTech::Wifi,
            ] {
                s.push_str(&devices::hardware_illusion(y21, tech).render());
            }
            s
        }
        "export_csv" => mbw_dataset::csv::to_csv(&y21[..y21.len().min(10_000)]),
        "summary" => general::dataset_summary(y21).render(),
        _ => return None,
    })
}

/// All measurement experiment ids, in paper order.
pub const MEASUREMENT_IDS: [&str; 19] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "general",
];

/// The cellular-PDF ids rendered from the 2021 population (Figs 18–19
/// live in §5 but are measurement figures).
pub const PDF_IDS: [&str; 2] = ["fig18", "fig19"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measurement_id_renders() {
        let pops = populations(40_000, 77);
        for id in MEASUREMENT_IDS.iter().chain(PDF_IDS.iter()) {
            let text = render_measurement(id, &pops).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(text.len() > 40, "{id} rendered almost nothing");
        }
        assert!(render_measurement("fig99", &pops).is_none());
    }

    #[test]
    fn populations_have_both_years() {
        let pops = populations(2_000, 78);
        assert_eq!(pops.y2020.len(), 2_000);
        assert_eq!(pops.y2021.len(), 2_000);
        assert!(pops.y2020.iter().all(|r| r.year == Year::Y2020));
        assert!(pops.y2021.iter().all(|r| r.year == Year::Y2021));
    }
}
