//! Fig 26 and the §5.3 infrastructure-cost comparison.

use mbw_deploy::utilization::{cost_comparison, ReplayConfig};
use mbw_deploy::{replay_month, solve_ilp, synthetic_catalog, PurchaseProblem, WorkloadEstimate};
use std::fmt::Write as _;

/// Fig 26 output: the utilisation CDF annotations plus the cost result.
#[derive(Debug, Clone)]
pub struct Fig26 {
    /// `(median, mean, p99, p999, max)` busy-second utilisation, %.
    pub summary: (f64, f64, f64, f64, f64),
    /// Fraction of seconds with any load at all.
    pub busy_fraction: f64,
    /// `(x%, CDF)` series over busy seconds.
    pub series: Vec<(f64, f64)>,
}

/// Run the month-long replay (scaled to `days`).
pub fn fig26(days: u32, seed: u64) -> Fig26 {
    let mut config = ReplayConfig::swiftest_paper(seed);
    config.days = days;
    let report = replay_month(&config);
    let ecdf = report.ecdf();
    let series = ecdf
        .series(40)
        .into_iter()
        .map(|(x, f)| (x * 100.0, f))
        .collect();
    Fig26 {
        summary: report.summary_percent(),
        busy_fraction: report.busy_fraction,
        series,
    }
}

impl Fig26 {
    /// Text report.
    pub fn render(&self) -> String {
        let (median, mean, p99, p999, max) = self.summary;
        let mut out =
            String::from("Fig 26: Swiftest server bandwidth utilisation (busy seconds)\n");
        let _ = writeln!(
            out,
            "median = {median:.1}%  mean = {mean:.1}%  P99 = {p99:.1}%  P999 = {p999:.1}%  max = {max:.1}%"
        );
        let _ = writeln!(
            out,
            "busy seconds: {:.1}% of the month",
            self.busy_fraction * 100.0
        );
        for (x, f) in &self.series {
            let _ = writeln!(out, "{:>7.1}%  CDF {:>6.3}", x, f);
        }
        out
    }
}

/// The §5.3 cost table: BTS-APP's 50 × 1 Gbps allocation vs Swiftest's
/// ILP purchase, plus the plan details.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// BTS-APP's monthly spend, USD.
    pub bts_app_cost: f64,
    /// Swiftest's monthly spend, USD.
    pub swiftest_cost: f64,
    /// Reduction factor.
    pub ratio: f64,
    /// Swiftest's fleet: `(offer id, units)`.
    pub plan: Vec<(u32, u32)>,
    /// Swiftest's fleet capacity, Mbps.
    pub fleet_mbps: f64,
}

/// Compute the cost comparison and the underlying plan.
pub fn cost_report(seed: u64) -> CostReport {
    let (bts, swift) = cost_comparison(seed);
    let catalog: Vec<_> = synthetic_catalog(seed)
        .into_iter()
        .filter(|o| o.bandwidth_mbps <= 300.0)
        .collect();
    let demand = WorkloadEstimate::swiftest_paper().provisioning_demand_mbps();
    let plan = solve_ilp(&PurchaseProblem {
        offers: catalog,
        demand_mbps: demand,
        margin: 0.08,
    })
    .expect("paper workload is purchasable");
    CostReport {
        bts_app_cost: bts,
        swiftest_cost: swift,
        ratio: bts / swift,
        plan: plan.purchases.clone(),
        fleet_mbps: plan.total_bandwidth_mbps,
    }
}

impl CostReport {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Infrastructure cost (per month, §5.3)\n");
        let _ = writeln!(out, "BTS-APP  (50 × 1 Gbps):  ${:>8.2}", self.bts_app_cost);
        let _ = writeln!(
            out,
            "Swiftest (ILP, {:.0} Mbps): ${:>8.2}",
            self.fleet_mbps, self.swiftest_cost
        );
        let _ = writeln!(out, "reduction: {:.1}x", self.ratio);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig26_annotations_have_fig_shape() {
        let fig = fig26(10, 42);
        let (median, mean, p99, _p999, max) = fig.summary;
        assert!(median < mean, "skewed right: {median} vs {mean}");
        assert!(mean < p99 && p99 < max);
        assert!((1.0..=15.0).contains(&median), "median {median}");
        assert!(p99 < 80.0, "p99 {p99}");
    }

    #[test]
    fn cost_reduction_matches_paper_scale() {
        let report = cost_report(7);
        assert!(
            (8.0..=30.0).contains(&report.ratio),
            "ratio {}",
            report.ratio
        );
        assert!(report.fleet_mbps >= 1_900.0);
        assert!(!report.plan.is_empty());
    }

    #[test]
    fn renders() {
        assert!(fig26(3, 1).render().contains("P99"));
        assert!(cost_report(2).render().contains("reduction"));
    }
}
