//! Fig 26 and the §5.3 infrastructure-cost comparison.
//!
//! Fig 26 is a streaming reducer over the replay's raw per-second
//! demand stream ([`mbw_deploy::replay_seconds`]); the cost report can
//! take its workload estimate either from the paper's calibrated
//! constants or from the evaluation campaign's own observed Swiftest
//! outcomes ([`WorkloadAcc`]).

use mbw_analysis::accum::FigureAccumulator;
use mbw_core::{EmptyCampaign, TrialView};
use mbw_deploy::utilization::{cost_comparison, ReplayConfig};
use mbw_deploy::{
    replay_seconds, solve_ilp, synthetic_catalog, PurchaseProblem, UtilizationReport,
    WorkloadEstimate,
};
use std::fmt::Write as _;

/// Fig 26 output: the utilisation CDF annotations plus the cost result.
#[derive(Debug, Clone)]
pub struct Fig26 {
    /// `(median, mean, p99, p999, max)` busy-second utilisation, %.
    pub summary: (f64, f64, f64, f64, f64),
    /// Fraction of seconds with any load at all.
    pub busy_fraction: f64,
    /// `(x%, CDF)` series over busy seconds.
    pub series: Vec<(f64, f64)>,
}

/// Streaming reducer for Fig 26 over per-second demand fractions.
#[derive(Debug, Clone, Default)]
pub struct Fig26Acc {
    seconds: usize,
    busy: Vec<f64>,
}

impl FigureAccumulator<f64> for Fig26Acc {
    type Output = Result<Fig26, EmptyCampaign>;

    fn observe(&mut self, &demand: &f64) {
        self.seconds += 1;
        if demand > 0.0 {
            self.busy.push(demand);
        }
    }

    fn merge(&mut self, other: Self) {
        self.seconds += other.seconds;
        self.busy.extend(other.busy);
    }

    fn finish(self) -> Self::Output {
        if self.seconds == 0 {
            return Err(EmptyCampaign);
        }
        let report = UtilizationReport {
            busy_fraction: self.busy.len() as f64 / self.seconds as f64,
            busy_samples: self.busy,
        };
        let series = report
            .ecdf()
            .series(40)
            .into_iter()
            .map(|(x, f)| (x * 100.0, f))
            .collect();
        Ok(Fig26 {
            summary: report.summary_percent(),
            busy_fraction: report.busy_fraction,
            series,
        })
    }
}

/// Run the month-long replay (scaled to `days`).
pub fn fig26(days: u32, seed: u64) -> Result<Fig26, EmptyCampaign> {
    let mut config = ReplayConfig::swiftest_paper(seed);
    config.days = days;
    let mut acc = Fig26Acc::default();
    for demand in replay_seconds(&config) {
        acc.observe(&demand);
    }
    acc.finish()
}

impl Fig26 {
    /// Text report.
    pub fn render(&self) -> String {
        let (median, mean, p99, p999, max) = self.summary;
        let mut out =
            String::from("Fig 26: Swiftest server bandwidth utilisation (busy seconds)\n");
        let _ = writeln!(
            out,
            "median = {median:.1}%  mean = {mean:.1}%  P99 = {p99:.1}%  P999 = {p999:.1}%  max = {max:.1}%"
        );
        let _ = writeln!(
            out,
            "busy seconds: {:.1}% of the month",
            self.busy_fraction * 100.0
        );
        for (x, f) in &self.series {
            let _ = writeln!(out, "{:>7.1}%  CDF {:>6.3}", x, f);
        }
        out
    }
}

/// Streaming reducer that estimates the deployment workload from the
/// campaign's own Swiftest pair outcomes — the "recent user scale and
/// their access bandwidths reflected in our data" of §5.2, with the
/// durations and reported bandwidths observed in the evaluation pool.
#[derive(Debug, Clone, Default)]
pub struct WorkloadAcc {
    durations_s: Vec<f64>,
    bandwidths_mbps: Vec<f64>,
}

impl mbw_frame::Codec for WorkloadAcc {
    fn encode(&self, enc: &mut mbw_frame::Enc) {
        self.durations_s.encode(enc);
        self.bandwidths_mbps.encode(enc);
    }

    fn decode(dec: &mut mbw_frame::Dec<'_>) -> Result<Self, mbw_frame::CodecError> {
        Ok(Self {
            durations_s: mbw_frame::Codec::decode(dec)?,
            bandwidths_mbps: mbw_frame::Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for WorkloadAcc {
    type Output = Result<WorkloadEstimate, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let Some((_, swift, _)) = crate::bts_eval::eval_pair_outcomes(r) {
            self.durations_s.push(swift.total_s());
            self.bandwidths_mbps.push(swift.estimate_mbps);
        }
    }

    fn merge(&mut self, other: Self) {
        self.durations_s.extend(other.durations_s);
        self.bandwidths_mbps.extend(other.bandwidths_mbps);
    }

    fn finish(self) -> Self::Output {
        if self.durations_s.is_empty() {
            return Err(EmptyCampaign);
        }
        Ok(WorkloadEstimate::from_samples(
            10_000.0,
            &self.durations_s,
            &self.bandwidths_mbps,
        ))
    }
}

/// The §5.3 cost table: BTS-APP's 50 × 1 Gbps allocation vs Swiftest's
/// ILP purchase, plus the plan details.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// BTS-APP's monthly spend, USD.
    pub bts_app_cost: f64,
    /// Swiftest's monthly spend, USD.
    pub swiftest_cost: f64,
    /// Reduction factor.
    pub ratio: f64,
    /// Swiftest's fleet: `(offer id, units)`.
    pub plan: Vec<(u32, u32)>,
    /// Swiftest's fleet capacity, Mbps.
    pub fleet_mbps: f64,
}

/// Compute the cost comparison for a given workload estimate.
pub fn cost_report_with(workload: &WorkloadEstimate, seed: u64) -> CostReport {
    // The BTS-APP side of the comparison is workload-independent: a
    // fixed 50 × 1 Gbps allocation at market price.
    let (bts, _) = cost_comparison(seed);
    let catalog: Vec<_> = synthetic_catalog(seed)
        .into_iter()
        .filter(|o| o.bandwidth_mbps <= 300.0)
        .collect();
    let plan = solve_ilp(&PurchaseProblem {
        offers: catalog,
        demand_mbps: workload.provisioning_demand_mbps(),
        margin: 0.08,
    })
    .expect("paper workload is purchasable");
    CostReport {
        bts_app_cost: bts,
        swiftest_cost: plan.total_cost,
        ratio: bts / plan.total_cost,
        plan: plan.purchases.clone(),
        fleet_mbps: plan.total_bandwidth_mbps,
    }
}

/// Compute the cost comparison with the paper-calibrated workload.
pub fn cost_report(seed: u64) -> CostReport {
    cost_report_with(&WorkloadEstimate::swiftest_paper(), seed)
}

impl CostReport {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Infrastructure cost (per month, §5.3)\n");
        let _ = writeln!(out, "BTS-APP  (50 × 1 Gbps):  ${:>8.2}", self.bts_app_cost);
        let _ = writeln!(
            out,
            "Swiftest (ILP, {:.0} Mbps): ${:>8.2}",
            self.fleet_mbps, self.swiftest_cost
        );
        let _ = writeln!(out, "reduction: {:.1}x", self.ratio);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_core::{run_campaign, CampaignPlan};

    #[test]
    fn fig26_annotations_have_fig_shape() {
        let fig = fig26(10, 42).expect("non-empty replay");
        let (median, mean, p99, _p999, max) = fig.summary;
        assert!(median < mean, "skewed right: {median} vs {mean}");
        assert!(mean < p99 && p99 < max);
        assert!((1.0..=15.0).contains(&median), "median {median}");
        assert!(p99 < 80.0, "p99 {p99}");
    }

    #[test]
    fn fig26_matches_the_batch_replay() {
        // The streaming reducer over `replay_seconds` must agree with
        // `replay_month`'s batch summary exactly.
        let config = ReplayConfig::swiftest_paper(26);
        let fig = fig26(config.days, 26).expect("ok");
        let report = mbw_deploy::replay_month(&config);
        assert_eq!(fig.summary, report.summary_percent());
        assert_eq!(fig.busy_fraction, report.busy_fraction);
    }

    #[test]
    fn empty_replay_is_a_typed_error() {
        assert_eq!(fig26(0, 1).unwrap_err(), EmptyCampaign);
    }

    #[test]
    fn cost_reduction_matches_paper_scale() {
        let report = cost_report(7);
        assert!(
            (8.0..=30.0).contains(&report.ratio),
            "ratio {}",
            report.ratio
        );
        assert!(report.fleet_mbps >= 1_900.0);
        assert!(!report.plan.is_empty());
    }

    #[test]
    fn campaign_workload_lands_near_the_paper_constants() {
        let mut plan = CampaignPlan::new(520);
        crate::bts_eval::plan_pairs(&mut plan, 40);
        let pool = run_campaign(&plan, 1);
        let w = crate::eval_sweep::reduce(WorkloadAcc::default(), &pool).expect("non-empty");
        let hand = WorkloadEstimate::swiftest_paper();
        // Swiftest's observed ~1 s tests and the pooled bandwidth
        // population should reproduce §5.2's calibrated workload well
        // enough that the same 2 Gbps-class fleet covers it.
        assert!(
            (0.5..=2.5).contains(&w.mean_duration_s),
            "duration {}",
            w.mean_duration_s
        );
        assert!(
            (w.mean_bandwidth_mbps - hand.mean_bandwidth_mbps).abs() < 120.0,
            "mean bw {}",
            w.mean_bandwidth_mbps
        );
        let report = cost_report_with(&w, 7);
        assert!(
            (5.0..=40.0).contains(&report.ratio),
            "ratio {}",
            report.ratio
        );
    }

    #[test]
    fn renders() {
        assert!(fig26(3, 1).expect("ok").render().contains("P99"));
        assert!(cost_report(2).render().contains("reduction"));
    }
}
