//! The closed measurement loop: the §2 data-collection plugin, end to
//! end.
//!
//! The paper's pipeline is circular: the BTS app runs tests and the
//! plugin collects cross-layer context → the analysis fits per-technology
//! bandwidth models → Swiftest probes with those models → its results
//! (with context) feed the next model refresh ("updating the statistical
//! model periodically", §5.1). This module closes that loop inside the
//! simulation: run real (simulated) Swiftest tests over drawn links,
//! emit proper [`TestRecord`]s with the context a plugin would capture,
//! and refresh the model from them.

use mbw_core::estimator::ConvergenceEstimator;
use mbw_core::outcome::TestStatus;
use mbw_core::probe::{run_swiftest, SwiftestConfig};
use mbw_core::{trial_seed, AccessScenario, TechClass};
use mbw_dataset::types::CellBand;
use mbw_dataset::{
    AccessTech, CellInfo, CityTier, DeviceTier, Isp, LinkInfo, NrBandId, OutcomeClass, TestRecord,
    Year,
};
use mbw_stats::{Gmm, SeededRng};
use mbw_telemetry::PipelineMetrics;
use std::time::Instant;

/// Run `n` simulated Swiftest tests with the given model and wrap each
/// result in the record the collection plugin would upload.
///
/// The cellular context is synthesised to be *consistent with the drawn
/// link* (a faster draw reports better RSS/SNR), which is all the model
/// refresh consumes.
pub fn collect_records(tech: TechClass, model: &Gmm, n: usize, seed: u64) -> Vec<TestRecord> {
    let scenario = AccessScenario {
        model: model.clone(),
        ..AccessScenario::default_for(tech)
    };
    let mut rng = SeededRng::new(seed ^ 0xC011EC7);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        // Per-test seed stream, same derivation as the campaign's
        // trials (no stride arithmetic that could collide across i).
        let s = trial_seed(seed, 0xC011 | ((tech as u64) << 16), i as u64);
        let drawn = scenario.draw(s);
        let mut est = ConvergenceEstimator::swiftest();
        let result = run_swiftest(
            drawn.build(),
            model,
            &mut est,
            &SwiftestConfig::default(),
            s ^ 0x51AB,
        );
        // Context a plugin would read off the modem: RSS consistent with
        // the link quality (quantile of truth within the population).
        let q = model.cdf(drawn.truth_mbps);
        let rss_level = (1.0 + q * 4.0).round().clamp(1.0, 5.0) as u8;
        let band = if drawn.truth_mbps < 150.0 {
            NrBandId::N1
        } else {
            NrBandId::N78
        };
        records.push(TestRecord {
            bandwidth_mbps: result.estimate_mbps,
            outcome: match result.status {
                TestStatus::Complete => OutcomeClass::Complete,
                TestStatus::Degraded(_) => OutcomeClass::Degraded,
                TestStatus::Failed(_) => OutcomeClass::Failed,
            },
            tech: match tech {
                TechClass::Lte => AccessTech::Cellular4g,
                TechClass::Nr => AccessTech::Cellular5g,
                TechClass::Wifi => AccessTech::Wifi,
            },
            isp: *rng.choose(&[Isp::Isp1, Isp::Isp2, Isp::Isp3]),
            year: Year::Y2021,
            city_id: rng.index(326) as u16,
            city_tier: *rng.choose(&[CityTier::Mega, CityTier::Medium, CityTier::Small]),
            urban: rng.chance(0.7),
            hour: rng.index(24) as u8,
            android_version: 9 + rng.index(4) as u8,
            device_model: rng.index(2381) as u16,
            device_tier: *rng.choose(&[DeviceTier::Low, DeviceTier::Mid, DeviceTier::High]),
            link: LinkInfo::Cell(CellInfo {
                band: CellBand::Nr(band),
                rss_level,
                rss_dbm: -115.0 + 10.0 * rss_level as f64,
                snr_db: 5.0 + 7.5 * (rss_level as f64 - 1.0),
                bs_id: rng.index(2_041_586) as u32,
                arfcn: 33_000 + rng.index(5000) as u32,
                lte_advanced: false,
            }),
        });
    }
    records
}

/// [`collect_records`], reporting the batch size and wall time to the
/// pipeline's `records_generated_total` counter and throughput gauge.
pub fn collect_records_metered(
    tech: TechClass,
    model: &Gmm,
    n: usize,
    seed: u64,
    metrics: &PipelineMetrics,
) -> Vec<TestRecord> {
    let t0 = Instant::now();
    let records = collect_records(tech, model, n, seed);
    metrics.observe_generated(records.len() as u64, t0.elapsed());
    records
}

/// Fit the refreshed model from a collected batch.
fn fit_refresh(records: &[TestRecord], seed: u64) -> Option<Gmm> {
    let bw: Vec<f64> = records
        .iter()
        .map(|r| r.bandwidth_mbps)
        .filter(|&b| b > 0.0)
        .collect();
    Gmm::fit_auto(&bw, 5, seed ^ 0xF17).ok()
}

/// One model-refresh iteration: collect → fit → return the new model.
pub fn refresh_model(tech: TechClass, model: &Gmm, n: usize, seed: u64) -> Option<Gmm> {
    let records = collect_records(tech, model, n, seed);
    fit_refresh(&records, seed)
}

/// [`refresh_model`], reporting both pipeline stages to `metrics`: the
/// collection batch as generated records, the fit as analyzed records.
pub fn refresh_model_metered(
    tech: TechClass,
    model: &Gmm,
    n: usize,
    seed: u64,
    metrics: &PipelineMetrics,
) -> Option<Gmm> {
    let records = collect_records_metered(tech, model, n, seed, metrics);
    let t0 = Instant::now();
    let fit = fit_refresh(&records, seed);
    metrics.observe_analyzed(records.len() as u64, t0.elapsed());
    fit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_stats::descriptive;

    #[test]
    fn collected_records_carry_consistent_context() {
        let model = TechClass::Nr.default_model();
        let records = collect_records(TechClass::Nr, &model, 60, 9001);
        assert_eq!(records.len(), 60);
        // RSS should correlate with the measured bandwidth (the plugin's
        // whole point: context that explains the result).
        let xs: Vec<f64> = records
            .iter()
            .map(|r| r.cell().expect("cellular record").rss_level as f64)
            .collect();
        let ys: Vec<f64> = records.iter().map(|r| r.bandwidth_mbps).collect();
        let r = descriptive::pearson(&xs, &ys).expect("correlation defined");
        assert!(r > 0.4, "RSS~bandwidth r = {r}");
    }

    #[test]
    fn model_refresh_loop_is_stable() {
        // §5.1: distributions are stable on a moderate time scale, so
        // refreshing the model from its own measurements must not drift:
        // two refresh generations keep the population mean within 15%.
        let initial = TechClass::Nr.default_model();
        let gen1 = refresh_model(TechClass::Nr, &initial, 400, 42).expect("fit 1");
        let gen2 = refresh_model(TechClass::Nr, &gen1, 400, 43).expect("fit 2");
        let drift1 = (gen1.mean() - initial.mean()).abs() / initial.mean();
        let drift2 = (gen2.mean() - gen1.mean()).abs() / gen1.mean();
        assert!(drift1 < 0.15, "generation 1 drift {drift1}");
        assert!(drift2 < 0.15, "generation 2 drift {drift2}");
        // And the refreshed model still probes well.
        let scenario = AccessScenario {
            model: gen2.clone(),
            ..AccessScenario::default_for(TechClass::Nr)
        };
        let drawn = scenario.draw(7);
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            drawn.build(),
            &gen2,
            &mut est,
            &SwiftestConfig::default(),
            7,
        );
        assert!(r.estimate_mbps > 0.0);
        assert!(r.duration.as_secs_f64() < 4.6);
    }

    #[test]
    fn metered_refresh_reports_both_pipeline_stages() {
        use mbw_telemetry::Registry;
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        let initial = TechClass::Nr.default_model();
        let refreshed = refresh_model_metered(TechClass::Nr, &initial, 200, 5150, &metrics);
        assert!(refreshed.is_some());
        assert_eq!(metrics.generated_total(), 200);
        assert_eq!(metrics.analyzed_total(), 200);
        // Metered and unmetered refreshes are the same computation.
        let plain = refresh_model(TechClass::Nr, &initial, 200, 5150).expect("fit");
        let metered = refreshed.expect("fit");
        assert_eq!(plain.mean(), metered.mean());
        assert_eq!(plain.k(), metered.k());
    }

    #[test]
    fn refreshed_model_is_multimodal_like_the_population() {
        let initial = TechClass::Nr.default_model();
        let refreshed = refresh_model(TechClass::Nr, &initial, 600, 77).expect("fit");
        assert!(refreshed.k() >= 2, "k = {}", refreshed.k());
    }
}
