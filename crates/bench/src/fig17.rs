//! Fig 17: TCP slow-start / ramp-up time per congestion controller.
//!
//! The paper configured Cubic / Reno / BBR on production servers and
//! measured slow-start duration with `tcp_probe` across access
//! bandwidths. Here each data point runs the round-based flow simulation
//! over paths drawn with realistic RTTs, spurious wireless loss, and a
//! radio-scheduler ramp; the metric is the time until the 50 ms goodput
//! samples first reach 90% of the link's nominal rate.

use mbw_congestion::{CcAlgorithm, FlowConfig, FlowSim};
use mbw_netsim::{ConstantCapacity, PathConfig, PathModel, RampUpCapacity};
use mbw_stats::{descriptive, SeededRng};
use std::fmt::Write as _;
use std::time::Duration;

/// The paper's x-axis bins (Mbps).
pub const BANDWIDTH_BINS: [f64; 6] = [100.0, 300.0, 500.0, 700.0, 900.0, 1100.0];

/// Fig 17 data.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// `(bandwidth bin Mbps, algorithm, mean ramp-up seconds)`.
    pub rows: Vec<(f64, CcAlgorithm, f64)>,
}

impl Fig17 {
    /// Mean ramp time for one `(bin, algorithm)` cell.
    pub fn cell(&self, bin: f64, alg: CcAlgorithm) -> Option<f64> {
        self.rows
            .iter()
            .find(|(b, a, _)| *b == bin && *a == alg)
            .map(|(_, _, t)| *t)
    }

    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 17: TCP ramp-up time to 90% of capacity (seconds)\n");
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}",
            "Mbps", "Cubic", "Reno", "BBR"
        );
        for &bin in &BANDWIDTH_BINS {
            let _ = writeln!(
                out,
                "{:<10} {:>8.2} {:>8.2} {:>8.2}",
                bin,
                self.cell(bin, CcAlgorithm::Cubic).unwrap_or(f64::NAN),
                self.cell(bin, CcAlgorithm::Reno).unwrap_or(f64::NAN),
                self.cell(bin, CcAlgorithm::Bbr).unwrap_or(f64::NAN),
            );
        }
        out
    }
}

/// Time for one flow to first reach `frac` of nominal on a drawn path;
/// `cap_secs` when it never does within the run.
fn ramp_time(alg: CcAlgorithm, mbps: f64, seed: u64, cap_secs: f64) -> f64 {
    let mut rng = SeededRng::new(seed);
    // Cellular-test path: tens-of-ms RTT, spurious loss, radio ramp.
    let rtt = rng.uniform_range(0.025, 0.075);
    // Cellular link-layer retransmission hides most wireless corruption
    // from TCP; the residual spurious-loss rate is tiny but non-zero.
    let loss = 10f64.powf(rng.uniform_range(-6.0, -4.6));
    // The per-UE scheduler grant ramps in rate steps: reaching a 1 Gbps
    // grant takes longer than a 100 Mbps one (CQI/AMC adaptation + BSR
    // ramp), so the ramp duration scales sub-linearly with rate.
    let ramp = rng.uniform_range(0.5, 1.1) * (mbps / 300.0).powf(0.4);
    let capacity = RampUpCapacity::new(ConstantCapacity(mbps * 1e6), ramp, 0.15);
    let path = PathModel::new(PathConfig {
        capacity: Box::new(capacity),
        base_rtt: Duration::from_secs_f64(rtt),
        loss_prob: loss,
        buffer_bdp: 1.0,
        seed,
    });
    let trace = FlowSim::run(
        path,
        alg.build(),
        FlowConfig {
            max_duration: Duration::from_secs_f64(cap_secs),
            seed: seed ^ 0xF16,
            ..Default::default()
        },
    );
    trace
        .time_to_fraction(mbps * 1e6, 0.90)
        .map(|d| d.as_secs_f64())
        .unwrap_or(cap_secs)
}

/// Run the full sweep with `paths_per_point` drawn paths per cell.
pub fn fig17(paths_per_point: usize, seed: u64) -> Fig17 {
    let cap = 12.0;
    let mut rows = Vec::new();
    for &bin in &BANDWIDTH_BINS {
        for alg in CcAlgorithm::ALL {
            let times: Vec<f64> = (0..paths_per_point)
                .map(|i| ramp_time(alg, bin, seed.wrapping_add(i as u64 * 131), cap))
                .collect();
            rows.push((bin, alg, descriptive::mean(&times)));
        }
    }
    Fig17 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_shape_matches_paper() {
        let fig = fig17(12, 1700);
        // 1. Ramp time grows with bandwidth for every algorithm.
        for alg in CcAlgorithm::ALL {
            let low = fig.cell(100.0, alg).unwrap();
            let high = fig.cell(1100.0, alg).unwrap();
            assert!(high > low, "{alg}: {low} !< {high}");
        }
        // 2. Cubic is obviously the slowest; BBR beats Reno (§5.1).
        for &bin in &[300.0, 700.0, 1100.0] {
            let cubic = fig.cell(bin, CcAlgorithm::Cubic).unwrap();
            let reno = fig.cell(bin, CcAlgorithm::Reno).unwrap();
            let bbr = fig.cell(bin, CcAlgorithm::Bbr).unwrap();
            assert!(cubic > reno, "{bin}: cubic {cubic} !> reno {reno}");
            assert!(reno > bbr, "{bin}: reno {reno} !> bbr {bbr}");
        }
        // 3. Magnitudes are whole seconds, eating a large fraction of a
        //    10 s flooding test (the §5.1 argument for dropping TCP).
        let bbr_100 = fig.cell(100.0, CcAlgorithm::Bbr).unwrap();
        assert!((0.3..=4.0).contains(&bbr_100), "BBR@100 {bbr_100}");
        let cubic_1100 = fig.cell(1100.0, CcAlgorithm::Cubic).unwrap();
        assert!(
            (2.0..=12.0).contains(&cubic_1100),
            "Cubic@1100 {cubic_1100}"
        );
    }

    #[test]
    fn render_mentions_all_algorithms() {
        let fig = fig17(3, 3);
        let text = fig.render();
        for name in ["Cubic", "Reno", "BBR"] {
            assert!(text.contains(name));
        }
        assert!(text.lines().count() >= BANDWIDTH_BINS.len() + 2);
    }

    #[test]
    fn deterministic() {
        let a = fig17(4, 9);
        let b = fig17(4, 9);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.2, y.2);
        }
    }
}
