//! Fig 17: TCP slow-start / ramp-up time per congestion controller.
//!
//! The paper configured Cubic / Reno / BBR on production servers and
//! measured slow-start duration with `tcp_probe` across access
//! bandwidths. Here each data point is a `Ramp` campaign trial: the
//! round-based flow simulation over paths drawn with realistic RTTs,
//! spurious wireless loss, and a radio-scheduler ramp; the metric is
//! the time until the 50 ms goodput samples first reach 90% of the
//! link's nominal rate. All `(bandwidth, algorithm)` cells share one
//! seed stream (common random numbers), as the legacy per-figure sweep
//! arranged by reusing one stride sequence.

use mbw_analysis::accum::FigureAccumulator;
use mbw_congestion::CcAlgorithm;
pub use mbw_core::campaign::BANDWIDTH_BINS;
use mbw_core::{run_campaign, CampaignPlan, EmptyCampaign, TrialKind, TrialView};
use mbw_stats::descriptive;
use std::fmt::Write as _;

/// Fig 17 data.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// `(bandwidth bin Mbps, algorithm, mean ramp-up seconds)`.
    pub rows: Vec<(f64, CcAlgorithm, f64)>,
}

impl Fig17 {
    /// Mean ramp time for one `(bin, algorithm)` cell.
    pub fn cell(&self, bin: f64, alg: CcAlgorithm) -> Option<f64> {
        self.rows
            .iter()
            .find(|(b, a, _)| *b == bin && *a == alg)
            .map(|(_, _, t)| *t)
    }

    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 17: TCP ramp-up time to 90% of capacity (seconds)\n");
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}",
            "Mbps", "Cubic", "Reno", "BBR"
        );
        for &bin in &BANDWIDTH_BINS {
            let _ = writeln!(
                out,
                "{:<10} {:>8.2} {:>8.2} {:>8.2}",
                bin,
                self.cell(bin, CcAlgorithm::Cubic).unwrap_or(f64::NAN),
                self.cell(bin, CcAlgorithm::Reno).unwrap_or(f64::NAN),
                self.cell(bin, CcAlgorithm::Bbr).unwrap_or(f64::NAN),
            );
        }
        out
    }
}

fn alg_index(alg: CcAlgorithm) -> usize {
    CcAlgorithm::ALL
        .iter()
        .position(|&a| a == alg)
        .expect("algorithm in ALL")
}

/// Streaming reducer for Fig 17: collects ramp times per
/// `(bandwidth bin, algorithm)` cell from the campaign pool.
#[derive(Debug, Clone)]
pub struct Fig17Acc {
    /// `cells[bin * 3 + alg]`, each in pool order.
    cells: Vec<Vec<f64>>,
}

impl Fig17Acc {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            cells: vec![Vec::new(); BANDWIDTH_BINS.len() * CcAlgorithm::ALL.len()],
        }
    }
}

impl Default for Fig17Acc {
    fn default() -> Self {
        Self::new()
    }
}

impl mbw_frame::Codec for Fig17Acc {
    fn encode(&self, enc: &mut mbw_frame::Enc) {
        self.cells.encode(enc);
    }

    fn decode(dec: &mut mbw_frame::Dec<'_>) -> Result<Self, mbw_frame::CodecError> {
        Ok(Self {
            cells: mbw_analysis::accum::decode_fixed_outer(
                dec,
                BANDWIDTH_BINS.len() * CcAlgorithm::ALL.len(),
                "fig17 cells",
            )?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for Fig17Acc {
    type Output = Result<Fig17, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let TrialKind::Ramp(alg, bin) = r.spec().kind {
            self.cells[bin as usize * CcAlgorithm::ALL.len() + alg_index(alg)]
                .push(r.solo().duration_s);
        }
    }

    fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells) {
            mine.extend(theirs);
        }
    }

    fn finish(self) -> Self::Output {
        if self.cells.iter().all(|c| c.is_empty()) {
            return Err(EmptyCampaign);
        }
        let mut rows = Vec::new();
        for (b, &bin) in BANDWIDTH_BINS.iter().enumerate() {
            for (a, &alg) in CcAlgorithm::ALL.iter().enumerate() {
                rows.push((
                    bin,
                    alg,
                    descriptive::mean(&self.cells[b * CcAlgorithm::ALL.len() + a]),
                ));
            }
        }
        Ok(Fig17 { rows })
    }
}

/// Add the Fig 17 trials to `plan`.
pub fn plan_fig17(plan: &mut CampaignPlan, paths_per_point: usize) {
    for alg in CcAlgorithm::ALL {
        for bin in 0..BANDWIDTH_BINS.len() {
            plan.push_series(
                TrialKind::Ramp(alg, bin as u8),
                mbw_core::campaign::RAMP_SCENARIO,
                paths_per_point,
            );
        }
    }
}

/// Run the full sweep with `paths_per_point` drawn paths per cell.
pub fn fig17(paths_per_point: usize, seed: u64) -> Result<Fig17, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_fig17(&mut plan, paths_per_point);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(Fig17Acc::new(), &pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_shape_matches_paper() {
        let fig = fig17(12, 1700).expect("non-empty campaign");
        // 1. Ramp time grows with bandwidth for every algorithm.
        for alg in CcAlgorithm::ALL {
            let low = fig.cell(100.0, alg).unwrap();
            let high = fig.cell(1100.0, alg).unwrap();
            assert!(high > low, "{alg}: {low} !< {high}");
        }
        // 2. Cubic is obviously the slowest; BBR beats Reno (§5.1).
        for &bin in &[300.0, 700.0, 1100.0] {
            let cubic = fig.cell(bin, CcAlgorithm::Cubic).unwrap();
            let reno = fig.cell(bin, CcAlgorithm::Reno).unwrap();
            let bbr = fig.cell(bin, CcAlgorithm::Bbr).unwrap();
            assert!(cubic > reno, "{bin}: cubic {cubic} !> reno {reno}");
            assert!(reno > bbr, "{bin}: reno {reno} !> bbr {bbr}");
        }
        // 3. Magnitudes are whole seconds, eating a large fraction of a
        //    10 s flooding test (the §5.1 argument for dropping TCP).
        let bbr_100 = fig.cell(100.0, CcAlgorithm::Bbr).unwrap();
        assert!((0.3..=4.0).contains(&bbr_100), "BBR@100 {bbr_100}");
        let cubic_1100 = fig.cell(1100.0, CcAlgorithm::Cubic).unwrap();
        assert!(
            (2.0..=12.0).contains(&cubic_1100),
            "Cubic@1100 {cubic_1100}"
        );
    }

    #[test]
    fn render_mentions_all_algorithms() {
        let fig = fig17(3, 3).expect("non-empty campaign");
        let text = fig.render();
        for name in ["Cubic", "Reno", "BBR"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.lines().count() >= 1 + 1 + BANDWIDTH_BINS.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = fig17(3, 99).expect("non-empty");
        let b = fig17(3, 99).expect("non-empty");
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn empty_plan_is_a_typed_error() {
        assert_eq!(fig17(0, 1).unwrap_err(), EmptyCampaign);
    }
}
