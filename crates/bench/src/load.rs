//! The Swiftest-as-a-service load harness.
//!
//! Drives the service-hardening stack (admission control, overload
//! shedding, the crash-safe results log) at scales a loopback socket
//! cannot reach, in three phases:
//!
//! 1. **Sample pool** — a modest number of *real* `run_swiftest`
//!    simulations over `mbw-netsim` paths, run across threads. These
//!    provide the empirical service-time / estimate / data-usage
//!    distribution the virtual phase draws from, so virtual sessions
//!    have the latency profile of actual Swiftest tests rather than a
//!    made-up constant.
//! 2. **Virtual service loop** — tens of thousands of simulated clients
//!    pushed through the *real* [`AdmissionController`] in virtual time
//!    (the controller is time-parameterized for exactly this). Poisson
//!    arrivals sized by Little's law deliberately overshoot capacity,
//!    so the run exercises admission grants, typed rejections, the
//!    shedding hysteresis, drain, and one results-log append per
//!    completed session — the same policy code that gates real sockets,
//!    at 10⁴ concurrent sessions, in milliseconds of wall time.
//! 3. **Socket soak** — a handful of real loopback [`SwiftestClient`]s
//!    with token auth against a real [`UdpTestServer`] running the same
//!    admission policy and results log, optionally behind a
//!    [`FaultyLink`] that blacks out mid-soak. Ends with a graceful
//!    drain and the zero-accepted-session-loss check
//!    (`admitted_total == log_records_total`).
//!
//! [`FaultyLink`]: mbw_wire::FaultyLink

use mbw_core::estimator::ConvergenceEstimator;
use mbw_core::probe::{run_swiftest, SwiftestConfig};
use mbw_core::{AccessScenario, TechClass};
use mbw_stats::{Gmm, SeededRng};
use mbw_telemetry::trace;
use mbw_telemetry::{Registry, ServiceMetrics};
use mbw_wire::admission::{Admission, AdmissionConfig, AdmissionController, ShedState};
use mbw_wire::client::{SessionAuth, SwiftestClient, WireTestConfig};
use mbw_wire::error::WireError;
use mbw_wire::faulty::{FaultyLink, FaultyLinkConfig};
use mbw_wire::resultslog::{ResultRecord, ResultsLog};
use mbw_wire::server::{ServerConfig, UdpTestServer};
use mbw_wire::TenantConfig;
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Shared-secret token every harness tenant presents.
pub const LOAD_TOKEN: u64 = 0x5EC12E7;

/// Load-harness knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total virtual sessions offered to admission.
    pub clients: usize,
    /// Concurrency the arrival rate is sized to sustain (Little's law);
    /// also the admission controller's `max_sessions`.
    pub target_inflight: usize,
    /// Real `run_swiftest` simulations building the service-time pool.
    pub sample_tests: usize,
    /// Threads for the sample pool.
    pub threads: usize,
    /// Real loopback socket clients in the soak phase (0 skips it).
    pub sockets: usize,
    /// Black out the socket phase's link mid-soak.
    pub chaos: bool,
    /// Seed for arrivals, path draws, and service-time picks.
    pub seed: u64,
    /// Results-log path for the virtual phase; the socket phase appends
    /// `.sock` to it.
    pub results_log: PathBuf,
}

impl LoadConfig {
    /// The full-size service figure: 40 k offered sessions targeting
    /// 12 k concurrent (peak crosses the 10 k bar before shedding).
    pub fn full(results_log: PathBuf) -> Self {
        LoadConfig {
            clients: 40_000,
            target_inflight: 12_000,
            sample_tests: 48,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            sockets: 8,
            chaos: true,
            seed: 7,
            results_log,
        }
    }

    /// A seconds-scale variant for CI smoke and unit tests.
    pub fn smoke(results_log: PathBuf) -> Self {
        LoadConfig {
            clients: 2_000,
            target_inflight: 400,
            sample_tests: 8,
            threads: 2,
            sockets: 0,
            chaos: false,
            seed: 7,
            results_log,
        }
    }
}

/// One entry of the empirical service-time pool: a real simulated
/// Swiftest test reduced to what the service layer observes.
#[derive(Debug, Clone, Copy)]
struct SessionSample {
    duration_s: f64,
    ping_s: f64,
    data_bytes: f64,
    estimate_mbps: f64,
    truth_mbps: f64,
    complete: bool,
    usable: bool,
}

/// What the harness measured, phase by phase.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Virtual sessions offered to admission.
    pub offered: u64,
    /// Virtual sessions granted and claimed.
    pub admitted: u64,
    /// Virtual sessions finished (all of them, after the drain).
    pub completed: u64,
    /// Typed rejections, indexed like `REJECT_REASON_LABELS`.
    pub rejected: [u64; 5],
    /// High-water concurrent virtual sessions.
    pub peak_inflight: u64,
    /// Times the shedding state machine engaged.
    pub shed_engagements: u64,
    /// Times it recovered to Normal.
    pub shed_recoveries: u64,
    /// Median completion latency, seconds (admission to estimate).
    pub p50_completion_s: f64,
    /// Tail completion latency, seconds.
    pub p99_completion_s: f64,
    /// Mean |estimate − truth| / truth over completed virtual sessions.
    pub mean_abs_rel_err: f64,
    /// Results-log records appended by the virtual phase.
    pub log_records: u64,
    /// Records recovered when re-opening the virtual phase's log.
    pub log_replayed: u64,
    /// Socket-phase clients that finished with a usable estimate.
    pub socket_ok: u64,
    /// Socket-phase clients rejected at admission.
    pub socket_rejected: u64,
    /// Socket-phase clients that failed outright.
    pub socket_failed: u64,
    /// Socket-phase server: sessions admitted.
    pub socket_admitted: u64,
    /// Socket-phase server: results-log records appended.
    pub socket_log_records: u64,
    /// Whether the socket-phase drain finished inside its deadline.
    pub socket_drain_clean: bool,
    /// Wall-clock time of the whole harness run.
    pub wall: Duration,
}

impl LoadReport {
    /// The zero-accepted-session-loss invariant, checked per phase:
    /// every admitted session left exactly one results-log record.
    pub fn zero_loss(&self) -> bool {
        self.admitted == self.log_records
            && self.log_records == self.log_replayed
            && self.socket_admitted == self.socket_log_records
    }

    /// Render the human-readable experiment report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Swiftest as a service: admission, shedding, drain\n");
        s.push_str(&format!(
            "  offered {} sessions; admitted {} ({:.1}%), rejected {}\n",
            self.offered,
            self.admitted,
            100.0 * self.admitted as f64 / (self.offered.max(1)) as f64,
            self.rejected.iter().sum::<u64>(),
        ));
        s.push_str(&format!(
            "  rejections: bad_token {} | capacity {} | rate_limited {} | overloaded {} | draining {}\n",
            self.rejected[0], self.rejected[1], self.rejected[2], self.rejected[3], self.rejected[4],
        ));
        s.push_str(&format!(
            "  peak inflight {}; shed engaged {}x, recovered {}x\n",
            self.peak_inflight, self.shed_engagements, self.shed_recoveries,
        ));
        s.push_str(&format!(
            "  completion latency p50 {:.2} s, p99 {:.2} s; mean |err| {:.1}%\n",
            self.p50_completion_s,
            self.p99_completion_s,
            100.0 * self.mean_abs_rel_err,
        ));
        s.push_str(&format!(
            "  results log: {} appended, {} replayed on re-open\n",
            self.log_records, self.log_replayed,
        ));
        if self.socket_ok + self.socket_rejected + self.socket_failed > 0 {
            s.push_str(&format!(
                "  socket soak: {} ok, {} rejected, {} failed; server admitted {}, logged {}, drain {}\n",
                self.socket_ok,
                self.socket_rejected,
                self.socket_failed,
                self.socket_admitted,
                self.socket_log_records,
                if self.socket_drain_clean { "clean" } else { "dirty" },
            ));
        }
        s.push_str(&format!(
            "  zero accepted-session loss: {}   ({:.2?} wall)\n",
            if self.zero_loss() { "PASS" } else { "FAIL" },
            self.wall,
        ));
        s
    }

    /// Render the report as the `BENCH_service.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut field = |key: &str, value: String| {
            s.push_str(&format!("  \"{key}\": {value},\n"));
        };
        field("offered", self.offered.to_string());
        field("admitted", self.admitted.to_string());
        field("completed", self.completed.to_string());
        field(
            "rejected",
            format!(
                "{{\"bad_token\": {}, \"capacity\": {}, \"rate_limited\": {}, \"overloaded\": {}, \"draining\": {}}}",
                self.rejected[0], self.rejected[1], self.rejected[2], self.rejected[3], self.rejected[4]
            ),
        );
        field("peak_inflight", self.peak_inflight.to_string());
        field("shed_engagements", self.shed_engagements.to_string());
        field("shed_recoveries", self.shed_recoveries.to_string());
        field("p50_completion_s", format!("{:.6}", self.p50_completion_s));
        field("p99_completion_s", format!("{:.6}", self.p99_completion_s));
        field("mean_abs_rel_err", format!("{:.6}", self.mean_abs_rel_err));
        field("log_records", self.log_records.to_string());
        field("log_replayed", self.log_replayed.to_string());
        field("socket_ok", self.socket_ok.to_string());
        field("socket_rejected", self.socket_rejected.to_string());
        field("socket_failed", self.socket_failed.to_string());
        field("socket_admitted", self.socket_admitted.to_string());
        field("socket_log_records", self.socket_log_records.to_string());
        field("socket_drain_clean", self.socket_drain_clean.to_string());
        field("zero_loss", self.zero_loss().to_string());
        s.push_str(&format!(
            "  \"wall_s\": {:.3}\n}}\n",
            self.wall.as_secs_f64()
        ));
        s
    }
}

/// Run every real simulation once, across `threads`, and reduce each to
/// the numbers the service layer sees.
fn build_sample_pool(cfg: &LoadConfig) -> Vec<SessionSample> {
    let scenarios = [
        AccessScenario::default_for(TechClass::Wifi),
        AccessScenario::default_for(TechClass::Lte),
        AccessScenario::default_for(TechClass::Nr),
    ];
    let n = cfg.sample_tests.max(1);
    let threads = cfg.threads.clamp(1, n);
    let mut pool = vec![None; n];
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in pool.chunks_mut(n.div_ceil(threads)).enumerate() {
            let scenarios = &scenarios;
            let base = chunk_idx * n.div_ceil(threads);
            let seed = cfg.seed;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let idx = base + i;
                    let scenario = &scenarios[idx % scenarios.len()];
                    let drawn = scenario.draw(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
                    let result = run_swiftest(
                        drawn.build(),
                        &scenario.model,
                        &mut ConvergenceEstimator::swiftest(),
                        &SwiftestConfig::default(),
                        drawn.seed,
                    );
                    *slot = Some(SessionSample {
                        duration_s: result.duration.as_secs_f64(),
                        ping_s: drawn.rtt,
                        data_bytes: result.data_bytes,
                        estimate_mbps: result.estimate_mbps,
                        truth_mbps: drawn.truth_mbps,
                        complete: result.status.is_complete(),
                        usable: result.status.is_usable(),
                    });
                }
            });
        }
    });
    pool.into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Virtual-time event: arrival of a new session, or completion of a
/// claimed one. Ordered by time (then sequence, for determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrive { session: u64, tenant: u64 },
    Finish { session: u64, sample: usize },
}

/// The virtual service loop: the real controller + real log, fed
/// virtual time. Returns the partially-filled report.
fn run_virtual_phase(
    cfg: &LoadConfig,
    pool: &[SessionSample],
    metrics: &ServiceMetrics,
) -> std::io::Result<LoadReport> {
    let tenants: Vec<TenantConfig> = (0..4)
        .map(|t| {
            let mut tc = TenantConfig::new(t, LOAD_TOKEN);
            // Tenant 3 is the misbehaving one: a tight budget it will
            // blow through, so RateLimited rejections actually occur.
            if t == 3 {
                tc.sessions_per_sec = 20.0;
                tc.burst = 30.0;
            } else {
                tc.sessions_per_sec = 1e6;
                tc.burst = 1e6;
            }
            tc
        })
        .collect();
    let admission_cfg = AdmissionConfig::open(cfg.target_inflight.max(4)).with_tenants(tenants);
    let mut controller = AdmissionController::new(admission_cfg, metrics.clone());
    let (mut log, recovery) = ResultsLog::open(&cfg.results_log)?;
    let replay_base = recovery.records.len() as u64;

    let mean_service_s =
        (pool.iter().map(|s| s.duration_s).sum::<f64>() / pool.len() as f64).max(1e-3);
    // Little's law (N = λ·S) sized 1.4× over capacity: the overshoot is
    // what pushes inflight across the shed-enter mark.
    let lambda = 1.4 * cfg.target_inflight as f64 / mean_service_s;
    let mut rng = SeededRng::new(cfg.seed ^ 0x10AD);

    // (nanos, sequence, event) in a min-heap; sequence breaks ties
    // deterministically.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut t_ns = 0u64;
    for session in 0..cfg.clients as u64 {
        t_ns += (rng.exponential(lambda) * 1e9) as u64;
        let tenant = rng.index(4) as u64;
        seq += 1;
        heap.push(std::cmp::Reverse((
            t_ns,
            seq,
            Event::Arrive { session, tenant },
        )));
    }

    let mut rejected = [0u64; 5];
    let mut inflight = 0u64;
    let mut peak_inflight = 0u64;
    let mut shed_engagements = 0u64;
    let mut shed_recoveries = 0u64;
    let mut completed = 0u64;
    let mut log_records = 0u64;
    let mut err_sum = 0.0f64;
    let mut err_n = 0u64;
    let mut arrivals_left = cfg.clients as u64;

    while let Some(std::cmp::Reverse((at_ns, _, ev))) = heap.pop() {
        let now = Duration::from_nanos(at_ns);
        let state_before = controller.state();
        match ev {
            Event::Arrive { session, tenant } => {
                arrivals_left -= 1;
                match controller.request(tenant, LOAD_TOKEN, session, now) {
                    Admission::Granted => {
                        // The virtual client claims its ticket with the
                        // RateRequest immediately (zero think time).
                        assert_eq!(controller.claim(session, now), Some(tenant));
                        inflight += 1;
                        peak_inflight = peak_inflight.max(inflight);
                        let sample = rng.index(pool.len());
                        let end = at_ns + (pool[sample].duration_s * 1e9) as u64;
                        seq += 1;
                        heap.push(std::cmp::Reverse((
                            end,
                            seq,
                            Event::Finish { session, sample },
                        )));
                    }
                    Admission::Rejected(reason) => {
                        rejected[reason.label_index()] += 1;
                    }
                }
                if arrivals_left == 0 {
                    // Offered load exhausted: begin the graceful drain,
                    // exactly as SIGTERM does on the real server.
                    controller.begin_drain();
                }
            }
            Event::Finish { session, sample } => {
                let s = pool[sample];
                controller.release(session);
                inflight -= 1;
                completed += 1;
                metrics.observe_session_end(
                    Duration::from_secs_f64(s.duration_s),
                    s.complete,
                    s.usable,
                );
                log.append(&ResultRecord {
                    tenant: session % 4,
                    session,
                    started_ms: (at_ns / 1_000_000).saturating_sub((s.duration_s * 1e3) as u64),
                    duration_s: s.duration_s,
                    ping_s: s.ping_s,
                    data_bytes: s.data_bytes,
                    estimate_mbps: s.estimate_mbps,
                    truth_mbps: s.truth_mbps,
                    complete: s.complete,
                })?;
                metrics.observe_log_records(1);
                log_records += 1;
                if s.truth_mbps > 0.0 {
                    err_sum += (s.estimate_mbps - s.truth_mbps).abs() / s.truth_mbps;
                    err_n += 1;
                }
            }
        }
        match (state_before, controller.state()) {
            (ShedState::Normal, ShedState::Shedding) => shed_engagements += 1,
            (ShedState::Shedding, ShedState::Normal) => shed_recoveries += 1,
            _ => {}
        }
    }
    log.sync()?;
    assert!(controller.drained(), "drain left sessions in flight");
    assert_eq!(inflight, 0, "event loop leaked inflight sessions");

    // Crash-safety spot check: re-open the log and count what replays.
    let (_, recovery) = ResultsLog::open(&cfg.results_log)?;
    let log_replayed = (recovery.records.len() as u64).saturating_sub(replay_base);

    let hist = metrics.completion_seconds();
    Ok(LoadReport {
        offered: cfg.clients as u64,
        admitted: metrics.admitted_total(),
        completed,
        rejected,
        peak_inflight,
        shed_engagements,
        shed_recoveries,
        p50_completion_s: hist.quantile(0.50).unwrap_or(0.0),
        p99_completion_s: hist.quantile(0.99).unwrap_or(0.0),
        mean_abs_rel_err: if err_n > 0 {
            err_sum / err_n as f64
        } else {
            0.0
        },
        log_records,
        log_replayed,
        socket_ok: 0,
        socket_rejected: 0,
        socket_failed: 0,
        socket_admitted: 0,
        socket_log_records: 0,
        socket_drain_clean: true,
        wall: Duration::ZERO,
    })
}

/// The socket soak: real clients, real server, same policy code. Runs
/// on its own tokio runtime so the harness stays callable from
/// synchronous figure drivers.
fn run_socket_phase(cfg: &LoadConfig, report: &mut LoadReport) -> std::io::Result<()> {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()?;
    let sock_log = cfg.results_log.with_extension("sock");
    // Under an active trace scope the soak's server and clients share
    // the ambient tracer, so client probe spans and server session
    // spans land in one joined trace.
    let tracer = trace::active();
    rt.block_on(async {
        let server = UdpTestServer::start(ServerConfig {
            emulated_capacity_bps: Some(10_000_000),
            admission: Some(
                AdmissionConfig::open(64).with_tenants(vec![TenantConfig::new(1, LOAD_TOKEN)]),
            ),
            results_log: Some(sock_log),
            drain_deadline: Duration::from_secs(5),
            tracer: tracer.clone(),
            ..Default::default()
        })
        .await?;
        let upstream = server.local_addr();
        let link = if cfg.chaos {
            let l = FaultyLink::start(upstream, FaultyLinkConfig::default()).await?;
            Some(std::sync::Arc::new(l))
        } else {
            None
        };
        let target = link.as_ref().map_or(upstream, |l| l.local_addr());

        let chaos_task = link.as_ref().map(|l| {
            let link = std::sync::Arc::clone(l);
            tokio::spawn(async move {
                // One mid-soak blackout: long enough to force retries
                // and failbacks, short enough that jittered backoff
                // rides it out.
                tokio::time::sleep(Duration::from_millis(400)).await;
                link.set_blackout(true);
                tokio::time::sleep(Duration::from_millis(250)).await;
                link.set_blackout(false);
            })
        });

        let model =
            Gmm::from_triples(&[(0.6, 8.0, 2.0), (0.4, 20.0, 4.0)]).expect("static model valid");
        for i in 0..cfg.sockets {
            let client = SwiftestClient::new(
                model.clone(),
                WireTestConfig {
                    auth: Some(SessionAuth {
                        tenant: 1,
                        // One gate-crasher per soak proves rejects flow
                        // end to end.
                        token: if i == 0 { 0xBAD } else { LOAD_TOKEN },
                    }),
                    tracer: tracer.clone(),
                    ..WireTestConfig::default()
                },
            );
            match client.measure(&[target]).await {
                Ok(_) => report.socket_ok += 1,
                Err(WireError::Rejected { .. }) => report.socket_rejected += 1,
                Err(_) => report.socket_failed += 1,
            }
        }
        if let Some(t) = chaos_task {
            let _ = t.await;
        }
        if let Some(l) = link {
            if let Ok(l) = std::sync::Arc::try_unwrap(l) {
                l.shutdown().await;
            }
        }
        let metrics = server.service_metrics();
        report.socket_admitted = metrics.admitted_total();
        server.begin_drain();
        report.socket_drain_clean = server.drain().await;
        report.socket_log_records = metrics.log_records_total();
        Ok::<(), std::io::Error>(())
    })
}

/// Run the whole harness: sample pool → virtual service loop → socket
/// soak. `registry` receives the `swiftest_service_*` series for the
/// virtual phase (scrape or render it for the soak report).
pub fn run_load(cfg: &LoadConfig, registry: &Registry) -> std::io::Result<LoadReport> {
    let t0 = Instant::now();
    let pool = build_sample_pool(cfg);
    let metrics = ServiceMetrics::register(registry);
    let mut report = run_virtual_phase(cfg, &pool, &metrics)?;
    if cfg.sockets > 0 {
        run_socket_phase(cfg, &mut report)?;
    }
    report.wall = t0.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mbw-load-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn smoke_run_is_zero_loss_and_sheds() {
        let path = tmp("smoke.log");
        let cfg = LoadConfig::smoke(path.clone());
        let registry = Registry::new();
        let report = run_load(&cfg, &registry).unwrap();
        assert_eq!(report.offered, cfg.clients as u64);
        assert_eq!(report.admitted, report.completed, "drain finished everyone");
        assert!(report.zero_loss(), "{report:?}");
        // The 1.4× overload must actually push the controller into
        // shedding (and back out at least once).
        assert!(report.shed_engagements >= 1, "{report:?}");
        assert!(report.shed_recoveries >= 1, "{report:?}");
        assert!(
            report.rejected[3] > 0,
            "no Overloaded rejections despite overload: {report:?}"
        );
        assert!(
            report.peak_inflight as usize >= cfg.target_inflight * 8 / 10,
            "peak {} never approached target {}",
            report.peak_inflight,
            cfg.target_inflight
        );
        assert!(report.p99_completion_s >= report.p50_completion_s);
        let text = registry.render_prometheus();
        assert!(text.contains("swiftest_service_admitted_total"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_renders_every_field_as_json() {
        let path = tmp("json.log");
        let cfg = LoadConfig {
            clients: 200,
            target_inflight: 50,
            sample_tests: 4,
            threads: 2,
            sockets: 0,
            chaos: false,
            seed: 11,
            results_log: path.clone(),
        };
        let registry = Registry::new();
        let report = run_load(&cfg, &registry).unwrap();
        let json = report.to_json();
        for key in [
            "offered",
            "admitted",
            "rejected",
            "peak_inflight",
            "p50_completion_s",
            "p99_completion_s",
            "log_records",
            "zero_loss",
            "wall_s",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "{json}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let (path_a, path_b) = (tmp("det-a.log"), tmp("det-b.log"));
        let mut cfg = LoadConfig::smoke(path_a.clone());
        cfg.clients = 500;
        cfg.target_inflight = 100;
        let a = run_load(&cfg, &Registry::new()).unwrap();
        cfg.results_log = path_b.clone();
        let b = run_load(&cfg, &Registry::new()).unwrap();
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.peak_inflight, b.peak_inflight);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap(),
            "results logs differ across identical runs"
        );
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }
}
