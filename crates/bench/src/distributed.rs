//! Distributed plan → execute → reduce over the whole figure pipeline.
//!
//! One `figures` run produces every measurement figure (streaming fused
//! engine) and every evaluation figure (shared trial campaign) on one
//! machine. This module splits that run across `k` independent
//! processes — or machines — without giving up a byte of determinism:
//!
//! 1. **Plan** ([`write_plans`]): split both work domains — the
//!    streaming engine's unit list and the evaluation campaign's trial
//!    specs — into `k` contiguous [`SliceAssignment`]s, and write one
//!    plan snapshot per shard carrying seed / profile / plan-hash
//!    provenance.
//! 2. **Execute** ([`run_shard_file`]): each shard-runner process folds
//!    its measurement slice into a partial
//!    [`FigureSet`](mbw_analysis::sweep::FigureSet) (no finish) and
//!    runs its trial slice as a sub-campaign into a partial
//!    [`EvalFigureSet`], then writes both as one atomic part snapshot.
//!    A runner killed at any instant leaves either no part file or a
//!    fully valid one; re-running a shard whose part already exists
//!    skips the work (checkpoint/resume).
//! 3. **Reduce** ([`reduce_parts`]): validate that the parts form an
//!    exact partition under one plan hash, merge them in shard order,
//!    and finish. Because every accumulator's `merge` is
//!    observe-concatenation and both work domains are pure functions of
//!    their seeds, the reduced figures are **byte-identical** to the
//!    single-process run for any `k` and any split points.
//!
//! Mismatched partials — different records, counts, profile, or split —
//! are rejected at merge time with a typed [`DistError`], never folded
//! into silently corrupt figures.

use crate::eval_sweep::{self, EvalFigureSet, EvalFigures, EVAL_SWEEP_IDS};
use mbw_analysis::accum::FigureAccumulator;
use mbw_analysis::sweep::FigureSet;
use mbw_analysis::{stream_partial, stream_unit_count, MeasurementFigures};
use mbw_core::{run_campaign, CampaignPlan, EvalCounts, ProfileDim};
use mbw_dataset::{
    validate_partition, DatasetConfig, EcosystemProfile, PartitionError, ShardPlan,
    SliceAssignment, Year,
};
use mbw_frame::{
    fnv1a64, read_snapshot, write_snapshot, Codec, CodecError, Dec, Enc, SnapshotError,
    SnapshotHeader,
};
use mbw_telemetry::trace::{self, ArgValue};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Dataset seed of the measurement populations (both years).
pub const MEASUREMENT_SEED: u64 = 0xDA7A;
/// Campaign seed of the shared evaluation pool.
pub const EVAL_SEED: u64 = 0x5EED;
/// Server-catalog seed of the cost report.
pub const COST_SEED: u64 = 0xC0;

/// Snapshot kind of a shard plan file.
pub const PLAN_KIND: &str = "mbw.shard-plan";
/// Snapshot kind of a shard's partial-state file.
pub const PART_KIND: &str = "mbw.figures-partial";

/// Parameters of one distributed figure run. Everything that shapes the
/// output is here (and hashed into the plan hash); worker thread counts
/// are deliberately *not* — they change wall time, never bytes.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Ecosystem profile both pipeline halves run under.
    pub profile: &'static EcosystemProfile,
    /// Measurement records per year.
    pub records: usize,
    /// Evaluation campaign trial counts.
    pub counts: EvalCounts,
    /// How many shards the run splits into.
    pub shards: u32,
}

/// The full evaluation plan a distributed run slices: the union of
/// every evaluation figure's trials under the run's profile dimension.
pub fn full_eval_plan(counts: &EvalCounts, profile: &'static EcosystemProfile) -> CampaignPlan {
    let mut plan = eval_sweep::plan_for(&EVAL_SWEEP_IDS, counts, EVAL_SEED);
    plan.set_profile(ProfileDim::by_name(profile.name).unwrap_or_default());
    plan
}

fn dataset_config(profile: &'static EcosystemProfile, records: usize, year: Year) -> DatasetConfig {
    DatasetConfig {
        seed: MEASUREMENT_SEED,
        tests: records,
        year,
        profile,
    }
}

/// FNV-1a hash over every parameter that shapes a run's output. Two
/// partials merge only if they agree on this hash, so a part produced
/// from different records, counts, seeds, profile, or split width can
/// never be folded into the wrong reduction.
pub fn plan_hash(cfg: &DistConfig) -> u64 {
    let mut enc = Enc::new();
    enc.put_u64(MEASUREMENT_SEED);
    enc.put_u64(EVAL_SEED);
    enc.put_u64(COST_SEED);
    enc.put_str(cfg.profile.name);
    enc.put_usize(cfg.records);
    enc.put_usize(ShardPlan::threads(1).shard_size());
    enc.put_usize(cfg.counts.tests);
    enc.put_usize(cfg.counts.groups);
    enc.put_usize(cfg.counts.ramp_paths);
    enc.put_usize(cfg.counts.ablation);
    enc.put_usize(cfg.counts.mmwave);
    enc.put_u32(cfg.shards);
    fnv1a64(&enc.into_bytes())
}

/// One shard's assignment: the run parameters it must reproduce plus
/// its contiguous slice of each work domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardJob {
    /// Measurement records per year (whole run, not this shard).
    pub records: usize,
    /// Evaluation trial counts (whole run).
    pub counts: EvalCounts,
    /// This shard's slice of the streaming engine's unit list.
    pub measure: SliceAssignment,
    /// This shard's slice of the evaluation plan's trial specs.
    pub eval: SliceAssignment,
}

impl Codec for ShardJob {
    fn encode(&self, enc: &mut Enc) {
        enc.put_usize(self.records);
        enc.put_usize(self.counts.tests);
        enc.put_usize(self.counts.groups);
        enc.put_usize(self.counts.ramp_paths);
        enc.put_usize(self.counts.ablation);
        enc.put_usize(self.counts.mmwave);
        self.measure.encode(enc);
        self.eval.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            records: dec.usize_()?,
            counts: EvalCounts {
                tests: dec.usize_()?,
                groups: dec.usize_()?,
                ramp_paths: dec.usize_()?,
                ablation: dec.usize_()?,
                mmwave: dec.usize_()?,
            },
            measure: Codec::decode(dec)?,
            eval: Codec::decode(dec)?,
        })
    }
}

/// A shard's emitted partial state: its job echoed for partition
/// validation, the unfinished accumulators of both pipeline halves, and
/// the execute wall time for reduce-side reporting.
#[derive(Debug)]
pub struct ShardPart {
    /// The assignment this part was produced from.
    pub job: ShardJob,
    /// Partial measurement figure state (merge-ready, unfinished).
    pub figures: FigureSet,
    /// Partial evaluation figure state (merge-ready, unfinished).
    pub eval: EvalFigureSet,
    /// Wall seconds the shard's execute took.
    pub execute_seconds: f64,
}

impl Codec for ShardPart {
    fn encode(&self, enc: &mut Enc) {
        self.job.encode(enc);
        self.figures.encode(enc);
        self.eval.encode(enc);
        enc.put_f64(self.execute_seconds);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            job: Codec::decode(dec)?,
            figures: Codec::decode(dec)?,
            eval: Codec::decode(dec)?,
            execute_seconds: dec.f64()?,
        })
    }
}

/// Why a distributed-pipeline step failed.
#[derive(Debug)]
pub enum DistError {
    /// A plan or part snapshot could not be read, written, or decoded.
    Snapshot(SnapshotError),
    /// A snapshot of the wrong kind was offered to a step.
    WrongKind {
        /// The offending file.
        path: PathBuf,
        /// The kind its header declared.
        found: String,
        /// The kind the step needed.
        expected: &'static str,
    },
    /// A snapshot's body payload was malformed.
    Body {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with the bytes.
        error: CodecError,
    },
    /// A file's provenance does not match the reduction it was offered
    /// to — wrong plan hash, seed, profile, or split width.
    Provenance {
        /// The offending file.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
    /// The parts do not form an exact k-way partition of a work domain.
    Partition {
        /// Which work domain ("measurement units" or "campaign trials").
        domain: &'static str,
        /// How the partition is broken.
        error: PartitionError,
    },
    /// No part files were found where the reducer looked.
    NoParts {
        /// The directory searched.
        dir: PathBuf,
    },
    /// Directory or file I/O outside the snapshot format failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Snapshot(e) => e.fmt(f),
            DistError::WrongKind {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: snapshot kind {found:?} where {expected:?} was expected",
                path.display()
            ),
            DistError::Body { path, error } => {
                write!(f, "{}: malformed snapshot body: {error}", path.display())
            }
            DistError::Provenance { path, detail } => {
                write!(f, "{}: provenance mismatch: {detail}", path.display())
            }
            DistError::Partition { domain, error } => {
                write!(f, "parts do not partition the {domain}: {error}")
            }
            DistError::NoParts { dir } => {
                write!(f, "no .part snapshots found in {}", dir.display())
            }
            DistError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Snapshot(e) => Some(e),
            DistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SnapshotError> for DistError {
    fn from(e: SnapshotError) -> Self {
        DistError::Snapshot(e)
    }
}

/// Split both work domains of `cfg` into `cfg.shards` contiguous
/// slices. A pure function of the config: every process that computes
/// it — planner, runners, reducer — sees the same partition.
pub fn shard_jobs(cfg: &DistConfig) -> Vec<ShardJob> {
    let units = stream_unit_count(
        dataset_config(cfg.profile, cfg.records, Year::Y2020),
        dataset_config(cfg.profile, cfg.records, Year::Y2021),
        ShardPlan::threads(1),
    ) as u64;
    let trials = full_eval_plan(&cfg.counts, cfg.profile).len() as u64;
    SliceAssignment::split(units, cfg.shards)
        .into_iter()
        .zip(SliceAssignment::split(trials, cfg.shards))
        .map(|(measure, eval)| ShardJob {
            records: cfg.records,
            counts: cfg.counts,
            measure,
            eval,
        })
        .collect()
}

fn header(cfg: &DistConfig, kind: &str, index: u32) -> SnapshotHeader {
    SnapshotHeader {
        kind: kind.to_string(),
        seed: MEASUREMENT_SEED,
        profile: cfg.profile.name.to_string(),
        plan_hash: plan_hash(cfg),
        shard_index: index,
        shard_count: cfg.shards,
    }
}

fn shard_file_name(index: u32, count: u32, ext: &str) -> String {
    format!("shard-{index:02}-of-{count:02}.{ext}")
}

/// Write one plan snapshot per shard into `dir`, returning the paths in
/// shard order.
pub fn write_plans(cfg: &DistConfig, dir: &Path) -> Result<Vec<PathBuf>, DistError> {
    std::fs::create_dir_all(dir).map_err(|source| DistError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    shard_jobs(cfg)
        .into_iter()
        .map(|job| {
            let path = dir.join(shard_file_name(job.measure.index, cfg.shards, "plan"));
            write_snapshot(
                &path,
                &header(cfg, PLAN_KIND, job.measure.index),
                &job.to_bytes(),
            )?;
            Ok(path)
        })
        .collect()
}

/// Execute one shard's assignment in-process: fold its measurement
/// slice through the streaming engine and run its trial slice as a
/// sub-campaign (structural per-trial seeds make the sub-pool identical
/// to the corresponding rows of the full pool). Both accumulators come
/// back merge-ready and unfinished.
pub fn execute_shard(
    profile: &'static EcosystemProfile,
    job: &ShardJob,
    threads: usize,
) -> ShardPart {
    let started = Instant::now();
    let tracer = trace::active();
    let mut spans = tracer.local();
    let span = spans.begin();

    let (figures, _) = stream_partial(
        dataset_config(profile, job.records, Year::Y2020),
        dataset_config(profile, job.records, Year::Y2021),
        ShardPlan::threads(threads),
        job.measure.start as usize,
        job.measure.len as usize,
    );

    let full = full_eval_plan(&job.counts, profile);
    let mut sub = CampaignPlan::new(EVAL_SEED);
    sub.set_profile(full.profile());
    for spec in &full.specs()[job.eval.start as usize..job.eval.end() as usize] {
        sub.push(*spec);
    }
    let pool = run_campaign(&sub, threads.max(1));
    let mut eval = EvalFigureSet::new(COST_SEED);
    for view in pool.iter() {
        eval.observe(&view);
    }

    if span.id != 0 {
        spans.end_with(
            span,
            0,
            "dist.execute",
            "dist",
            vec![
                ("shard", ArgValue::U64(u64::from(job.measure.index))),
                ("units", ArgValue::U64(job.measure.len)),
                ("trials", ArgValue::U64(job.eval.len)),
            ],
        );
    }
    ShardPart {
        job: *job,
        figures,
        eval,
        execute_seconds: started.elapsed().as_secs_f64(),
    }
}

/// What [`run_shard_file`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRun {
    /// The shard executed and its part was written to this path.
    Ran(PathBuf),
    /// A valid part for this plan already existed at this path; the
    /// shard was skipped (checkpoint/resume).
    Skipped(PathBuf),
}

impl ShardRun {
    /// The part file's path either way.
    pub fn path(&self) -> &Path {
        match self {
            ShardRun::Ran(p) | ShardRun::Skipped(p) => p,
        }
    }
}

/// The shard-runner: read a plan snapshot, execute its assignment, and
/// atomically write the part snapshot into `out_dir`. If a valid part
/// for the same plan hash already sits at the target path the shard is
/// skipped, so re-running an interrupted fan-out only executes the
/// shards that never completed.
pub fn run_shard_file(
    plan_path: &Path,
    out_dir: &Path,
    threads: usize,
) -> Result<ShardRun, DistError> {
    let (head, body) = read_snapshot(plan_path)?;
    if head.kind != PLAN_KIND {
        return Err(DistError::WrongKind {
            path: plan_path.to_path_buf(),
            found: head.kind,
            expected: PLAN_KIND,
        });
    }
    let job = ShardJob::from_bytes(&body).map_err(|error| DistError::Body {
        path: plan_path.to_path_buf(),
        error,
    })?;
    let profile = EcosystemProfile::by_name(&head.profile).map_err(|e| DistError::Provenance {
        path: plan_path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let cfg = DistConfig {
        profile,
        records: job.records,
        counts: job.counts,
        shards: head.shard_count,
    };
    let expected = plan_hash(&cfg);
    if head.plan_hash != expected {
        return Err(DistError::Provenance {
            path: plan_path.to_path_buf(),
            detail: format!(
                "plan hash {:#018x} does not match its own parameters ({expected:#018x})",
                head.plan_hash
            ),
        });
    }
    if job.measure.index != head.shard_index || job.eval.index != head.shard_index {
        return Err(DistError::Provenance {
            path: plan_path.to_path_buf(),
            detail: format!(
                "header says shard {} but the body assigns slices {} and {}",
                head.shard_index, job.measure.index, job.eval.index
            ),
        });
    }

    let part_path = out_dir.join(shard_file_name(head.shard_index, head.shard_count, "part"));
    if let Ok((existing, _)) = read_snapshot(&part_path) {
        if existing.kind == PART_KIND
            && existing.plan_hash == head.plan_hash
            && existing.shard_index == head.shard_index
        {
            return Ok(ShardRun::Skipped(part_path));
        }
    }
    std::fs::create_dir_all(out_dir).map_err(|source| DistError::Io {
        path: out_dir.to_path_buf(),
        source,
    })?;
    let part = execute_shard(profile, &job, threads);
    write_snapshot(
        &part_path,
        &header(&cfg, PART_KIND, head.shard_index),
        &part.to_bytes(),
    )?;
    Ok(ShardRun::Ran(part_path))
}

/// Every `*.part` snapshot in `dir`, sorted by file name (which orders
/// them by shard index). Dot-prefixed temp files are ignored.
pub fn collect_parts(dir: &Path) -> Result<Vec<PathBuf>, DistError> {
    let entries = std::fs::read_dir(dir).map_err(|source| DistError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut parts = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| DistError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let hidden = path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with('.'));
        if !hidden && path.extension().is_some_and(|e| e == "part") {
            parts.push(path);
        }
    }
    if parts.is_empty() {
        return Err(DistError::NoParts {
            dir: dir.to_path_buf(),
        });
    }
    parts.sort();
    Ok(parts)
}

/// Per-part numbers the reducer reports.
#[derive(Debug, Clone, Copy)]
pub struct PartStat {
    /// The part's shard index.
    pub shard_index: u32,
    /// Wall seconds the shard's execute took (from the part itself).
    pub execute_seconds: f64,
    /// Size of the part snapshot on disk.
    pub snapshot_bytes: u64,
}

/// Everything a reduction produces.
pub struct Reduced {
    /// The finished measurement figures (profile-tagged exactly like a
    /// single-process run).
    pub figures: MeasurementFigures,
    /// The finished evaluation figures.
    pub eval: EvalFigures,
    /// The profile the run was produced under.
    pub profile: &'static EcosystemProfile,
    /// Per-part execute / size numbers, in shard order.
    pub parts: Vec<PartStat>,
    /// Wall seconds of the merge stage.
    pub merge_seconds: f64,
    /// Wall seconds of the finish stage (GMM fits live here).
    pub finish_seconds: f64,
}

impl std::fmt::Debug for Reduced {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // EcosystemProfile is table-heavy and deliberately not Debug;
        // its name is the useful identity here.
        f.debug_struct("Reduced")
            .field("profile", &self.profile.name)
            .field("parts", &self.parts)
            .field("merge_seconds", &self.merge_seconds)
            .field("finish_seconds", &self.finish_seconds)
            .finish_non_exhaustive()
    }
}

/// Merge `k` part snapshots into the finished figures, byte-identical
/// to the single-process run that the parts partition. The finish
/// stage fans out on a work pool of `threads` (1 = serial; the output
/// is identical either way).
///
/// Validation happens before any merging: every part must carry the
/// same plan hash, seed, profile, and shard count; each body must
/// re-hash to its header's plan hash; and the slices must form an exact
/// partition of both work domains. Any mismatch is a typed
/// [`DistError`] naming the offending file.
pub fn reduce_parts(paths: &[PathBuf], threads: usize) -> Result<Reduced, DistError> {
    let tracer = trace::active();
    let mut spans = tracer.local();
    let span = spans.begin();

    let mut loaded: Vec<(PathBuf, SnapshotHeader, ShardPart, u64)> = Vec::new();
    for path in paths {
        let bytes = std::fs::metadata(path)
            .map(|m| m.len())
            .map_err(|source| DistError::Io {
                path: path.clone(),
                source,
            })?;
        let (head, body) = read_snapshot(path)?;
        if head.kind != PART_KIND {
            return Err(DistError::WrongKind {
                path: path.clone(),
                found: head.kind,
                expected: PART_KIND,
            });
        }
        let part = ShardPart::from_bytes(&body).map_err(|error| DistError::Body {
            path: path.clone(),
            error,
        })?;
        loaded.push((path.clone(), head, part, bytes));
    }
    loaded.sort_by_key(|(_, head, ..)| head.shard_index);

    let reference = loaded[0].1.clone();
    let profile =
        EcosystemProfile::by_name(&reference.profile).map_err(|e| DistError::Provenance {
            path: loaded[0].0.clone(),
            detail: e.to_string(),
        })?;
    for (path, head, part, _) in &loaded {
        if head.plan_hash != reference.plan_hash
            || head.seed != reference.seed
            || head.profile != reference.profile
            || head.shard_count != reference.shard_count
        {
            return Err(DistError::Provenance {
                path: path.clone(),
                detail: format!(
                    "part belongs to a different run (hash {:#018x}, profile {:?}, {} shards) \
                     than shard {} (hash {:#018x}, profile {:?}, {} shards)",
                    head.plan_hash,
                    head.profile,
                    head.shard_count,
                    reference.shard_index,
                    reference.plan_hash,
                    reference.profile,
                    reference.shard_count,
                ),
            });
        }
        let rehash = plan_hash(&DistConfig {
            profile,
            records: part.job.records,
            counts: part.job.counts,
            shards: head.shard_count,
        });
        if rehash != head.plan_hash {
            return Err(DistError::Provenance {
                path: path.clone(),
                detail: format!(
                    "body parameters hash to {rehash:#018x} but the header claims {:#018x}",
                    head.plan_hash
                ),
            });
        }
    }
    let measure_slices: Vec<SliceAssignment> = loaded
        .iter()
        .map(|(.., part, _)| part.job.measure)
        .collect();
    validate_partition(&measure_slices).map_err(|error| DistError::Partition {
        domain: "measurement units",
        error,
    })?;
    let eval_slices: Vec<SliceAssignment> =
        loaded.iter().map(|(.., part, _)| part.job.eval).collect();
    validate_partition(&eval_slices).map_err(|error| DistError::Partition {
        domain: "campaign trials",
        error,
    })?;

    let parts: Vec<PartStat> = loaded
        .iter()
        .map(|(_, head, part, bytes)| PartStat {
            shard_index: head.shard_index,
            execute_seconds: part.execute_seconds,
            snapshot_bytes: *bytes,
        })
        .collect();

    let merge_start = Instant::now();
    let mut iter = loaded.into_iter();
    let (_, _, first, _) = iter.next().expect("collect_parts rejects empty sets");
    let mut figure_set = first.figures;
    let mut eval_set = first.eval;
    for (_, _, part, _) in iter {
        figure_set.merge(part.figures);
        eval_set.merge(part.eval);
    }
    let merge_seconds = merge_start.elapsed().as_secs_f64();

    let finish_start = Instant::now();
    let (mut figures, _) =
        figure_set.finish_with(mbw_analysis::sweep::FinishOptions::threads(threads));
    // Exactly the tagging rule of the single-process streaming run:
    // every ecosystem but the paper's own renders self-describing.
    if profile.name != EcosystemProfile::paper_china().name {
        figures = figures.with_profile_tag(profile.name);
    }
    let eval = eval_set.finish_with(threads);
    let finish_seconds = finish_start.elapsed().as_secs_f64();

    if span.id != 0 {
        spans.end_with(
            span,
            0,
            "dist.reduce",
            "dist",
            vec![
                ("parts", ArgValue::from(parts.len())),
                ("shards", ArgValue::U64(u64::from(reference.shard_count))),
            ],
        );
    }
    Ok(Reduced {
        figures,
        eval,
        profile,
        parts,
        merge_seconds,
        finish_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_analysis::sweep::SWEEP_IDS;

    fn quick_cfg(shards: u32) -> DistConfig {
        DistConfig {
            profile: EcosystemProfile::paper_china(),
            records: 2_000,
            counts: EvalCounts::uniform(2),
            shards,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbw-dist-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Reference single-process figures under the same parameters.
    fn single_process(cfg: &DistConfig) -> (MeasurementFigures, EvalFigures) {
        let (figures, _) = crate::measurement::stream_measurement_figures_for(
            cfg.profile,
            cfg.records,
            MEASUREMENT_SEED,
            ShardPlan::threads(1),
        );
        let plan = full_eval_plan(&cfg.counts, cfg.profile);
        let pool = run_campaign(&plan, 1);
        let eval = eval_sweep::reduce(EvalFigureSet::new(COST_SEED), &pool);
        (figures, eval)
    }

    #[test]
    fn jobs_partition_both_domains_exactly() {
        for shards in [1u32, 2, 3, 7] {
            let cfg = quick_cfg(shards);
            let jobs = shard_jobs(&cfg);
            assert_eq!(jobs.len(), shards as usize);
            let measure: Vec<_> = jobs.iter().map(|j| j.measure).collect();
            let eval: Vec<_> = jobs.iter().map(|j| j.eval).collect();
            validate_partition(&measure).unwrap();
            validate_partition(&eval).unwrap();
            assert_eq!(
                eval[0].total,
                full_eval_plan(&cfg.counts, cfg.profile).len() as u64
            );
        }
    }

    #[test]
    fn plan_hash_pins_every_output_shaping_parameter() {
        let base = quick_cfg(2);
        let hash = plan_hash(&base);
        let mut other = base;
        other.records += 1;
        assert_ne!(plan_hash(&other), hash);
        let mut other = base;
        other.counts.tests += 1;
        assert_ne!(plan_hash(&other), hash);
        let mut other = base;
        other.shards = 3;
        assert_ne!(plan_hash(&other), hash);
        let mut other = base;
        other.profile = EcosystemProfile::europe_ran();
        assert_ne!(plan_hash(&other), hash);
        assert_eq!(plan_hash(&base), hash);
    }

    #[test]
    fn split_runs_reduce_byte_identically_and_resume_skips() {
        let cfg = quick_cfg(2);
        let dir = temp_dir("roundtrip");
        let plans = write_plans(&cfg, &dir.join("plans")).unwrap();
        assert_eq!(plans.len(), 2);

        let parts_dir = dir.join("parts");
        for plan in &plans {
            match run_shard_file(plan, &parts_dir, 1).unwrap() {
                ShardRun::Ran(_) => {}
                ShardRun::Skipped(p) => panic!("fresh shard skipped: {}", p.display()),
            }
        }
        // Re-running every shard resumes: nothing executes again.
        for plan in &plans {
            assert!(matches!(
                run_shard_file(plan, &parts_dir, 1).unwrap(),
                ShardRun::Skipped(_)
            ));
        }

        let parts = collect_parts(&parts_dir).unwrap();
        assert_eq!(parts.len(), 2);
        let reduced = reduce_parts(&parts, 2).unwrap();
        let (figures, eval) = single_process(&cfg);
        for id in SWEEP_IDS {
            assert_eq!(figures.render(id), reduced.figures.render(id), "{id}");
        }
        for id in EVAL_SWEEP_IDS {
            assert_eq!(eval.render(id), reduced.eval.render(id), "{id}");
        }
        assert_eq!(reduced.parts.len(), 2);
        assert!(reduced.parts.iter().all(|p| p.snapshot_bytes > 0));

        // A strict subset of the parts is not a partition.
        let err = reduce_parts(&parts[..1], 1).unwrap_err();
        assert!(
            matches!(
                err,
                DistError::Partition {
                    domain: "measurement units",
                    ..
                }
            ),
            "{err}"
        );

        // A tampered body (different records than the header's hash
        // covers) is rejected by provenance, not silently merged.
        let (head, body) = read_snapshot(&parts[1]).unwrap();
        let mut part = ShardPart::from_bytes(&body).unwrap();
        part.job.records += 1;
        let forged = parts_dir.join("shard-01-of-02-forged.part");
        write_snapshot(&forged, &head, &part.to_bytes()).unwrap();
        let err = reduce_parts(&[parts[0].clone(), forged], 1).unwrap_err();
        assert!(matches!(err, DistError::Provenance { .. }), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parts_from_different_runs_do_not_merge() {
        let dir = temp_dir("foreign");
        let small = quick_cfg(2);
        let mut bigger = small;
        bigger.records += 500;

        let small_plans = write_plans(&small, &dir.join("plans-a")).unwrap();
        let bigger_plans = write_plans(&bigger, &dir.join("plans-b")).unwrap();
        let a = run_shard_file(&small_plans[0], &dir.join("parts-a"), 1).unwrap();
        let b = run_shard_file(&bigger_plans[1], &dir.join("parts-b"), 1).unwrap();

        let err = reduce_parts(&[a.path().to_path_buf(), b.path().to_path_buf()], 1).unwrap_err();
        assert!(matches!(err, DistError::Provenance { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_rejects_a_part_offered_as_a_plan() {
        let dir = temp_dir("wrongkind");
        let cfg = quick_cfg(1);
        let plans = write_plans(&cfg, &dir.join("plans")).unwrap();
        let run = run_shard_file(&plans[0], &dir.join("parts"), 1).unwrap();
        let err = run_shard_file(run.path(), &dir.join("parts2"), 1).unwrap_err();
        assert!(matches!(err, DistError::WrongKind { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
