//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures               # everything, full-size populations
//! figures fig04 fig17   # selected experiments
//! figures --quick       # everything, small populations (CI-sized)
//! ```
//!
//! Each experiment's text report is printed and written to
//! `results/<id>.txt`.

use mbw_bench::{ablation, bts_eval, deploy_eval, fig17, measurement};
use std::fs;
use std::path::Path;

struct Sizes {
    dataset: usize,
    fig17_paths: usize,
    bts_tests: usize,
    replay_days: u32,
}

const FULL: Sizes = Sizes {
    dataset: 400_000,
    fig17_paths: 24,
    bts_tests: 150,
    replay_days: 30,
};
const QUICK: Sizes = Sizes {
    dataset: 60_000,
    fig17_paths: 6,
    bts_tests: 30,
    replay_days: 5,
};

/// Every experiment id, in paper order.
const ALL_IDS: [&str; 28] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
];

/// Extra (non-figure) reports.
const EXTRA_IDS: [&str; 10] = [
    "general",
    "summary",
    "devices",
    "cost",
    "ablation_init",
    "ablation_converge",
    "ablation_escalate",
    "tcp_variant",
    "mmwave",
    "export_csv",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes = if quick { QUICK } else { FULL };
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<String> = if selected.is_empty() {
        ALL_IDS
            .iter()
            .chain(EXTRA_IDS.iter())
            .map(|s| s.to_string())
            .collect()
    } else {
        selected
    };

    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results/");

    // The measurement populations are shared by figs 1–16/18–19.
    let needs_dataset = ids.iter().any(|id| {
        measurement::MEASUREMENT_IDS.contains(&id.as_str())
            || measurement::PDF_IDS.contains(&id.as_str())
            || matches!(id.as_str(), "devices" | "export_csv" | "summary")
    });
    let pops = needs_dataset.then(|| {
        eprintln!("generating {} records per year...", sizes.dataset);
        measurement::populations(sizes.dataset, 0xDA7A)
    });

    // Figs 23–25 share one run.
    let mut fig23_25_cache: Option<bts_eval::Fig23to25> = None;

    for id in &ids {
        let text = match id.as_str() {
            m if measurement::MEASUREMENT_IDS.contains(&m)
                || measurement::PDF_IDS.contains(&m)
                || matches!(m, "devices" | "export_csv" | "summary") =>
            {
                measurement::render_measurement(m, pops.as_ref().expect("generated above"))
                    .expect("known measurement id")
            }
            "fig17" => fig17::fig17(sizes.fig17_paths, 0x17).render(),
            "fig20" => bts_eval::fig20(sizes.bts_tests, 0x20).render(),
            "fig21" => bts_eval::fig21(sizes.bts_tests, 0x21).render(),
            "fig22" => bts_eval::fig22(sizes.bts_tests, 0x22).render(),
            "fig23" | "fig24" | "fig25" => fig23_25_cache
                .get_or_insert_with(|| bts_eval::fig23_25(sizes.bts_tests.min(80), 0x23))
                .render(),
            "fig26" => deploy_eval::fig26(sizes.replay_days, 0x26).render(),
            "cost" => deploy_eval::cost_report(0xC0).render(),
            "ablation_init" => ablation::render_variants(
                "Ablation: initial probing rate",
                &ablation::ablation_init(sizes.bts_tests.min(60), 0xAB1),
            ),
            "ablation_converge" => ablation::render_variants(
                "Ablation: convergence rule",
                &ablation::ablation_converge(sizes.bts_tests.min(60), 0xAB2),
            ),
            "ablation_escalate" => ablation::render_variants(
                "Ablation: escalation policy",
                &ablation::ablation_escalate(sizes.bts_tests.min(60), 0xAB3),
            ),
            "tcp_variant" => {
                bts_eval::tcp_variant_comparison(sizes.bts_tests.min(60), 0x7C9).render()
            }
            "mmwave" => bts_eval::mmwave_report(sizes.bts_tests.min(80), 0x33A),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        };
        let ext = if id == "export_csv" { "csv" } else { "txt" };
        let path = out_dir.join(format!("{id}.{ext}"));
        fs::write(&path, &text).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        println!("──── {id} ─────────────────────────────────────────");
        if id == "export_csv" {
            println!("({} rows written to {path:?})", text.lines().count() - 1);
        } else {
            println!("{text}");
        }
    }
}
