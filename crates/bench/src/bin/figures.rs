//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures                          # everything, full-size populations
//! figures fig04 fig17              # selected experiments
//! figures --quick                  # everything, small populations (CI-sized)
//! figures --records 2000000 \
//!         --threads 8              # paper-scale dataset, 8 workers
//! figures --trials 40 fig20        # 40 campaign trials per series
//! figures --out smoke-t4 ...       # write reports somewhere else
//! figures --metrics-addr 127.0.0.1:9091 ...  # expose /metrics
//! figures --trace-out trace.json ...         # Perfetto-ready span trace
//! figures service                  # the service load harness
//! figures --clients 40000 --sockets 8 service   # sized explicitly
//! figures --no-chaos service       # skip the blackout in the soak
//! figures --profile europe-ran     # everything under one ecosystem
//! figures --profiles all           # cross-ecosystem comparison report
//! figures --fit-cache fits.mbws    # memoize GMM fits across runs
//!
//! # the distributed pipeline (see DESIGN.md, "Distributed reduction"):
//! figures shard-plan --shards 4 --out plans/       # write 4 plan files
//! figures shard-runner --plan plans/shard-00-of-04.plan --out parts/
//! figures reduce --parts parts/ --out results/     # merge + finish
//! ```
//!
//! Each experiment's text report is printed and written to
//! `<out>/<id>.txt` (default `results/`). The measurement figures are
//! produced by the *streaming* fused engine (`mbw_analysis::stream`):
//! per-shard generation feeds straight into the figure accumulators, so
//! the populations are never materialised, generation overlaps analysis
//! across `--threads` workers, and the output is byte-identical for
//! every thread count. The evaluation figures (17, 20–25, ablations,
//! mmWave, cost) are produced the same way from one shared trial
//! campaign: the union of trials the requested figures need is planned
//! once, executed over `--threads` workers, and reduced in a single
//! pass — byte-identical for every thread count. With `--metrics-addr`
//! the per-stage timings (generate / observe / merge / finish and plan
//! / execute / reduce) are scrapable at `/metrics` while the run is in
//! flight. With `--fit-cache PATH` the finish stage's GMM fits are
//! memoized in an MBWS snapshot at `PATH`: a warm rerun (same records,
//! seed, and profile) serves every converged fit from the cache —
//! byte-identical figures, no EM reruns — and the file is rewritten
//! only when new fits were learned. With `--trace-out PATH` the whole
//! run is span-traced: the
//! causal tree (streaming shards, merge, per-figure finish, GMM fits,
//! campaign batches) is written to `PATH` as Chrome trace-event JSON
//! (load it at <https://ui.perfetto.dev>), a text self-profile with
//! slow-span budget violations lands next to it at
//! `PATH.profile.txt`, and per-span-name duration histograms join the
//! registry as `trace_span_seconds`.
//!
//! The `shard-plan` / `shard-runner` / `reduce` subcommands split the
//! same pipeline across independent processes: each runner executes a
//! contiguous slice of both work domains and writes its unfinished
//! accumulator state as an atomic snapshot; the reducer validates the
//! parts' provenance and merges them byte-identically to what one
//! process would have produced. A killed runner leaves no torn part
//! behind, and re-running it skips shards whose parts already exist.

use mbw_analysis::ProfileFigures;
use mbw_bench::distributed::{self, ShardRun, COST_SEED, EVAL_SEED, MEASUREMENT_SEED};
use mbw_bench::{bts_eval, deploy_eval, eval_sweep, load, measurement};
use mbw_core::{run_campaign_metered, EvalCounts, ProfileDim};
use mbw_dataset::csv::CsvWriter;
use mbw_dataset::{generate_sharded, DatasetConfig, EcosystemProfile, RecordView, ShardPlan, Year};
use mbw_telemetry::trace;
use mbw_telemetry::{CampaignMetrics, MetricsServer, PipelineMetrics, Registry, Tracer, WallClock};
use std::fs;
use std::io::BufWriter;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

struct Sizes {
    dataset: usize,
    fig17_paths: usize,
    bts_tests: usize,
    replay_days: u32,
}

const FULL: Sizes = Sizes {
    dataset: 400_000,
    fig17_paths: 24,
    bts_tests: 150,
    replay_days: 30,
};
const QUICK: Sizes = Sizes {
    dataset: 60_000,
    fig17_paths: 6,
    bts_tests: 30,
    replay_days: 5,
};

/// Every experiment id, in paper order.
const ALL_IDS: [&str; 28] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
];

/// Extra (non-figure) reports.
const EXTRA_IDS: [&str; 12] = [
    "general",
    "summary",
    "devices",
    "robustness",
    "cost",
    "ablation_init",
    "ablation_converge",
    "ablation_escalate",
    "tcp_variant",
    "mmwave",
    "service",
    "export_csv",
];

/// How many rows `export_csv` writes (streamed, never materialised).
const EXPORT_ROWS: usize = 10_000;

/// A file or directory the binary could not produce. Every I/O failure
/// on an output path surfaces as one of these — naming the operation
/// and the offending path — instead of a panic.
struct OutputError {
    op: &'static str,
    path: PathBuf,
    source: std::io::Error,
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot {} {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

/// Why a run failed (printed as `figures: <error>`, exit code 1).
enum CliError {
    Output(OutputError),
    Dist(distributed::DistError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Output(e) => e.fmt(f),
            CliError::Dist(e) => e.fmt(f),
        }
    }
}

impl From<OutputError> for CliError {
    fn from(e: OutputError) -> Self {
        CliError::Output(e)
    }
}

impl From<distributed::DistError> for CliError {
    fn from(e: distributed::DistError) -> Self {
        CliError::Dist(e)
    }
}

fn write_file(path: &Path, contents: &[u8]) -> Result<(), OutputError> {
    fs::write(path, contents).map_err(|source| OutputError {
        op: "write",
        path: path.to_path_buf(),
        source,
    })
}

fn ensure_dir(path: &Path) -> Result<(), OutputError> {
    fs::create_dir_all(path).map_err(|source| OutputError {
        op: "create directory",
        path: path.to_path_buf(),
        source,
    })
}

struct Options {
    quick: bool,
    records: Option<usize>,
    trials: Option<usize>,
    threads: usize,
    out_dir: PathBuf,
    metrics_addr: Option<SocketAddr>,
    trace_out: Option<PathBuf>,
    clients: Option<usize>,
    sockets: Option<usize>,
    no_chaos: bool,
    profile: &'static EcosystemProfile,
    all_profiles: bool,
    shards: Option<u32>,
    plan: Option<PathBuf>,
    parts: Option<PathBuf>,
    fit_cache: Option<PathBuf>,
    selected: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        records: None,
        trials: None,
        threads: 1,
        out_dir: PathBuf::from("results"),
        metrics_addr: None,
        trace_out: None,
        clients: None,
        sockets: None,
        no_chaos: false,
        profile: EcosystemProfile::paper_china(),
        all_profiles: false,
        shards: None,
        plan: None,
        parts: None,
        fit_cache: None,
        selected: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--records" => {
                let v = value("--records");
                opts.records = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--records: not a record count: {v}");
                    std::process::exit(2);
                }));
            }
            "--trials" => {
                let v = value("--trials");
                opts.trials = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--trials: not a trial count: {v}");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let v = value("--threads");
                let threads: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads: not a thread count: {v}");
                    std::process::exit(2);
                });
                opts.threads = threads.max(1);
            }
            "--out" => opts.out_dir = PathBuf::from(value("--out")),
            "--clients" => {
                let v = value("--clients");
                opts.clients = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--clients: not a client count: {v}");
                    std::process::exit(2);
                }));
            }
            "--sockets" => {
                let v = value("--sockets");
                opts.sockets = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--sockets: not a socket count: {v}");
                    std::process::exit(2);
                }));
            }
            "--no-chaos" => opts.no_chaos = true,
            "--profile" => {
                let v = value("--profile");
                opts.profile = EcosystemProfile::by_name(&v).unwrap_or_else(|e| {
                    eprintln!("--profile: {e}");
                    std::process::exit(2);
                });
            }
            "--profiles" => {
                let v = value("--profiles");
                if v != "all" {
                    eprintln!("--profiles: only \"all\" is supported (use --profile {v} for one)");
                    std::process::exit(2);
                }
                opts.all_profiles = true;
            }
            "--shards" => {
                let v = value("--shards");
                let shards: u32 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--shards: not a shard count: {v}");
                    std::process::exit(2);
                });
                if shards == 0 {
                    eprintln!("--shards: must be at least 1");
                    std::process::exit(2);
                }
                opts.shards = Some(shards);
            }
            "--plan" => opts.plan = Some(PathBuf::from(value("--plan"))),
            "--parts" => opts.parts = Some(PathBuf::from(value("--parts"))),
            "--fit-cache" => opts.fit_cache = Some(PathBuf::from(value("--fit-cache"))),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--metrics-addr" => {
                let v = value("--metrics-addr");
                opts.metrics_addr = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--metrics-addr: not a socket address: {v}");
                    std::process::exit(2);
                }));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
            other => opts.selected.push(other.to_string()),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    // One wall-clock tracer scoped around the whole run; every layer
    // (streaming engine, GMM fits, campaign executor, shard runner)
    // picks it up via `trace::active()`. Disabled without `--trace-out`.
    let tracer = if opts.trace_out.is_some() {
        Tracer::new(Arc::new(WallClock::new()), 0xF165)
    } else {
        Tracer::disabled()
    };
    let result = trace::scope(&tracer, || run(&opts));
    let traced = match &opts.trace_out {
        Some(path) => write_trace(&tracer, path).map_err(CliError::Output),
        None => Ok(()),
    };
    if let Err(e) = result.and(traced) {
        eprintln!("figures: {e}");
        std::process::exit(1);
    }
}

/// Write the Chrome trace-event JSON to `path` and the text
/// self-profile (slow-span budget violations first) to
/// `path.profile.txt`.
fn write_trace(tracer: &Tracer, path: &Path) -> Result<(), OutputError> {
    let spans = tracer.spans();
    write_file(path, trace::export_chrome_json(&spans).as_bytes())?;
    let budgets = trace::SpanBudgets::default_profile();
    let mut profile_path = path.as_os_str().to_owned();
    profile_path.push(".profile.txt");
    let profile_path = PathBuf::from(profile_path);
    write_file(
        &profile_path,
        trace::self_profile(&spans, &budgets, 20).as_bytes(),
    )?;
    eprintln!(
        "trace: {} spans -> {} (profile: {}, {} dropped by the span limit)",
        spans.len(),
        path.display(),
        profile_path.display(),
        tracer.dropped()
    );
    Ok(())
}

/// The evaluation-campaign trial counts a run uses: `--trials` wins,
/// otherwise the quick/full defaults. The distributed planner and the
/// in-process run share this so their plan hashes agree.
fn eval_counts(opts: &Options, sizes: &Sizes) -> EvalCounts {
    match opts.trials {
        Some(n) => EvalCounts::uniform(n),
        None => EvalCounts {
            tests: sizes.bts_tests,
            groups: sizes.bts_tests.min(80),
            ramp_paths: sizes.fig17_paths,
            ablation: sizes.bts_tests.min(60),
            mmwave: sizes.bts_tests.min(80),
        },
    }
}

fn run(opts: &Options) -> Result<(), CliError> {
    match opts.selected.first().map(String::as_str) {
        Some("shard-plan") => return run_shard_plan(opts),
        Some("shard-runner") => return run_shard_runner(opts),
        Some("reduce") => return run_reduce(opts),
        _ => {}
    }

    let sizes = if opts.quick { QUICK } else { FULL };
    let dataset = opts.records.unwrap_or(sizes.dataset);
    let ids: Vec<String> = if opts.selected.is_empty() {
        ALL_IDS
            .iter()
            .chain(EXTRA_IDS.iter())
            .map(|s| s.to_string())
            .collect()
    } else {
        opts.selected.clone()
    };

    ensure_dir(&opts.out_dir)?;

    let registry = Registry::new();
    let metrics = PipelineMetrics::register(&registry);
    let server = opts.metrics_addr.map(|addr| {
        let server = MetricsServer::start(addr, registry.clone()).unwrap_or_else(|e| {
            eprintln!("--metrics-addr {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!("metrics exposed at http://{}/metrics", server.local_addr());
        server
    });

    // Figs 1–16/18–19 all come out of one streaming fused
    // generate→analyze run: the populations are never materialised.
    let is_sweep_id = |id: &str| mbw_analysis::sweep::SWEEP_IDS.contains(&id);

    // --fit-cache: memoized GMM fits keyed by accumulator content, so a
    // warm rerun (or the next profile in a sweep that repeats one)
    // skips every converged EM refit. Content keys make staleness
    // impossible: any change to the data produces a different key.
    let fit_cache = opts.fit_cache.as_deref().map(load_fit_cache);

    // --profiles all: run that sweep once per built-in ecosystem and
    // lay the figures side by side in one comparison report. The
    // evaluation campaign is out of scope here — the cross-ecosystem
    // report covers the measurement figures.
    if opts.all_profiles {
        run_all_profiles(opts, dataset, &metrics, fit_cache.as_ref())?;
        save_fit_cache(opts, fit_cache.as_ref(), &metrics);
        if let Some(server) = server {
            server.shutdown();
        }
        return Ok(());
    }

    let needs_sweep = ids.iter().any(|id| is_sweep_id(id.as_str()));
    let figures = needs_sweep.then(|| {
        eprintln!(
            "streaming {dataset} records per year through the fused engine \
             ({} threads, profile {})...",
            opts.threads, opts.profile.name
        );
        let (figs, t) = measurement::stream_measurement_figures_cached(
            opts.profile,
            dataset,
            MEASUREMENT_SEED,
            ShardPlan::threads(opts.threads),
            fit_cache.as_ref(),
        );
        let records = t.records as u64;
        // The rate gauges report actual pipeline throughput, so they
        // get wall clock; the per-stage series below carry the CPU
        // breakdown (generate/observe/finish_cpu are summed across
        // workers, finish is the stage's wall time).
        metrics.observe_generated(records, t.wall);
        metrics.observe_analyzed(records, t.wall);
        metrics.observe_stage("generate", records, t.generate);
        metrics.observe_stage("observe", records, t.observe);
        metrics.observe_stage("merge", records, t.merge);
        metrics.observe_stage("finish", records, t.finish);
        metrics.observe_stage("finish_cpu", records, t.finish_cpu);
        eprintln!(
            "streamed {} records in {:.2?} ({:.0} records/s end-to-end)",
            t.records,
            t.wall,
            t.records_per_second()
        );
        eprintln!(
            "  stages: generate {:.2?} + observe {:.2?} (cpu, summed over workers) \
             | merge {:.2?} | finish {:.2?} wall / {:.2?} cpu",
            t.generate, t.observe, t.merge, t.finish, t.finish_cpu
        );
        figs
    });

    // The evaluation figures all come out of one shared trial campaign:
    // plan the union, execute it once, reduce every figure in a pass.
    let is_eval_id = |id: &str| eval_sweep::EVAL_SWEEP_IDS.contains(&id);
    let eval_ids: Vec<&str> = ids
        .iter()
        .map(String::as_str)
        .filter(|id| is_eval_id(id))
        .collect();
    let eval_figures = (!eval_ids.is_empty()).then(|| {
        let counts = eval_counts(opts, &sizes);
        let campaign_metrics = CampaignMetrics::register(&registry);
        let plan_start = Instant::now();
        let mut plan = eval_sweep::plan_for(&eval_ids, &counts, EVAL_SEED);
        // The campaign's profile dimension mirrors the dataset profile
        // by name; trial seeds don't depend on it, so per-profile
        // campaigns stay CRN-paired.
        plan.set_profile(ProfileDim::by_name(opts.profile.name).unwrap_or_default());
        let plan_elapsed = plan_start.elapsed();
        campaign_metrics.observe_stage("plan", plan.len() as u64, plan_elapsed);
        let exec_start = Instant::now();
        let pool = run_campaign_metered(&plan, opts.threads, Some(&campaign_metrics));
        let exec_elapsed = exec_start.elapsed();
        campaign_metrics.observe_stage("execute", pool.len() as u64, exec_elapsed);
        eprintln!(
            "campaign: {} trials ({} outcome rows) in {exec_elapsed:.2?} ({} threads)",
            pool.len(),
            pool.outcome_rows(),
            opts.threads
        );
        let reduce_start = Instant::now();
        let reduced = eval_sweep::reduce_with(
            eval_sweep::EvalFigureSet::new(COST_SEED),
            &pool,
            opts.threads,
        );
        let reduce_elapsed = reduce_start.elapsed();
        campaign_metrics.observe_stage("reduce", pool.len() as u64, reduce_elapsed);
        eprintln!(
            "  stages: plan {plan_elapsed:.2?} | execute {exec_elapsed:.2?} \
             | reduce {reduce_elapsed:.2?}"
        );
        reduced
    });

    for id in &ids {
        if id == "export_csv" {
            // Shard streams are prefix-stable: the first N records of a
            // sharded run don't depend on the total test count, so
            // exporting is a fresh small generation rather than a slice
            // of a materialised population — same bytes either way.
            let rows = dataset.min(EXPORT_ROWS);
            let export = generate_sharded(
                DatasetConfig {
                    seed: MEASUREMENT_SEED,
                    tests: rows,
                    year: Year::Y2021,
                    profile: opts.profile,
                },
                ShardPlan::threads(opts.threads),
            );
            let path = opts.out_dir.join("export_csv.csv");
            let csv_err = |source| OutputError {
                op: "write CSV to",
                path: path.clone(),
                source,
            };
            let file = fs::File::create(&path).map_err(|source| OutputError {
                op: "create",
                path: path.clone(),
                source,
            })?;
            let mut writer = CsvWriter::with_profile(BufWriter::new(file), opts.profile.name)
                .map_err(csv_err)?;
            for r in &export {
                writer.write_view(&RecordView::from(r)).map_err(csv_err)?;
            }
            writer.into_inner().map_err(csv_err)?;
            println!("──── {id} ─────────────────────────────────────────");
            println!("({rows} rows written to {path:?})");
            continue;
        }
        if id == "service" {
            // The service load harness: virtual clients through the
            // real admission controller, then a socket chaos soak. Its
            // counters land in the shared registry (scrapable via
            // --metrics-addr) and its numbers in BENCH_service.json.
            let mut cfg = if opts.quick {
                load::LoadConfig::smoke(opts.out_dir.join("service.reslog"))
            } else {
                load::LoadConfig::full(opts.out_dir.join("service.reslog"))
            };
            cfg.threads = opts.threads.max(cfg.threads.min(2));
            if let Some(clients) = opts.clients {
                cfg.clients = clients;
                cfg.target_inflight = (clients / 3).max(4);
            }
            if let Some(sockets) = opts.sockets {
                cfg.sockets = sockets;
            }
            if opts.no_chaos {
                cfg.chaos = false;
            }
            eprintln!(
                "service load: {} virtual clients (target {} inflight), {} socket clients{}...",
                cfg.clients,
                cfg.target_inflight,
                cfg.sockets,
                if cfg.chaos { " under chaos" } else { "" }
            );
            let report = load::run_load(&cfg, &registry)
                .unwrap_or_else(|e| panic!("service load harness: {e}"));
            let json_path = opts.out_dir.join("BENCH_service.json");
            write_file(&json_path, report.to_json().as_bytes())?;
            let text = report.render();
            write_file(&opts.out_dir.join(format!("{id}.txt")), text.as_bytes())?;
            println!("──── {id} ─────────────────────────────────────────");
            println!("{text}");
            if !report.zero_loss() {
                eprintln!("service: accepted-session loss detected");
                std::process::exit(1);
            }
            continue;
        }
        let text = match id.as_str() {
            m if is_sweep_id(m) => figures
                .as_ref()
                .expect("swept above")
                .render(m)
                .expect("known measurement id"),
            e if is_eval_id(e) => eval_figures
                .as_ref()
                .expect("campaign ran above")
                .render(e)
                .expect("known evaluation id")
                .unwrap_or_else(|err| format!("{err}\n")),
            "fig26" => deploy_eval::fig26(sizes.replay_days, 0x26)
                .map(|f| f.render())
                .unwrap_or_else(|err| format!("{err}\n")),
            "tcp_variant" => {
                bts_eval::tcp_variant_comparison(sizes.bts_tests.min(60), 0x7C9).render()
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        };
        write_file(&opts.out_dir.join(format!("{id}.txt")), text.as_bytes())?;
        println!("──── {id} ─────────────────────────────────────────");
        println!("{text}");
    }

    save_fit_cache(opts, fit_cache.as_ref(), &metrics);
    if metrics.generated_total() > 0 {
        eprintln!(
            "pipeline totals: {} records generated, {} analyzed",
            metrics.generated_total(),
            metrics.analyzed_total()
        );
    }
    // Fold span durations into the shared registry so a scrape sees
    // `trace_span_seconds{name=...}` next to the stage gauges.
    let ambient = trace::active();
    if ambient.enabled() {
        let spans = ambient.spans();
        trace::publish_spans(&registry, &spans, &trace::SpanBudgets::default_profile());
    }
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}

/// Load the GMM fit cache at `path`, or start a fresh one when the
/// file does not exist yet (first run) or cannot be read (a stale or
/// corrupt snapshot is reported and ignored, never trusted).
fn load_fit_cache(path: &Path) -> mbw_analysis::FitCache {
    if !path.exists() {
        eprintln!("fit cache: starting fresh (no file at {})", path.display());
        return mbw_analysis::FitCache::new();
    }
    match mbw_analysis::FitCache::load(path) {
        Ok(cache) => {
            eprintln!(
                "fit cache: loaded {} entries from {}",
                cache.len(),
                path.display()
            );
            cache
        }
        Err(e) => {
            eprintln!("fit cache: ignoring {}: {e}", path.display());
            mbw_analysis::FitCache::new()
        }
    }
}

/// Report the run's fit-cache outcomes (stderr + registry counters) and
/// persist the cache back to `--fit-cache` when it learned new fits or
/// evicted poisoned entries. A clean warm run leaves the file untouched.
fn save_fit_cache(
    opts: &Options,
    cache: Option<&mbw_analysis::FitCache>,
    metrics: &PipelineMetrics,
) {
    let (Some(path), Some(cache)) = (opts.fit_cache.as_deref(), cache) else {
        return;
    };
    metrics.observe_fit_cache(cache.hits(), cache.misses());
    eprintln!(
        "fit cache: {} hits, {} misses, {} poisoned entries rejected ({} entries)",
        cache.hits(),
        cache.misses(),
        cache.rejected(),
        cache.len()
    );
    if !cache.is_dirty() {
        return;
    }
    match cache.save(path, MEASUREMENT_SEED, opts.profile.name) {
        Ok(()) => eprintln!("fit cache: saved to {}", path.display()),
        Err(e) => eprintln!("fit cache: cannot save {}: {e}", path.display()),
    }
}

/// The distributed run parameters shared by `shard-plan` and the
/// equivalence contract: everything except `shards` mirrors what a
/// plain `figures` run with the same flags would use.
fn dist_config(opts: &Options, shards: u32) -> distributed::DistConfig {
    let sizes = if opts.quick { QUICK } else { FULL };
    distributed::DistConfig {
        profile: opts.profile,
        records: opts.records.unwrap_or(sizes.dataset),
        counts: eval_counts(opts, &sizes),
        shards,
    }
}

/// `figures shard-plan --shards K --out DIR`: write one plan snapshot
/// per shard and print the paths (one per line, shard order) so a
/// driver can hand them to `shard-runner` processes.
fn run_shard_plan(opts: &Options) -> Result<(), CliError> {
    let Some(shards) = opts.shards else {
        eprintln!("shard-plan needs --shards K");
        std::process::exit(2);
    };
    let cfg = dist_config(opts, shards);
    let paths = distributed::write_plans(&cfg, &opts.out_dir)?;
    eprintln!(
        "planned {} shards of {} records + {} trials under profile {} (plan hash {:#018x})",
        paths.len(),
        cfg.records,
        distributed::full_eval_plan(&cfg.counts, cfg.profile).len(),
        cfg.profile.name,
        distributed::plan_hash(&cfg),
    );
    for path in &paths {
        println!("{}", path.display());
    }
    Ok(())
}

/// `figures shard-runner --plan FILE --out DIR`: execute one shard's
/// assignment and write its partial-state snapshot atomically. If a
/// valid part for the same plan already exists the shard is skipped, so
/// re-running an interrupted fan-out resumes where it left off.
fn run_shard_runner(opts: &Options) -> Result<(), CliError> {
    let Some(plan) = &opts.plan else {
        eprintln!("shard-runner needs --plan FILE");
        std::process::exit(2);
    };
    match distributed::run_shard_file(plan, &opts.out_dir, opts.threads)? {
        ShardRun::Ran(path) => eprintln!("shard executed -> {}", path.display()),
        ShardRun::Skipped(path) => eprintln!(
            "skipping shard: a valid part for this plan already exists at {}",
            path.display()
        ),
    }
    Ok(())
}

/// `figures reduce --parts DIR --out OUTDIR [ids…]`: merge every part
/// snapshot in DIR and write the finished figure reports — byte-
/// identical to a single-process `figures` run with the same
/// parameters. With no ids, every measurement and evaluation figure the
/// distributed pipeline covers is written.
fn run_reduce(opts: &Options) -> Result<(), CliError> {
    let Some(parts_dir) = &opts.parts else {
        eprintln!("reduce needs --parts DIR");
        std::process::exit(2);
    };
    let paths = distributed::collect_parts(parts_dir)?;
    let reduced = distributed::reduce_parts(&paths, opts.threads)?;
    ensure_dir(&opts.out_dir)?;
    let ids: Vec<&str> = if opts.selected.len() > 1 {
        opts.selected[1..].iter().map(String::as_str).collect()
    } else {
        mbw_analysis::sweep::SWEEP_IDS
            .iter()
            .chain(eval_sweep::EVAL_SWEEP_IDS.iter())
            .copied()
            .collect()
    };
    for id in &ids {
        let text = if let Some(text) = reduced.figures.render(id) {
            text
        } else if let Some(result) = reduced.eval.render(id) {
            result.unwrap_or_else(|err| format!("{err}\n"))
        } else {
            eprintln!("unknown experiment id for reduce: {id}");
            std::process::exit(2);
        };
        write_file(&opts.out_dir.join(format!("{id}.txt")), text.as_bytes())?;
        println!("──── {id} ─────────────────────────────────────────");
        println!("{text}");
    }
    for part in &reduced.parts {
        eprintln!(
            "  shard {:02}: execute {:.2}s, {} snapshot bytes",
            part.shard_index, part.execute_seconds, part.snapshot_bytes
        );
    }
    eprintln!(
        "reduce: {} parts merged in {:.2}s, finished in {:.2}s (profile {})",
        reduced.parts.len(),
        reduced.merge_seconds,
        reduced.finish_seconds,
        reduced.profile.name
    );
    Ok(())
}

/// `--profiles all`: stream the measurement sweep once per built-in
/// ecosystem, write each profile's figures under
/// `<out>/profiles/<name>/`, and emit the side-by-side
/// `profile_comparison.txt` report.
fn run_all_profiles(
    opts: &Options,
    dataset: usize,
    metrics: &PipelineMetrics,
    fit_cache: Option<&mbw_analysis::FitCache>,
) -> Result<(), CliError> {
    let is_sweep_id = |id: &str| mbw_analysis::sweep::SWEEP_IDS.contains(&id);
    let sweep_ids: Vec<&str> = if opts.selected.is_empty() {
        mbw_analysis::sweep::SWEEP_IDS.to_vec()
    } else {
        let picked: Vec<&str> = opts
            .selected
            .iter()
            .map(String::as_str)
            .filter(|id| is_sweep_id(id))
            .collect();
        if picked.is_empty() {
            eprintln!("--profiles all: none of the selected ids are measurement figures");
            std::process::exit(2);
        }
        picked
    };
    let runs: Vec<ProfileFigures> = EcosystemProfile::all_builtins()
        .into_iter()
        .map(|profile| {
            eprintln!(
                "streaming {dataset} records per year under profile {} ({} threads)...",
                profile.name, opts.threads
            );
            let (figures, t) = measurement::stream_measurement_figures_cached(
                profile,
                dataset,
                MEASUREMENT_SEED,
                ShardPlan::threads(opts.threads),
                fit_cache,
            );
            metrics.observe_generated(t.records as u64, t.wall);
            metrics.observe_analyzed(t.records as u64, t.wall);
            ProfileFigures {
                profile: profile.name,
                figures,
            }
        })
        .collect();
    for run in &runs {
        let dir = opts.out_dir.join("profiles").join(run.profile);
        ensure_dir(&dir)?;
        for id in &sweep_ids {
            let text = run.figures.render(id).expect("known measurement id");
            write_file(&dir.join(format!("{id}.txt")), text.as_bytes())?;
        }
    }
    let report = mbw_analysis::comparison_report(&runs, &sweep_ids);
    write_file(
        &opts.out_dir.join("profile_comparison.txt"),
        report.as_bytes(),
    )?;
    println!("──── profile_comparison ───────────────────────────");
    println!("{report}");
    Ok(())
}
