//! Design-choice ablations (listed in DESIGN.md).
//!
//! Each ablation swaps one element of Swiftest's design for an obvious
//! alternative and measures what the paper's metrics (duration, data,
//! accuracy) lose:
//!
//! 1. **Initial probing rate** — GMM dominant mode vs "start from
//!    1 Mbps and grow" (slow-start-like) vs "start from the population
//!    mean" (single-Gaussian model).
//! 2. **Convergence rule** — the 10-sample/3% window vs looser and
//!    tighter variants.
//! 3. **Escalation** — jump to the next most probable larger mode vs a
//!    fixed 1.25× multiplicative increase.
//! 4. **Purchase optimiser** — branch-and-bound ILP vs the greedy
//!    cost-per-bit heuristic.

use mbw_core::estimator::ConvergenceEstimator;
use mbw_core::probe::{run_swiftest, SwiftestConfig};
use mbw_core::{AccessScenario, TechClass};
use mbw_deploy::{solve_greedy, solve_ilp, synthetic_catalog, PurchaseProblem};
use mbw_stats::{descriptive, Gmm};
use std::fmt::Write as _;

/// Outcome of one Swiftest variant over a batch of drawn links.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Variant label.
    pub label: String,
    /// Mean probing time, seconds.
    pub mean_duration_s: f64,
    /// Mean data usage, MB.
    pub mean_data_mb: f64,
    /// Mean accuracy against the drawn link's true capacity.
    pub mean_accuracy: f64,
}

fn run_variant(
    label: &str,
    tech: TechClass,
    model: &Gmm,
    estimator_factory: &dyn Fn() -> ConvergenceEstimator,
    config: &SwiftestConfig,
    n: usize,
    seed: u64,
) -> VariantOutcome {
    let scenario = AccessScenario::default_for(tech);
    let mut durations = Vec::new();
    let mut data = Vec::new();
    let mut acc = Vec::new();
    for i in 0..n {
        let drawn = scenario.draw(seed.wrapping_add(i as u64 * 37));
        let mut est = estimator_factory();
        let r = run_swiftest(drawn.build(), model, &mut est, config, seed ^ i as u64);
        durations.push(r.duration.as_secs_f64());
        data.push(r.data_bytes / 1e6);
        acc.push(
            (1.0 - descriptive::relative_deviation(r.estimate_mbps, drawn.truth_mbps)).max(0.0),
        );
    }
    VariantOutcome {
        label: label.to_string(),
        mean_duration_s: descriptive::mean(&durations),
        mean_data_mb: descriptive::mean(&data),
        mean_accuracy: descriptive::mean(&acc),
    }
}

/// Ablation 1: initial probing rate.
pub fn ablation_init(n: usize, seed: u64) -> Vec<VariantOutcome> {
    let tech = TechClass::Nr;
    let full = tech.default_model();
    // "No prior": start at 1 Mbps with nothing but multiplicative growth
    // — probing degenerates to an application-layer slow start.
    let blind = Gmm::from_triples(&[(1.0, 1.0, 0.2)]).expect("valid");
    // "Mean prior": a single Gaussian at the population mean.
    let mean_only =
        Gmm::from_triples(&[(1.0, full.mean(), full.variance().sqrt())]).expect("valid");
    let cfg = SwiftestConfig::default();
    let est = || ConvergenceEstimator::swiftest();
    vec![
        run_variant("gmm-dominant-mode", tech, &full, &est, &cfg, n, seed),
        run_variant("population-mean", tech, &mean_only, &est, &cfg, n, seed),
        run_variant("blind-rampup", tech, &blind, &est, &cfg, n, seed),
    ]
}

/// Ablation 2: convergence rule.
pub fn ablation_converge(n: usize, seed: u64) -> Vec<VariantOutcome> {
    let tech = TechClass::Nr;
    let model = tech.default_model();
    let cfg = SwiftestConfig::default();
    let mk = |label: &str, window: usize, tol: f64, n: usize, seed: u64| {
        run_variant(
            label,
            tech,
            &model,
            &move || ConvergenceEstimator::new(window, tol, 0),
            &cfg,
            n,
            seed,
        )
    };
    vec![
        mk("w10-t3% (paper)", 10, 0.03, n, seed),
        mk("w5-t5% (loose)", 5, 0.05, n, seed),
        mk("w20-t1% (strict)", 20, 0.01, n, seed),
    ]
}

/// Ablation 3: escalation policy.
pub fn ablation_escalate(n: usize, seed: u64) -> Vec<VariantOutcome> {
    let tech = TechClass::Nr;
    let model = tech.default_model();
    let est = || ConvergenceEstimator::swiftest();
    let modal = SwiftestConfig::default();
    // Fixed multiplicative growth: ignore the larger modes; always ×1.25.
    let single_mode = Gmm::from_triples(&[(1.0, model.dominant_mode(), 1.0)]).expect("valid");
    let fixed = SwiftestConfig {
        beyond_mode_growth: 1.25,
        ..SwiftestConfig::default()
    };
    vec![
        run_variant("modal-jumps (paper)", tech, &model, &est, &modal, n, seed),
        run_variant("fixed-1.25x", tech, &single_mode, &est, &fixed, n, seed),
    ]
}

/// Render a variant table.
pub fn render_variants(title: &str, variants: &[VariantOutcome]) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>9} {:>9}",
        "variant", "time s", "data MB", "accuracy"
    );
    for v in variants {
        let _ = writeln!(
            out,
            "{:<22} {:>9.2} {:>9.1} {:>9.3}",
            v.label, v.mean_duration_s, v.mean_data_mb, v.mean_accuracy
        );
    }
    out
}

/// Ablation 4: ILP vs greedy purchase, over a sweep of demands.
/// Returns `(demand Mbps, greedy cost, ilp cost)`.
pub fn ablation_ilp(seed: u64) -> Vec<(f64, f64, f64)> {
    let catalog = synthetic_catalog(seed);
    [900.0, 1_900.0, 4_700.0, 11_300.0, 23_500.0]
        .iter()
        .map(|&demand| {
            let p = PurchaseProblem {
                offers: catalog.clone(),
                demand_mbps: demand,
                margin: 0.08,
            };
            let greedy = solve_greedy(&p).expect("greedy feasible");
            let ilp = solve_ilp(&p).expect("ilp feasible");
            (demand, greedy.total_cost, ilp.total_cost)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmm_prior_beats_blind_rampup_on_time() {
        let variants = ablation_init(25, 4000);
        let gmm = &variants[0];
        let blind = &variants[2];
        assert!(
            gmm.mean_duration_s < blind.mean_duration_s,
            "gmm {} !< blind {}",
            gmm.mean_duration_s,
            blind.mean_duration_s
        );
        // All variants stay reasonably accurate — the prior buys time,
        // not correctness.
        for v in &variants {
            assert!(v.mean_accuracy > 0.75, "{}: {}", v.label, v.mean_accuracy);
        }
    }

    #[test]
    fn strict_convergence_costs_time() {
        let variants = ablation_converge(25, 4100);
        let paper = &variants[0];
        let strict = &variants[2];
        assert!(strict.mean_duration_s > paper.mean_duration_s);
        let loose = &variants[1];
        assert!(loose.mean_duration_s <= paper.mean_duration_s + 0.05);
    }

    #[test]
    fn modal_escalation_is_no_slower_than_fixed_growth() {
        let variants = ablation_escalate(25, 4200);
        let modal = &variants[0];
        let fixed = &variants[1];
        assert!(
            modal.mean_duration_s <= fixed.mean_duration_s * 1.1,
            "modal {} vs fixed {}",
            modal.mean_duration_s,
            fixed.mean_duration_s
        );
        assert!(modal.mean_accuracy >= fixed.mean_accuracy - 0.05);
    }

    #[test]
    fn ilp_never_loses_to_greedy() {
        for (demand, greedy, ilp) in ablation_ilp(4300) {
            assert!(
                ilp <= greedy + 1e-6,
                "demand {demand}: ilp {ilp} > greedy {greedy}"
            );
        }
    }

    #[test]
    fn variant_rendering() {
        let text = render_variants("test", &ablation_escalate(3, 1));
        assert!(text.contains("accuracy"));
        assert!(text.lines().count() >= 4);
    }
}
