//! Design-choice ablations (listed in DESIGN.md).
//!
//! Each ablation swaps one element of Swiftest's design for an obvious
//! alternative and measures what the paper's metrics (duration, data,
//! accuracy) lose:
//!
//! 1. **Initial probing rate** — GMM dominant mode vs "start from
//!    1 Mbps and grow" (slow-start-like) vs "start from the population
//!    mean" (single-Gaussian model).
//! 2. **Convergence rule** — the 10-sample/3% window vs looser and
//!    tighter variants.
//! 3. **Escalation** — jump to the next most probable larger mode vs a
//!    fixed 1.25× multiplicative increase.
//! 4. **Purchase optimiser** — branch-and-bound ILP vs the greedy
//!    cost-per-bit heuristic.
//!
//! Ablations 1–3 are `Variant` campaign trials: the paper-default row
//! is *one* trial series shared by all three tables (the campaign plan
//! deduplicates it), and each table is a relabelled projection of the
//! per-variant means.

use mbw_analysis::accum::FigureAccumulator;
use mbw_core::{
    run_campaign, CampaignPlan, EmptyCampaign, ScenarioId, TechClass, TrialKind, TrialView,
    VariantId,
};
use mbw_deploy::{solve_greedy, solve_ilp, synthetic_catalog, PurchaseProblem};
use mbw_stats::descriptive;
use std::fmt::Write as _;

/// The scenario every ablation runs on (5G, as in the paper's §5.3
/// sensitivity discussion).
pub const ABLATION_SCENARIO: ScenarioId = ScenarioId::Tech(TechClass::Nr);

/// Ablation 1's rows: paper default vs single-Gaussian prior vs none.
pub const INIT_TABLE: [(VariantId, &str); 3] = [
    (VariantId::PaperDefault, "gmm-dominant-mode"),
    (VariantId::PopulationMean, "population-mean"),
    (VariantId::BlindRampup, "blind-rampup"),
];

/// Ablation 2's rows: the 10-sample/3% window vs looser and tighter.
pub const CONVERGE_TABLE: [(VariantId, &str); 3] = [
    (VariantId::PaperDefault, "w10-t3% (paper)"),
    (VariantId::ConvergeLoose, "w5-t5% (loose)"),
    (VariantId::ConvergeStrict, "w20-t1% (strict)"),
];

/// Ablation 3's rows: modal jumps vs fixed multiplicative growth.
pub const ESCALATE_TABLE: [(VariantId, &str); 2] = [
    (VariantId::PaperDefault, "modal-jumps (paper)"),
    (VariantId::EscalateFixed, "fixed-1.25x"),
];

/// Outcome of one Swiftest variant over a batch of drawn links.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Variant label.
    pub label: String,
    /// Mean probing time, seconds.
    pub mean_duration_s: f64,
    /// Mean data usage, MB.
    pub mean_data_mb: f64,
    /// Mean accuracy against the drawn link's true capacity.
    pub mean_accuracy: f64,
}

fn variant_index(v: VariantId) -> usize {
    VariantId::ALL
        .iter()
        .position(|&x| x == v)
        .expect("variant in ALL")
}

/// Add the `Variant` series a set of ablation tables needs to `plan`.
pub fn plan_variants(plan: &mut CampaignPlan, variants: &[VariantId], n: usize) {
    for &v in variants {
        plan.push_series(TrialKind::Variant(v), ABLATION_SCENARIO, n);
    }
}

/// Per-variant means folded from the campaign pool.
#[derive(Debug, Clone)]
pub struct AblationTables {
    /// `(time s, data MB, accuracy)` per [`VariantId::ALL`] position;
    /// `None` for variants the pool did not contain.
    means: Vec<Option<(f64, f64, f64)>>,
}

impl AblationTables {
    /// Project one labelled table; `None` if any row's variant is
    /// missing from the pool.
    pub fn table(&self, rows: &[(VariantId, &str)]) -> Option<Vec<VariantOutcome>> {
        rows.iter()
            .map(|&(v, label)| {
                self.means[variant_index(v)].map(|(t, d, a)| VariantOutcome {
                    label: label.to_string(),
                    mean_duration_s: t,
                    mean_data_mb: d,
                    mean_accuracy: a,
                })
            })
            .collect()
    }
}

/// Streaming reducer for the variant ablations over the campaign pool.
#[derive(Debug, Clone)]
pub struct AblationAcc {
    time: Vec<Vec<f64>>,
    data: Vec<Vec<f64>>,
    acc: Vec<Vec<f64>>,
}

impl Default for AblationAcc {
    fn default() -> Self {
        let n = VariantId::ALL.len();
        Self {
            time: vec![Vec::new(); n],
            data: vec![Vec::new(); n],
            acc: vec![Vec::new(); n],
        }
    }
}

impl mbw_frame::Codec for AblationAcc {
    fn encode(&self, enc: &mut mbw_frame::Enc) {
        self.time.encode(enc);
        self.data.encode(enc);
        self.acc.encode(enc);
    }

    fn decode(dec: &mut mbw_frame::Dec<'_>) -> Result<Self, mbw_frame::CodecError> {
        let n = VariantId::ALL.len();
        Ok(Self {
            time: mbw_analysis::accum::decode_fixed_outer(dec, n, "ablation time cells")?,
            data: mbw_analysis::accum::decode_fixed_outer(dec, n, "ablation data cells")?,
            acc: mbw_analysis::accum::decode_fixed_outer(dec, n, "ablation accuracy cells")?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for AblationAcc {
    type Output = Result<AblationTables, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let TrialKind::Variant(v) = r.spec().kind {
            let i = variant_index(v);
            let o = r.solo();
            self.time[i].push(o.duration_s);
            self.data[i].push(o.data_bytes / 1e6);
            self.acc[i].push(o.accuracy_vs(o.truth_mbps).max(0.0));
        }
    }

    fn merge(&mut self, other: Self) {
        for i in 0..self.time.len() {
            self.time[i].extend(other.time[i].iter());
            self.data[i].extend(other.data[i].iter());
            self.acc[i].extend(other.acc[i].iter());
        }
    }

    fn finish(self) -> Self::Output {
        if self.time.iter().all(Vec::is_empty) {
            return Err(EmptyCampaign);
        }
        let means = (0..self.time.len())
            .map(|i| {
                (!self.time[i].is_empty()).then(|| {
                    (
                        descriptive::mean(&self.time[i]),
                        descriptive::mean(&self.data[i]),
                        descriptive::mean(&self.acc[i]),
                    )
                })
            })
            .collect();
        Ok(AblationTables { means })
    }
}

fn run_table(
    rows: &[(VariantId, &str)],
    n: usize,
    seed: u64,
) -> Result<Vec<VariantOutcome>, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    let variants: Vec<VariantId> = rows.iter().map(|&(v, _)| v).collect();
    plan_variants(&mut plan, &variants, n);
    let pool = run_campaign(&plan, 1);
    let tables = crate::eval_sweep::reduce(AblationAcc::default(), &pool)?;
    tables.table(rows).ok_or(EmptyCampaign)
}

/// Ablation 1: initial probing rate.
pub fn ablation_init(n: usize, seed: u64) -> Result<Vec<VariantOutcome>, EmptyCampaign> {
    run_table(&INIT_TABLE, n, seed)
}

/// Ablation 2: convergence rule.
pub fn ablation_converge(n: usize, seed: u64) -> Result<Vec<VariantOutcome>, EmptyCampaign> {
    run_table(&CONVERGE_TABLE, n, seed)
}

/// Ablation 3: escalation policy.
pub fn ablation_escalate(n: usize, seed: u64) -> Result<Vec<VariantOutcome>, EmptyCampaign> {
    run_table(&ESCALATE_TABLE, n, seed)
}

/// Render a variant table.
pub fn render_variants(title: &str, variants: &[VariantOutcome]) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>9} {:>9}",
        "variant", "time s", "data MB", "accuracy"
    );
    for v in variants {
        let _ = writeln!(
            out,
            "{:<22} {:>9.2} {:>9.1} {:>9.3}",
            v.label, v.mean_duration_s, v.mean_data_mb, v.mean_accuracy
        );
    }
    out
}

/// Ablation 4: ILP vs greedy purchase, over a sweep of demands.
/// Returns `(demand Mbps, greedy cost, ilp cost)`.
pub fn ablation_ilp(seed: u64) -> Vec<(f64, f64, f64)> {
    let catalog = synthetic_catalog(seed);
    [900.0, 1_900.0, 4_700.0, 11_300.0, 23_500.0]
        .iter()
        .map(|&demand| {
            let p = PurchaseProblem {
                offers: catalog.clone(),
                demand_mbps: demand,
                margin: 0.08,
            };
            let greedy = solve_greedy(&p).expect("greedy feasible");
            let ilp = solve_ilp(&p).expect("ilp feasible");
            (demand, greedy.total_cost, ilp.total_cost)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmm_prior_beats_blind_rampup_on_time() {
        let variants = ablation_init(25, 4000).expect("non-empty campaign");
        let gmm = &variants[0];
        let blind = &variants[2];
        assert!(
            gmm.mean_duration_s < blind.mean_duration_s,
            "gmm {} !< blind {}",
            gmm.mean_duration_s,
            blind.mean_duration_s
        );
        // All variants stay reasonably accurate — the prior buys time,
        // not correctness.
        for v in &variants {
            assert!(v.mean_accuracy > 0.75, "{}: {}", v.label, v.mean_accuracy);
        }
    }

    #[test]
    fn strict_convergence_costs_time() {
        let variants = ablation_converge(25, 4100).expect("non-empty campaign");
        let paper = &variants[0];
        let strict = &variants[2];
        assert!(strict.mean_duration_s > paper.mean_duration_s);
        let loose = &variants[1];
        assert!(loose.mean_duration_s <= paper.mean_duration_s + 0.05);
    }

    #[test]
    fn modal_escalation_is_competitive_with_fixed_growth() {
        let variants = ablation_escalate(40, 4200).expect("non-empty campaign");
        let modal = &variants[0];
        let fixed = &variants[1];
        // Both policies finish in the ~1 s regime; modal jumps must not
        // be dramatically slower than blind 1.25× growth (seed-to-seed
        // the two trade places within ~±40%), and must not give up any
        // accuracy for the speed.
        assert!(
            modal.mean_duration_s <= fixed.mean_duration_s * 1.5,
            "modal {} vs fixed {}",
            modal.mean_duration_s,
            fixed.mean_duration_s
        );
        assert!(modal.mean_accuracy >= fixed.mean_accuracy - 0.05);
        assert!(modal.mean_accuracy > 0.9, "{}", modal.mean_accuracy);
    }

    #[test]
    fn shared_paper_default_row_is_identical_across_tables() {
        // All three tables project the same PaperDefault trial series;
        // with structural per-trial seeds the row's numbers must agree
        // no matter which table (or the full union) ran it.
        let init = ablation_init(10, 4400).expect("ok");
        let converge = ablation_converge(10, 4400).expect("ok");
        let escalate = ablation_escalate(10, 4400).expect("ok");
        assert_eq!(init[0].mean_duration_s, converge[0].mean_duration_s);
        assert_eq!(init[0].mean_accuracy, escalate[0].mean_accuracy);
        assert_eq!(converge[0].mean_data_mb, escalate[0].mean_data_mb);
    }

    #[test]
    fn empty_campaign_is_a_typed_error() {
        assert_eq!(ablation_init(0, 1).unwrap_err(), EmptyCampaign);
    }

    #[test]
    fn ilp_never_loses_to_greedy() {
        for (demand, greedy, ilp) in ablation_ilp(4300) {
            assert!(
                ilp <= greedy + 1e-6,
                "demand {demand}: ilp {ilp} > greedy {greedy}"
            );
        }
    }

    #[test]
    fn variant_rendering() {
        let text = render_variants("test", &ablation_escalate(3, 1).expect("ok"));
        assert!(text.contains("accuracy"));
        assert!(text.lines().count() >= 4);
    }
}
