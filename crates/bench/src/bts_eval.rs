//! Figures 20–25: the Swiftest evaluation.
//!
//! §5.3's protocol: opt-in users run back-to-back test pairs (Swiftest
//! and BTS-APP in random order) on whatever link they have; the
//! benchmark study additionally runs FAST and FastBTS in the same test
//! group. Every figure here follows that protocol over the simulated
//! scenario populations.

use mbw_core::{BackToBack, BtsKind, TechClass, TestHarness};
use mbw_stats::{descriptive, Ecdf};
use std::fmt::Write as _;

/// Fig 20: Swiftest test-time distribution per technology.
#[derive(Debug, Clone)]
pub struct Fig20 {
    /// `(tech, probing-time ECDF seconds, mean total incl. PING)`.
    pub series: Vec<(TechClass, Ecdf, f64)>,
    /// Fraction of tests finishing within one second including PING.
    pub within_one_second: f64,
}

/// Run Fig 20 with `n` tests per technology.
pub fn fig20(n: usize, seed: u64) -> Fig20 {
    let mut series = Vec::new();
    let mut fast_count = 0usize;
    let mut total_count = 0usize;
    for tech in TechClass::ALL {
        let harness = TestHarness::new(tech);
        let mut durations = Vec::with_capacity(n);
        let mut totals = Vec::with_capacity(n);
        for i in 0..n {
            let o = harness.run(BtsKind::Swiftest, seed.wrapping_add(i as u64 * 17));
            durations.push(o.duration.as_secs_f64());
            totals.push(o.total_duration().as_secs_f64());
        }
        fast_count += totals.iter().filter(|&&t| t <= 1.0).count();
        total_count += totals.len();
        let mean_total = descriptive::mean(&totals);
        series.push((tech, Ecdf::new(&durations), mean_total));
    }
    Fig20 {
        series,
        within_one_second: fast_count as f64 / total_count.max(1) as f64,
    }
}

impl Fig20 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 20: Swiftest test time per technology (seconds)\n");
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>8} {:>12}",
            "tech", "mean", "median", "max", "mean+PING"
        );
        for (tech, ecdf, total) in &self.series {
            let _ = writeln!(
                out,
                "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>12.2}",
                tech.name(),
                ecdf.mean(),
                ecdf.median(),
                ecdf.max(),
                total
            );
        }
        let _ = writeln!(
            out,
            "tests finished within 1 s (incl. PING): {:.0}%",
            self.within_one_second * 100.0
        );
        out
    }
}

/// Fig 21: data usage per test, BTS-APP vs Swiftest.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// `(tech, mean BTS-APP MB, mean Swiftest MB, ratio)`.
    pub rows: Vec<(TechClass, f64, f64, f64)>,
}

/// Run Fig 21 with `n` back-to-back pairs per technology.
pub fn fig21(n: usize, seed: u64) -> Fig21 {
    let rows = TechClass::ALL
        .iter()
        .map(|&tech| {
            let harness = TestHarness::new(tech);
            let mut bts = Vec::new();
            let mut swift = Vec::new();
            for i in 0..n {
                let pair = harness.back_to_back(
                    BtsKind::BtsApp,
                    BtsKind::Swiftest,
                    seed.wrapping_add(i as u64 * 23),
                );
                bts.push(pair.first.data_bytes / 1e6);
                swift.push(pair.second.data_bytes / 1e6);
            }
            let b = descriptive::mean(&bts);
            let s = descriptive::mean(&swift);
            (tech, b, s, b / s.max(1e-9))
        })
        .collect();
    Fig21 { rows }
}

impl Fig21 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 21: average data usage per test (MB)\n");
        let _ = writeln!(
            out,
            "{:<6} {:>10} {:>10} {:>7}",
            "tech", "BTS-APP", "Swiftest", "ratio"
        );
        for (tech, b, s, r) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>10.1} {:>10.1} {:>6.1}x",
                tech.name(),
                b,
                s,
                r
            );
        }
        out
    }
}

/// Fig 22: deviation between back-to-back Swiftest and BTS-APP results.
#[derive(Debug, Clone)]
pub struct Fig22 {
    /// Per-technology deviation ECDFs (fractions, not %).
    pub series: Vec<(TechClass, Ecdf)>,
    /// Pooled deviations.
    pub overall: Ecdf,
    /// Fraction of pairs deviating more than 10%.
    pub above_10pct: f64,
    /// Fraction of pairs deviating more than 30%.
    pub above_30pct: f64,
}

/// Run Fig 22 with `n` pairs per technology.
pub fn fig22(n: usize, seed: u64) -> Fig22 {
    let mut series = Vec::new();
    let mut pooled = Vec::new();
    for tech in TechClass::ALL {
        let harness = TestHarness::new(tech);
        let devs: Vec<f64> = (0..n)
            .map(|i| {
                harness
                    .back_to_back(
                        BtsKind::Swiftest,
                        BtsKind::BtsApp,
                        seed.wrapping_add(i as u64 * 29),
                    )
                    .deviation()
            })
            .collect();
        pooled.extend_from_slice(&devs);
        series.push((tech, Ecdf::new(&devs)));
    }
    let above_10pct = descriptive::fraction_above(&pooled, 0.10);
    let above_30pct = descriptive::fraction_above(&pooled, 0.30);
    Fig22 {
        series,
        overall: Ecdf::new(&pooled),
        above_10pct,
        above_30pct,
    }
}

impl Fig22 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 22: result deviation between Swiftest and BTS-APP (%)\n");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>8}",
            "tech", "mean", "median", "max"
        );
        for (tech, e) in &self.series {
            let _ = writeln!(
                out,
                "{:<8} {:>8.1} {:>8.1} {:>8.1}",
                tech.name(),
                e.mean() * 100.0,
                e.median() * 100.0,
                e.max() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:>8.1} {:>8.1} {:>8.1}",
            "overall",
            self.overall.mean() * 100.0,
            self.overall.median() * 100.0,
            self.overall.max() * 100.0
        );
        let _ = writeln!(
            out,
            ">10%: {:.1}% of pairs   >30%: {:.1}% of pairs",
            self.above_10pct * 100.0,
            self.above_30pct * 100.0
        );
        out
    }
}

/// Figs 23–25: FAST vs FastBTS vs Swiftest (test time, data usage,
/// accuracy against the back-to-back BTS-APP result).
#[derive(Debug, Clone)]
pub struct Fig23to25 {
    /// `(tech, kind, mean time s, mean data MB, mean accuracy)`.
    pub rows: Vec<(TechClass, BtsKind, f64, f64, f64)>,
}

/// The three contenders of the benchmark study.
pub const CONTENDERS: [BtsKind; 3] = [BtsKind::Fast, BtsKind::FastBts, BtsKind::Swiftest];

/// Run the benchmark-study figures with `n` test groups per technology.
pub fn fig23_25(n: usize, seed: u64) -> Fig23to25 {
    let mut rows = Vec::new();
    for tech in TechClass::ALL {
        let harness = TestHarness::new(tech);
        let mut acc: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut time: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut data: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for i in 0..n {
            // One test group: all four services on the same drawn link.
            let group_seed = seed.wrapping_add(i as u64 * 31);
            let drawn = harness.scenario().draw(group_seed);
            let reference = harness.run_on(BtsKind::BtsApp, &drawn, group_seed ^ 0x0EF);
            for (k, &kind) in CONTENDERS.iter().enumerate() {
                let o = harness.run_on(kind, &drawn, group_seed ^ (0xA11 + k as u64));
                time[k].push(o.duration.as_secs_f64());
                data[k].push(o.data_bytes / 1e6);
                acc[k].push(o.accuracy_vs(reference.estimate_mbps).max(0.0));
            }
        }
        for (k, &kind) in CONTENDERS.iter().enumerate() {
            rows.push((
                tech,
                kind,
                descriptive::mean(&time[k]),
                descriptive::mean(&data[k]),
                descriptive::mean(&acc[k]),
            ));
        }
    }
    Fig23to25 { rows }
}

impl Fig23to25 {
    /// One `(tech, kind)` cell: `(time, data, accuracy)`.
    pub fn cell(&self, tech: TechClass, kind: BtsKind) -> Option<(f64, f64, f64)> {
        self.rows
            .iter()
            .find(|(t, k, ..)| *t == tech && *k == kind)
            .map(|&(_, _, t, d, a)| (t, d, a))
    }

    /// Text report.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figs 23-25: FAST vs FastBTS vs Swiftest (time s / data MB / accuracy)\n");
        let _ = writeln!(
            out,
            "{:<6} {:<9} {:>8} {:>9} {:>9}",
            "tech", "BTS", "time", "data MB", "accuracy"
        );
        for (tech, kind, t, d, a) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:<9} {:>8.2} {:>9.1} {:>9.2}",
                tech.name(),
                kind.name(),
                t,
                d,
                a
            );
        }
        out
    }
}

/// Shared helper: run a back-to-back pair (used by examples).
pub fn run_pair(tech: TechClass, seed: u64) -> BackToBack {
    TestHarness::new(tech).back_to_back(BtsKind::Swiftest, BtsKind::BtsApp, seed)
}

/// §7 extension: the UDP prober vs the TCP-variant (model-guided
/// congestion control) on the same drawn links.
#[derive(Debug, Clone)]
pub struct TcpVariantComparison {
    /// `(tech, udp time s, tcp time s, udp data MB, tcp data MB, mean deviation)`.
    pub rows: Vec<(TechClass, f64, f64, f64, f64, f64)>,
}

/// Run the UDP-vs-TCP-variant comparison with `n` links per technology.
pub fn tcp_variant_comparison(n: usize, seed: u64) -> TcpVariantComparison {
    use mbw_core::estimator::ConvergenceEstimator;
    use mbw_core::probe::{run_swiftest, SwiftestConfig};
    use mbw_core::tcp_variant::run_swiftest_tcp_default;
    let mut rows = Vec::new();
    for tech in TechClass::ALL {
        let scenario = mbw_core::AccessScenario::default_for(tech);
        let model = scenario.model.clone();
        let mut udp_t = Vec::new();
        let mut tcp_t = Vec::new();
        let mut udp_d = Vec::new();
        let mut tcp_d = Vec::new();
        let mut dev = Vec::new();
        for i in 0..n {
            let drawn = scenario.draw(seed.wrapping_add(i as u64 * 41));
            let mut est = ConvergenceEstimator::swiftest();
            let udp = run_swiftest(
                drawn.build(),
                &model,
                &mut est,
                &SwiftestConfig::default(),
                seed ^ i as u64,
            );
            let tcp = run_swiftest_tcp_default(drawn.build(), &model, seed ^ i as u64);
            udp_t.push(udp.duration.as_secs_f64());
            tcp_t.push(tcp.duration.as_secs_f64());
            udp_d.push(udp.data_bytes / 1e6);
            tcp_d.push(tcp.data_bytes / 1e6);
            if udp.estimate_mbps > 0.0 && tcp.estimate_mbps > 0.0 {
                dev.push(mbw_stats::descriptive::relative_deviation(
                    udp.estimate_mbps,
                    tcp.estimate_mbps,
                ));
            }
        }
        rows.push((
            tech,
            descriptive::mean(&udp_t),
            descriptive::mean(&tcp_t),
            descriptive::mean(&udp_d),
            descriptive::mean(&tcp_d),
            descriptive::mean(&dev),
        ));
    }
    TcpVariantComparison { rows }
}

impl TcpVariantComparison {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "TCP-variant Swiftest (§7) vs the UDP prober (time s / data MB / deviation)\n",
        );
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>9} {:>9} {:>10}",
            "tech", "UDP t", "TCP t", "UDP MB", "TCP MB", "deviation%"
        );
        for (tech, ut, tt, ud, td, dev) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>8.2} {:>8.2} {:>9.1} {:>9.1} {:>10.1}",
                tech.name(),
                ut,
                tt,
                ud,
                td,
                dev * 100.0
            );
        }
        out
    }
}

/// §7 extension: Swiftest over an mmWave-class scenario.
pub fn mmwave_report(n: usize, seed: u64) -> String {
    let scenario = mbw_core::AccessScenario::mmwave();
    let harness = TestHarness::with_scenario(scenario);
    let mut durations = Vec::new();
    let mut acc = Vec::new();
    for i in 0..n {
        let o = harness.run(BtsKind::Swiftest, seed.wrapping_add(i as u64 * 43));
        durations.push(o.duration.as_secs_f64());
        acc.push(
            (1.0 - mbw_stats::descriptive::relative_deviation(o.estimate_mbps, o.truth_mbps))
                .max(0.0),
        );
    }
    format!(
        "Swiftest on mmWave 5G (§7): mean test time {:.2}s, mean accuracy {:.3} over {n} links\n\
         (heavy blockage-driven fluctuation: accuracy below the sub-6 GHz ~0.97 is expected)\n",
        descriptive::mean(&durations),
        descriptive::mean(&acc)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_swiftest_is_about_one_second() {
        let fig = fig20(60, 2000);
        for (tech, ecdf, mean_total) in &fig.series {
            // §5.3: means 0.95–1.05 s probing; ≈1.19 s incl. PING.
            assert!(
                (0.4..=2.0).contains(&ecdf.mean()),
                "{tech}: mean {}",
                ecdf.mean()
            );
            assert!(ecdf.max() < 5.0, "{tech}: max {}", ecdf.max());
            assert!(*mean_total < 2.4, "{tech}: total {mean_total}");
        }
        // §5.3: the majority of tests finish within one second.
        assert!(fig.within_one_second > 0.30, "{}", fig.within_one_second);
    }

    #[test]
    fn fig21_data_usage_ratio() {
        let fig = fig21(40, 2100);
        for (tech, bts, swift, ratio) in &fig.rows {
            assert!(bts > swift, "{tech}");
            // §5.3: 8.2–9.0×; accept a broad band for the simulation.
            assert!((3.0..=25.0).contains(ratio), "{tech}: ratio {ratio}");
        }
        // 5G: BTS-APP hundreds of MB, Swiftest tens (289 vs 32 MB).
        let nr = fig.rows.iter().find(|(t, ..)| *t == TechClass::Nr).unwrap();
        assert!(nr.1 > 100.0, "BTS-APP 5G usage {}", nr.1);
        assert!(nr.2 < 80.0, "Swiftest 5G usage {}", nr.2);
    }

    #[test]
    fn fig22_deviations_are_small() {
        let fig = fig22(50, 2200);
        // §5.3: mean 5.1%, median 3.0%; a small fraction exceeds 10%.
        assert!(fig.overall.mean() < 0.12, "mean {}", fig.overall.mean());
        assert!(
            fig.overall.median() < 0.08,
            "median {}",
            fig.overall.median()
        );
        assert!(fig.above_10pct < 0.35, "{}", fig.above_10pct);
        assert!(fig.above_30pct < fig.above_10pct);
    }

    #[test]
    fn fig23_25_swiftest_wins_time_data_and_accuracy() {
        let fig = fig23_25(30, 2300);
        for tech in TechClass::ALL {
            let (t_fast, d_fast, a_fast) = fig.cell(tech, BtsKind::Fast).unwrap();
            let (t_fbts, d_fbts, a_fbts) = fig.cell(tech, BtsKind::FastBts).unwrap();
            let (t_swift, d_swift, a_swift) = fig.cell(tech, BtsKind::Swiftest).unwrap();
            // Fig 23: Swiftest is fastest.
            assert!(
                t_swift < t_fast && t_swift < t_fbts,
                "{tech}: times {t_fast} {t_fbts} {t_swift}"
            );
            // Fig 24: Swiftest uses the least data.
            assert!(
                d_swift < d_fast && d_swift < d_fbts,
                "{tech}: data {d_fast} {d_fbts} {d_swift}"
            );
            // Fig 25: Swiftest at least matches FAST per technology
            // (on stable low-BDP 4G links the two tie) and clearly beats
            // FastBTS, which is the worst everywhere.
            assert!(
                a_swift > a_fast - 0.02,
                "{tech}: acc {a_swift} !≳ FAST {a_fast}"
            );
            assert!(
                a_swift > a_fbts,
                "{tech}: acc {a_swift} !> FastBTS {a_fbts}"
            );
            assert!(
                a_fbts < a_fast,
                "{tech}: FastBTS should be worst ({a_fbts} vs {a_fast})"
            );
        }
        // Pooled across technologies Swiftest at least matches FAST (the
        // paper's 8–12% gap over FAST comes from real-world TCP noise
        // our simulated FAST does not suffer; see EXPERIMENTS.md) and
        // clearly beats FastBTS, as in Fig 25.
        let pooled = |kind: BtsKind| {
            let v: Vec<f64> = fig
                .rows
                .iter()
                .filter(|(_, k, ..)| *k == kind)
                .map(|&(.., a)| a)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(pooled(BtsKind::Swiftest) > pooled(BtsKind::Fast) - 0.01);
        assert!(pooled(BtsKind::Swiftest) > pooled(BtsKind::FastBts) + 0.1);
    }

    #[test]
    fn renders_are_tables() {
        assert!(fig20(5, 1).render().contains("WiFi"));
        assert!(fig21(5, 2).render().contains('x'));
        assert!(fig22(5, 3).render().contains("overall"));
        assert!(fig23_25(5, 4).render().contains("Swiftest"));
    }
}
