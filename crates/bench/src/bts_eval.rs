//! Figures 20–25: the Swiftest evaluation.
//!
//! §5.3's protocol: opt-in users run back-to-back test pairs (Swiftest
//! and BTS-APP in random order) on whatever link they have; the
//! benchmark study additionally runs FAST and FastBTS in the same test
//! group. Every figure here is a streaming reducer
//! ([`FigureAccumulator`]) over the shared campaign pool: the
//! back-to-back pairs run *once* and feed the duration (Fig 20),
//! data-usage (Fig 21), and deviation (Fig 22) figures alike, and the
//! four-service groups feed Figs 23–25.

use mbw_analysis::accum::FigureAccumulator;
use mbw_core::{
    run_campaign, trial_seed, BackToBack, BtsKind, CampaignPlan, EmptyCampaign, ScenarioId,
    TechClass, TestHarness, TrialKind, TrialOutcome, TrialView,
};
use mbw_frame::{Codec, CodecError, Dec, Enc};
use mbw_stats::{descriptive, Ecdf};
use std::fmt::Write as _;

/// The back-to-back pair kind shared by Figs 20–22 (and the workload
/// estimate): Swiftest first, BTS-APP second, on one drawn link.
pub const EVAL_PAIR: TrialKind = TrialKind::Pair(BtsKind::Swiftest, BtsKind::BtsApp);

fn tech_index(tech: TechClass) -> usize {
    TechClass::ALL
        .iter()
        .position(|&t| t == tech)
        .expect("tech in ALL")
}

/// The pair trial's `(tech, swiftest, bts_app)` outcomes, if `r` is
/// one of the shared back-to-back pairs.
pub fn eval_pair_outcomes(r: &TrialView<'_>) -> Option<(TechClass, TrialOutcome, TrialOutcome)> {
    match (r.spec().kind, r.spec().scenario) {
        (k, ScenarioId::Tech(tech)) if k == EVAL_PAIR => Some((tech, r.outcome(0), r.outcome(1))),
        _ => None,
    }
}

/// Add the shared back-to-back pair series (Figs 20–22) to `plan`.
pub fn plan_pairs(plan: &mut CampaignPlan, n: usize) {
    for tech in TechClass::ALL {
        plan.push_series(EVAL_PAIR, ScenarioId::Tech(tech), n);
    }
}

/// Add the four-service test-group series (Figs 23–25) to `plan`.
pub fn plan_groups(plan: &mut CampaignPlan, n: usize) {
    for tech in TechClass::ALL {
        plan.push_series(TrialKind::Group, ScenarioId::Tech(tech), n);
    }
}

/// Add the §7 mmWave series to `plan`.
pub fn plan_mmwave(plan: &mut CampaignPlan, n: usize) {
    plan.push_series(TrialKind::Single(BtsKind::Swiftest), ScenarioId::Mmwave, n);
}

/// Fig 20: Swiftest test-time distribution per technology.
#[derive(Debug, Clone)]
pub struct Fig20 {
    /// `(tech, probing-time ECDF seconds, mean total incl. PING)`.
    pub series: Vec<(TechClass, Ecdf, f64)>,
    /// Fraction of tests finishing within one second including PING.
    pub within_one_second: f64,
}

/// Streaming reducer for Fig 20 over the shared pair trials.
#[derive(Debug, Clone, Default)]
pub struct Fig20Acc {
    durations: [Vec<f64>; 3],
    totals: [Vec<f64>; 3],
}

impl Codec for Fig20Acc {
    fn encode(&self, enc: &mut Enc) {
        self.durations.encode(enc);
        self.totals.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            durations: Codec::decode(dec)?,
            totals: Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for Fig20Acc {
    type Output = Result<Fig20, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let Some((tech, swift, _bts)) = eval_pair_outcomes(r) {
            let t = tech_index(tech);
            self.durations[t].push(swift.duration_s);
            self.totals[t].push(swift.total_s());
        }
    }

    fn merge(&mut self, other: Self) {
        for t in 0..3 {
            self.durations[t].extend(other.durations[t].iter());
            self.totals[t].extend(other.totals[t].iter());
        }
    }

    fn finish(self) -> Self::Output {
        let total_count: usize = self.totals.iter().map(Vec::len).sum();
        if total_count == 0 {
            return Err(EmptyCampaign);
        }
        let fast_count: usize = self
            .totals
            .iter()
            .flat_map(|v| v.iter())
            .filter(|&&t| t <= 1.0)
            .count();
        let series = TechClass::ALL
            .iter()
            .map(|&tech| {
                let t = tech_index(tech);
                (
                    tech,
                    Ecdf::new(&self.durations[t]),
                    descriptive::mean(&self.totals[t]),
                )
            })
            .collect();
        Ok(Fig20 {
            series,
            within_one_second: fast_count as f64 / total_count as f64,
        })
    }
}

/// Run Fig 20 with `n` shared pairs per technology.
pub fn fig20(n: usize, seed: u64) -> Result<Fig20, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_pairs(&mut plan, n);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(Fig20Acc::default(), &pool)
}

impl Fig20 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 20: Swiftest test time per technology (seconds)\n");
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>8} {:>12}",
            "tech", "mean", "median", "max", "mean+PING"
        );
        for (tech, ecdf, total) in &self.series {
            let _ = writeln!(
                out,
                "{:<6} {:>8.2} {:>8.2} {:>8.2} {:>12.2}",
                tech.name(),
                ecdf.mean(),
                ecdf.median(),
                ecdf.max(),
                total
            );
        }
        let _ = writeln!(
            out,
            "tests finished within 1 s (incl. PING): {:.0}%",
            self.within_one_second * 100.0
        );
        out
    }
}

/// Fig 21: data usage per test, BTS-APP vs Swiftest.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// `(tech, mean BTS-APP MB, mean Swiftest MB, ratio)`.
    pub rows: Vec<(TechClass, f64, f64, f64)>,
}

/// Streaming reducer for Fig 21 over the shared pair trials.
#[derive(Debug, Clone, Default)]
pub struct Fig21Acc {
    bts: [Vec<f64>; 3],
    swift: [Vec<f64>; 3],
}

impl Codec for Fig21Acc {
    fn encode(&self, enc: &mut Enc) {
        self.bts.encode(enc);
        self.swift.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            bts: Codec::decode(dec)?,
            swift: Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for Fig21Acc {
    type Output = Result<Fig21, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let Some((tech, swift, bts)) = eval_pair_outcomes(r) {
            let t = tech_index(tech);
            self.bts[t].push(bts.data_bytes / 1e6);
            self.swift[t].push(swift.data_bytes / 1e6);
        }
    }

    fn merge(&mut self, other: Self) {
        for t in 0..3 {
            self.bts[t].extend(other.bts[t].iter());
            self.swift[t].extend(other.swift[t].iter());
        }
    }

    fn finish(self) -> Self::Output {
        if self.bts.iter().all(Vec::is_empty) {
            return Err(EmptyCampaign);
        }
        let rows = TechClass::ALL
            .iter()
            .map(|&tech| {
                let t = tech_index(tech);
                let b = descriptive::mean(&self.bts[t]);
                let s = descriptive::mean(&self.swift[t]);
                (tech, b, s, b / s.max(1e-9))
            })
            .collect();
        Ok(Fig21 { rows })
    }
}

/// Run Fig 21 with `n` shared pairs per technology.
pub fn fig21(n: usize, seed: u64) -> Result<Fig21, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_pairs(&mut plan, n);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(Fig21Acc::default(), &pool)
}

impl Fig21 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 21: average data usage per test (MB)\n");
        let _ = writeln!(
            out,
            "{:<6} {:>10} {:>10} {:>7}",
            "tech", "BTS-APP", "Swiftest", "ratio"
        );
        for (tech, b, s, r) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>10.1} {:>10.1} {:>6.1}x",
                tech.name(),
                b,
                s,
                r
            );
        }
        out
    }
}

/// Fig 22: deviation between back-to-back Swiftest and BTS-APP results.
#[derive(Debug, Clone)]
pub struct Fig22 {
    /// Per-technology deviation ECDFs (fractions, not %).
    pub series: Vec<(TechClass, Ecdf)>,
    /// Pooled deviations.
    pub overall: Ecdf,
    /// Fraction of pairs deviating more than 10%.
    pub above_10pct: f64,
    /// Fraction of pairs deviating more than 30%.
    pub above_30pct: f64,
}

/// Streaming reducer for Fig 22 over the shared pair trials.
#[derive(Debug, Clone, Default)]
pub struct Fig22Acc {
    devs: [Vec<f64>; 3],
}

impl Codec for Fig22Acc {
    fn encode(&self, enc: &mut Enc) {
        self.devs.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            devs: Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for Fig22Acc {
    type Output = Result<Fig22, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        if let Some((tech, swift, bts)) = eval_pair_outcomes(r) {
            self.devs[tech_index(tech)].push(descriptive::relative_deviation(
                swift.estimate_mbps,
                bts.estimate_mbps,
            ));
        }
    }

    fn merge(&mut self, other: Self) {
        for t in 0..3 {
            self.devs[t].extend(other.devs[t].iter());
        }
    }

    fn finish(self) -> Self::Output {
        if self.devs.iter().all(Vec::is_empty) {
            return Err(EmptyCampaign);
        }
        let mut series = Vec::new();
        let mut pooled = Vec::new();
        for &tech in &TechClass::ALL {
            let devs = &self.devs[tech_index(tech)];
            pooled.extend_from_slice(devs);
            series.push((tech, Ecdf::new(devs)));
        }
        Ok(Fig22 {
            above_10pct: descriptive::fraction_above(&pooled, 0.10),
            above_30pct: descriptive::fraction_above(&pooled, 0.30),
            overall: Ecdf::new(&pooled),
            series,
        })
    }
}

/// Run Fig 22 with `n` shared pairs per technology.
pub fn fig22(n: usize, seed: u64) -> Result<Fig22, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_pairs(&mut plan, n);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(Fig22Acc::default(), &pool)
}

impl Fig22 {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 22: result deviation between Swiftest and BTS-APP (%)\n");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>8}",
            "tech", "mean", "median", "max"
        );
        for (tech, e) in &self.series {
            let _ = writeln!(
                out,
                "{:<8} {:>8.1} {:>8.1} {:>8.1}",
                tech.name(),
                e.mean() * 100.0,
                e.median() * 100.0,
                e.max() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:>8.1} {:>8.1} {:>8.1}",
            "overall",
            self.overall.mean() * 100.0,
            self.overall.median() * 100.0,
            self.overall.max() * 100.0
        );
        let _ = writeln!(
            out,
            ">10%: {:.1}% of pairs   >30%: {:.1}% of pairs",
            self.above_10pct * 100.0,
            self.above_30pct * 100.0
        );
        out
    }
}

/// Figs 23–25: FAST vs FastBTS vs Swiftest (test time, data usage,
/// accuracy against the same-group BTS-APP result).
#[derive(Debug, Clone)]
pub struct Fig23to25 {
    /// `(tech, kind, mean time s, mean data MB, mean accuracy)`.
    pub rows: Vec<(TechClass, BtsKind, f64, f64, f64)>,
}

/// The three contenders of the benchmark study.
pub const CONTENDERS: [BtsKind; 3] = [BtsKind::Fast, BtsKind::FastBts, BtsKind::Swiftest];

/// Streaming reducer for Figs 23–25 over the group trials.
#[derive(Debug, Clone, Default)]
pub struct Fig23to25Acc {
    /// `[tech][contender]` sample vectors.
    time: [[Vec<f64>; 3]; 3],
    data: [[Vec<f64>; 3]; 3],
    acc: [[Vec<f64>; 3]; 3],
}

impl Codec for Fig23to25Acc {
    fn encode(&self, enc: &mut Enc) {
        self.time.encode(enc);
        self.data.encode(enc);
        self.acc.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            time: Codec::decode(dec)?,
            data: Codec::decode(dec)?,
            acc: Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for Fig23to25Acc {
    type Output = Result<Fig23to25, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        let (TrialKind::Group, ScenarioId::Tech(tech)) = (r.spec().kind, r.spec().scenario) else {
            return;
        };
        let t = tech_index(tech);
        let reference = r.outcome(0);
        // Group rows follow `TestGroup`: BTS-APP, then FAST, FastBTS,
        // Swiftest — the CONTENDERS order.
        for k in 0..CONTENDERS.len() {
            let o = r.outcome(1 + k);
            self.time[t][k].push(o.duration_s);
            self.data[t][k].push(o.data_bytes / 1e6);
            self.acc[t][k].push(o.accuracy_vs(reference.estimate_mbps).max(0.0));
        }
    }

    fn merge(&mut self, other: Self) {
        for t in 0..3 {
            for k in 0..3 {
                self.time[t][k].extend(other.time[t][k].iter());
                self.data[t][k].extend(other.data[t][k].iter());
                self.acc[t][k].extend(other.acc[t][k].iter());
            }
        }
    }

    fn finish(self) -> Self::Output {
        if self.time.iter().flatten().all(Vec::is_empty) {
            return Err(EmptyCampaign);
        }
        let mut rows = Vec::new();
        for &tech in &TechClass::ALL {
            let t = tech_index(tech);
            for (k, &kind) in CONTENDERS.iter().enumerate() {
                rows.push((
                    tech,
                    kind,
                    descriptive::mean(&self.time[t][k]),
                    descriptive::mean(&self.data[t][k]),
                    descriptive::mean(&self.acc[t][k]),
                ));
            }
        }
        Ok(Fig23to25 { rows })
    }
}

/// Run the benchmark-study figures with `n` test groups per technology.
pub fn fig23_25(n: usize, seed: u64) -> Result<Fig23to25, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_groups(&mut plan, n);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(Fig23to25Acc::default(), &pool)
}

impl Fig23to25 {
    /// One `(tech, kind)` cell: `(time, data, accuracy)`.
    pub fn cell(&self, tech: TechClass, kind: BtsKind) -> Option<(f64, f64, f64)> {
        self.rows
            .iter()
            .find(|(t, k, ..)| *t == tech && *k == kind)
            .map(|&(_, _, t, d, a)| (t, d, a))
    }

    /// Text report.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figs 23-25: FAST vs FastBTS vs Swiftest (time s / data MB / accuracy)\n");
        let _ = writeln!(
            out,
            "{:<6} {:<9} {:>8} {:>9} {:>9}",
            "tech", "BTS", "time", "data MB", "accuracy"
        );
        for (tech, kind, t, d, a) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:<9} {:>8.2} {:>9.1} {:>9.2}",
                tech.name(),
                kind.name(),
                t,
                d,
                a
            );
        }
        out
    }
}

/// Shared helper: run a back-to-back pair (used by examples).
pub fn run_pair(tech: TechClass, seed: u64) -> BackToBack {
    TestHarness::new(tech).back_to_back(BtsKind::Swiftest, BtsKind::BtsApp, seed)
}

/// §7 extension: the UDP prober vs the TCP-variant (model-guided
/// congestion control) on the same drawn links.
#[derive(Debug, Clone)]
pub struct TcpVariantComparison {
    /// `(tech, udp time s, tcp time s, udp data MB, tcp data MB, mean deviation)`.
    pub rows: Vec<(TechClass, f64, f64, f64, f64, f64)>,
}

/// Run the UDP-vs-TCP-variant comparison with `n` links per technology.
pub fn tcp_variant_comparison(n: usize, seed: u64) -> TcpVariantComparison {
    use mbw_core::estimator::ConvergenceEstimator;
    use mbw_core::probe::{run_swiftest, SwiftestConfig};
    use mbw_core::tcp_variant::run_swiftest_tcp_default;
    let mut rows = Vec::new();
    for (t, &tech) in TechClass::ALL.iter().enumerate() {
        let scenario = mbw_core::AccessScenario::default_for(tech);
        let model = scenario.model.clone();
        let mut udp_t = Vec::new();
        let mut tcp_t = Vec::new();
        let mut udp_d = Vec::new();
        let mut tcp_d = Vec::new();
        let mut dev = Vec::new();
        for i in 0..n {
            // One seed stream per technology, same derivation as the
            // campaign's trials.
            let s = trial_seed(seed, (0x7C9 << 8) | t as u64, i as u64);
            let drawn = scenario.draw(s);
            let mut est = ConvergenceEstimator::swiftest();
            let udp = run_swiftest(
                drawn.build(),
                &model,
                &mut est,
                &SwiftestConfig::default(),
                s ^ 0x51AB,
            );
            let tcp = run_swiftest_tcp_default(drawn.build(), &model, s ^ 0x51AB);
            udp_t.push(udp.duration.as_secs_f64());
            tcp_t.push(tcp.duration.as_secs_f64());
            udp_d.push(udp.data_bytes / 1e6);
            tcp_d.push(tcp.data_bytes / 1e6);
            if udp.estimate_mbps > 0.0 && tcp.estimate_mbps > 0.0 {
                dev.push(mbw_stats::descriptive::relative_deviation(
                    udp.estimate_mbps,
                    tcp.estimate_mbps,
                ));
            }
        }
        rows.push((
            tech,
            descriptive::mean(&udp_t),
            descriptive::mean(&tcp_t),
            descriptive::mean(&udp_d),
            descriptive::mean(&tcp_d),
            descriptive::mean(&dev),
        ));
    }
    TcpVariantComparison { rows }
}

impl TcpVariantComparison {
    /// Text report.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "TCP-variant Swiftest (§7) vs the UDP prober (time s / data MB / deviation)\n",
        );
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>9} {:>9} {:>10}",
            "tech", "UDP t", "TCP t", "UDP MB", "TCP MB", "deviation%"
        );
        for (tech, ut, tt, ud, td, dev) in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>8.2} {:>8.2} {:>9.1} {:>9.1} {:>10.1}",
                tech.name(),
                ut,
                tt,
                ud,
                td,
                dev * 100.0
            );
        }
        out
    }
}

/// §7 extension: Swiftest over an mmWave-class scenario.
#[derive(Debug, Clone)]
pub struct MmwaveReport {
    /// Mean probing time, seconds.
    pub mean_duration_s: f64,
    /// Mean accuracy against the drawn link's true capacity.
    pub mean_accuracy: f64,
    /// Links measured.
    pub links: usize,
}

/// Streaming reducer for the mmWave report over the campaign pool.
#[derive(Debug, Clone, Default)]
pub struct MmwaveAcc {
    durations: Vec<f64>,
    acc: Vec<f64>,
}

impl Codec for MmwaveAcc {
    fn encode(&self, enc: &mut Enc) {
        self.durations.encode(enc);
        self.acc.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            durations: Codec::decode(dec)?,
            acc: Codec::decode(dec)?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for MmwaveAcc {
    type Output = Result<MmwaveReport, EmptyCampaign>;

    fn observe(&mut self, r: &TrialView<'a>) {
        let spec = r.spec();
        if spec.kind == TrialKind::Single(BtsKind::Swiftest) && spec.scenario == ScenarioId::Mmwave
        {
            let o = r.solo();
            self.durations.push(o.duration_s);
            self.acc.push(o.accuracy_vs(o.truth_mbps).max(0.0));
        }
    }

    fn merge(&mut self, other: Self) {
        self.durations.extend(other.durations);
        self.acc.extend(other.acc);
    }

    fn finish(self) -> Self::Output {
        if self.durations.is_empty() {
            return Err(EmptyCampaign);
        }
        Ok(MmwaveReport {
            mean_duration_s: descriptive::mean(&self.durations),
            mean_accuracy: descriptive::mean(&self.acc),
            links: self.durations.len(),
        })
    }
}

impl MmwaveReport {
    /// Text report.
    pub fn render(&self) -> String {
        format!(
            "Swiftest on mmWave 5G (§7): mean test time {:.2}s, mean accuracy {:.3} over {} links\n\
             (heavy blockage-driven fluctuation: accuracy below the sub-6 GHz ~0.97 is expected)\n",
            self.mean_duration_s, self.mean_accuracy, self.links
        )
    }
}

/// Run the mmWave report with `n` links.
pub fn mmwave_report(n: usize, seed: u64) -> Result<MmwaveReport, EmptyCampaign> {
    let mut plan = CampaignPlan::new(seed);
    plan_mmwave(&mut plan, n);
    let pool = run_campaign(&plan, 1);
    crate::eval_sweep::reduce(MmwaveAcc::default(), &pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_swiftest_is_about_one_second() {
        let fig = fig20(60, 2000).expect("non-empty campaign");
        for (tech, ecdf, mean_total) in &fig.series {
            // §5.3: means 0.95–1.05 s probing; ≈1.19 s incl. PING.
            assert!(
                (0.4..=2.0).contains(&ecdf.mean()),
                "{tech}: mean {}",
                ecdf.mean()
            );
            assert!(ecdf.max() < 5.0, "{tech}: max {}", ecdf.max());
            assert!(*mean_total < 2.4, "{tech}: total {mean_total}");
        }
        // §5.3: the majority of tests finish within one second.
        assert!(fig.within_one_second > 0.30, "{}", fig.within_one_second);
    }

    #[test]
    fn fig20_empty_campaign_is_a_typed_error() {
        assert_eq!(fig20(0, 1).unwrap_err(), EmptyCampaign);
        assert_eq!(fig21(0, 1).unwrap_err(), EmptyCampaign);
        assert_eq!(fig22(0, 1).unwrap_err(), EmptyCampaign);
        assert_eq!(fig23_25(0, 1).unwrap_err(), EmptyCampaign);
        assert_eq!(mmwave_report(0, 1).unwrap_err(), EmptyCampaign);
    }

    #[test]
    fn fig21_data_usage_ratio() {
        let fig = fig21(40, 2100).expect("non-empty campaign");
        for (tech, bts, swift, ratio) in &fig.rows {
            assert!(bts > swift, "{tech}");
            // §5.3: 8.2–9.0×; accept a broad band for the simulation.
            assert!((3.0..=25.0).contains(ratio), "{tech}: ratio {ratio}");
        }
        // 5G: BTS-APP hundreds of MB, Swiftest tens (289 vs 32 MB).
        let nr = fig.rows.iter().find(|(t, ..)| *t == TechClass::Nr).unwrap();
        assert!(nr.1 > 100.0, "BTS-APP 5G usage {}", nr.1);
        assert!(nr.2 < 80.0, "Swiftest 5G usage {}", nr.2);
    }

    #[test]
    fn fig22_deviations_are_small() {
        let fig = fig22(50, 2200).expect("non-empty campaign");
        // §5.3: mean 5.1%, median 3.0%; a small fraction exceeds 10%.
        assert!(fig.overall.mean() < 0.12, "mean {}", fig.overall.mean());
        assert!(
            fig.overall.median() < 0.08,
            "median {}",
            fig.overall.median()
        );
        assert!(fig.above_10pct < 0.35, "{}", fig.above_10pct);
        assert!(fig.above_30pct < fig.above_10pct);
    }

    #[test]
    fn fig23_25_swiftest_wins_time_data_and_accuracy() {
        let fig = fig23_25(30, 2300).expect("non-empty campaign");
        for tech in TechClass::ALL {
            let (t_fast, d_fast, a_fast) = fig.cell(tech, BtsKind::Fast).unwrap();
            let (t_fbts, d_fbts, a_fbts) = fig.cell(tech, BtsKind::FastBts).unwrap();
            let (t_swift, d_swift, a_swift) = fig.cell(tech, BtsKind::Swiftest).unwrap();
            // Fig 23: Swiftest is fastest.
            assert!(
                t_swift < t_fast && t_swift < t_fbts,
                "{tech}: times {t_fast} {t_fbts} {t_swift}"
            );
            // Fig 24: Swiftest uses a fraction of FAST's data. (FastBTS
            // can post even smaller numbers, but only because its crude
            // convergence aborts tests early — the accuracy assertions
            // below are where that catches up with it.)
            assert!(d_swift < d_fast, "{tech}: data {d_fast} {d_fbts} {d_swift}");
            assert!(d_fbts < d_fast, "{tech}: data {d_fast} {d_fbts} {d_swift}");
            // Fig 25: Swiftest at least matches FAST per technology
            // (on stable low-BDP 4G links the two tie) and clearly beats
            // FastBTS, which is the worst everywhere.
            assert!(
                a_swift > a_fast - 0.02,
                "{tech}: acc {a_swift} !≳ FAST {a_fast}"
            );
            assert!(
                a_swift > a_fbts,
                "{tech}: acc {a_swift} !> FastBTS {a_fbts}"
            );
            assert!(
                a_fbts < a_fast,
                "{tech}: FastBTS should be worst ({a_fbts} vs {a_fast})"
            );
        }
        // Pooled across technologies Swiftest at least matches FAST (the
        // paper's 8–12% gap over FAST comes from real-world TCP noise
        // our simulated FAST does not suffer; see EXPERIMENTS.md) and
        // clearly beats FastBTS, as in Fig 25.
        let pooled = |kind: BtsKind| {
            let v: Vec<f64> = fig
                .rows
                .iter()
                .filter(|(_, k, ..)| *k == kind)
                .map(|&(.., a)| a)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(pooled(BtsKind::Swiftest) > pooled(BtsKind::Fast) - 0.01);
        assert!(pooled(BtsKind::Swiftest) > pooled(BtsKind::FastBts) + 0.1);
    }

    #[test]
    fn renders_are_tables() {
        assert!(fig20(5, 1).expect("ok").render().contains("WiFi"));
        assert!(fig21(5, 2).expect("ok").render().contains('x'));
        assert!(fig22(5, 3).expect("ok").render().contains("overall"));
        assert!(fig23_25(5, 4).expect("ok").render().contains("Swiftest"));
        assert!(mmwave_report(5, 5).expect("ok").render().contains("mmWave"));
    }
}
