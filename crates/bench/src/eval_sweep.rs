//! Fused single-pass reduction of the Swiftest evaluation figures.
//!
//! The evaluation half of the paper (Figs 17, 20–25, the ablations,
//! the mmWave report, and the cost table's workload estimate) is one
//! plan → execute → reduce campaign:
//!
//! 1. **Plan** — [`plan_for`] enumerates the union of trials the
//!    requested figure ids need. [`mbw_core::CampaignPlan`]
//!    deduplicates: Figs 20–22 and the workload estimate all read the
//!    *same* back-to-back pair series, and the paper-default ablation
//!    row is shared by all three ablation tables.
//! 2. **Execute** — [`mbw_core::run_campaign`] fills a columnar
//!    [`TrialPool`], byte-identical for any thread count.
//! 3. **Reduce** — [`EvalFigureSet`] folds every requested figure in a
//!    single pass over the pool; [`reduce`] is the one-accumulator
//!    version the per-figure entry points use.
//!
//! Per-trial seeds are *structural* (derived from what a trial is, not
//! where it sits in the plan), so the fused pool reproduces each
//! legacy per-figure run exactly: `EvalFigures::render("fig20")` is
//! byte-identical to `bts_eval::fig20(n, seed)?.render()` for the same
//! count and campaign seed.

use crate::ablation::{
    render_variants, AblationAcc, AblationTables, CONVERGE_TABLE, ESCALATE_TABLE, INIT_TABLE,
};
use crate::bts_eval::{
    Fig20, Fig20Acc, Fig21, Fig21Acc, Fig22, Fig22Acc, Fig23to25, Fig23to25Acc, MmwaveAcc,
    MmwaveReport,
};
use crate::deploy_eval::{cost_report_with, WorkloadAcc};
use crate::fig17::{Fig17, Fig17Acc};
use mbw_analysis::accum::FigureAccumulator;
use mbw_core::{CampaignPlan, EmptyCampaign, EvalCounts, TrialPool, TrialView, VariantId};
use mbw_deploy::WorkloadEstimate;
use mbw_stats::pool;
use mbw_telemetry::trace;

/// Figure ids the fused evaluation sweep can serve from one pool.
pub const EVAL_SWEEP_IDS: [&str; 12] = [
    "fig17",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "ablation_init",
    "ablation_converge",
    "ablation_escalate",
    "mmwave",
    "cost",
];

/// Fold one accumulator over every trial of `pool`.
pub fn reduce<A, O>(mut acc: A, pool: &TrialPool) -> O
where
    A: for<'a> FigureAccumulator<TrialView<'a>, Output = O>,
{
    for view in pool.iter() {
        acc.observe(&view);
    }
    acc.finish()
}

/// Fold the full evaluation figure set over every trial of `pool`,
/// then finish it on a work pool of `threads` (see
/// [`EvalFigureSet::finish_with`]). Byte-identical to [`reduce`] at
/// any thread count.
pub fn reduce_with(mut set: EvalFigureSet, pool: &TrialPool, threads: usize) -> EvalFigures {
    for view in pool.iter() {
        set.observe(&view);
    }
    set.finish_with(threads)
}

/// Plan the union of trials the requested figure ids need. Unknown ids
/// plan nothing (the binary rejects them before getting here).
pub fn plan_for<S: AsRef<str>>(ids: &[S], counts: &EvalCounts, campaign_seed: u64) -> CampaignPlan {
    let mut plan = CampaignPlan::new(campaign_seed);
    let wants = |id: &str| ids.iter().any(|x| x.as_ref() == id);
    if wants("fig17") {
        crate::fig17::plan_fig17(&mut plan, counts.ramp_paths);
    }
    if wants("fig20") || wants("fig21") || wants("fig22") || wants("cost") {
        crate::bts_eval::plan_pairs(&mut plan, counts.tests);
    }
    if wants("fig23") || wants("fig24") || wants("fig25") {
        crate::bts_eval::plan_groups(&mut plan, counts.groups);
    }
    let mut variants: Vec<VariantId> = Vec::new();
    for (id, table) in [
        ("ablation_init", &INIT_TABLE[..]),
        ("ablation_converge", &CONVERGE_TABLE[..]),
        ("ablation_escalate", &ESCALATE_TABLE[..]),
    ] {
        if wants(id) {
            variants.extend(table.iter().map(|&(v, _)| v));
        }
    }
    crate::ablation::plan_variants(&mut plan, &variants, counts.ablation);
    if wants("mmwave") {
        crate::bts_eval::plan_mmwave(&mut plan, counts.mmwave);
    }
    plan
}

/// Every figure the fused pass produced. Each field carries its own
/// [`EmptyCampaign`] result: a pool planned without Fig 17's trials
/// still renders Fig 20 fine, and asking for the missing figure
/// surfaces the typed error instead of a NaN table.
#[derive(Debug, Clone)]
pub struct EvalFigures {
    /// Fig 17: TCP ramp-up times.
    pub fig17: Result<Fig17, EmptyCampaign>,
    /// Fig 20: Swiftest test-time distributions.
    pub fig20: Result<Fig20, EmptyCampaign>,
    /// Fig 21: data usage, BTS-APP vs Swiftest.
    pub fig21: Result<Fig21, EmptyCampaign>,
    /// Fig 22: back-to-back result deviation.
    pub fig22: Result<Fig22, EmptyCampaign>,
    /// Figs 23–25: the benchmark study.
    pub fig23_25: Result<Fig23to25, EmptyCampaign>,
    /// Per-variant ablation means (projected into the three tables).
    pub ablations: Result<AblationTables, EmptyCampaign>,
    /// §7 mmWave report.
    pub mmwave: Result<MmwaveReport, EmptyCampaign>,
    /// Workload estimated from the pool's own Swiftest outcomes.
    pub workload: Result<WorkloadEstimate, EmptyCampaign>,
    /// Catalog seed for the cost report.
    cost_seed: u64,
}

impl EvalFigures {
    /// Render one figure id; `None` for ids this sweep does not serve.
    pub fn render(&self, id: &str) -> Option<Result<String, EmptyCampaign>> {
        let table = |rows: &[(VariantId, &str)], title: &str| {
            self.ablations.clone().and_then(|t| {
                t.table(rows)
                    .map(|rows| render_variants(title, &rows))
                    .ok_or(EmptyCampaign)
            })
        };
        Some(match id {
            "fig17" => self.fig17.as_ref().map(Fig17::render).map_err(|&e| e),
            "fig20" => self.fig20.as_ref().map(Fig20::render).map_err(|&e| e),
            "fig21" => self.fig21.as_ref().map(Fig21::render).map_err(|&e| e),
            "fig22" => self.fig22.as_ref().map(Fig22::render).map_err(|&e| e),
            "fig23" | "fig24" | "fig25" => self
                .fig23_25
                .as_ref()
                .map(Fig23to25::render)
                .map_err(|&e| e),
            "ablation_init" => table(&INIT_TABLE, "Ablation: initial probing rate"),
            "ablation_converge" => table(&CONVERGE_TABLE, "Ablation: convergence rule"),
            "ablation_escalate" => table(&ESCALATE_TABLE, "Ablation: escalation policy"),
            "mmwave" => self
                .mmwave
                .as_ref()
                .map(MmwaveReport::render)
                .map_err(|&e| e),
            "cost" => self
                .workload
                .as_ref()
                .map(|w| cost_report_with(w, self.cost_seed).render())
                .map_err(|&e| e),
            _ => return None,
        })
    }
}

/// The fused accumulator: folds every evaluation figure in one pass.
#[derive(Debug, Clone)]
pub struct EvalFigureSet {
    fig17: Fig17Acc,
    fig20: Fig20Acc,
    fig21: Fig21Acc,
    fig22: Fig22Acc,
    fig23_25: Fig23to25Acc,
    ablations: AblationAcc,
    mmwave: MmwaveAcc,
    workload: WorkloadAcc,
    cost_seed: u64,
}

impl EvalFigureSet {
    /// Fresh accumulator; `cost_seed` picks the server-catalog draw the
    /// cost report purchases from.
    pub fn new(cost_seed: u64) -> Self {
        Self {
            fig17: Fig17Acc::new(),
            fig20: Fig20Acc::default(),
            fig21: Fig21Acc::default(),
            fig22: Fig22Acc::default(),
            fig23_25: Fig23to25Acc::default(),
            ablations: AblationAcc::default(),
            mmwave: MmwaveAcc::default(),
            workload: WorkloadAcc::default(),
            cost_seed,
        }
    }

    /// Finish every evaluation figure on a work pool of `threads`
    /// (sibling of [`mbw_analysis::FigureSet::finish_with`]): the eight
    /// per-field finishes are independent pure reductions, so they run
    /// as one batch and the result is byte-identical at any thread
    /// count. Each finish is traced as a `finish.{field}` span under an
    /// `eval.finish` root.
    pub fn finish_with(self, threads: usize) -> EvalFigures {
        let tracer = trace::active();
        let mut spans = tracer.local();
        let all = spans.begin();
        let root_id = all.id;
        let Self {
            fig17,
            fig20,
            fig21,
            fig22,
            fig23_25,
            ablations,
            mmwave,
            workload,
            cost_seed,
        } = self;

        let mut o_fig17 = None;
        let mut o_fig20 = None;
        let mut o_fig21 = None;
        let mut o_fig22 = None;
        let mut o_fig23_25 = None;
        let mut o_ablations = None;
        let mut o_mmwave = None;
        let mut o_workload = None;
        {
            let tracer = &tracer;
            let mut tasks: Vec<pool::Task<'_, ()>> = Vec::with_capacity(8);
            macro_rules! job {
                ($name:literal, $slot:ident, $acc:ident) => {{
                    let slot = &mut $slot;
                    tasks.push(Box::new(move |_ctx| {
                        let value = trace::scope(tracer, || {
                            let mut spans = tracer.local();
                            let span = spans.begin();
                            let value = $acc.finish();
                            spans.end(span, root_id, concat!("finish.", $name), "eval");
                            value
                        });
                        *slot = Some(value);
                    }));
                }};
            }
            job!("fig17", o_fig17, fig17);
            job!("fig20", o_fig20, fig20);
            job!("fig21", o_fig21, fig21);
            job!("fig22", o_fig22, fig22);
            job!("fig23_25", o_fig23_25, fig23_25);
            job!("ablations", o_ablations, ablations);
            job!("mmwave", o_mmwave, mmwave);
            job!("workload", o_workload, workload);
            pool::run(threads, tasks);
        }
        let figures = EvalFigures {
            fig17: o_fig17.expect("finish job ran"),
            fig20: o_fig20.expect("finish job ran"),
            fig21: o_fig21.expect("finish job ran"),
            fig22: o_fig22.expect("finish job ran"),
            fig23_25: o_fig23_25.expect("finish job ran"),
            ablations: o_ablations.expect("finish job ran"),
            mmwave: o_mmwave.expect("finish job ran"),
            workload: o_workload.expect("finish job ran"),
            cost_seed,
        };
        spans.end(all, 0, "eval.finish", "eval");
        figures
    }
}

impl mbw_frame::Codec for EvalFigureSet {
    fn encode(&self, enc: &mut mbw_frame::Enc) {
        self.fig17.encode(enc);
        self.fig20.encode(enc);
        self.fig21.encode(enc);
        self.fig22.encode(enc);
        self.fig23_25.encode(enc);
        self.ablations.encode(enc);
        self.mmwave.encode(enc);
        self.workload.encode(enc);
        enc.put_u64(self.cost_seed);
    }

    fn decode(dec: &mut mbw_frame::Dec<'_>) -> Result<Self, mbw_frame::CodecError> {
        use mbw_frame::Codec;
        Ok(Self {
            fig17: Codec::decode(dec)?,
            fig20: Codec::decode(dec)?,
            fig21: Codec::decode(dec)?,
            fig22: Codec::decode(dec)?,
            fig23_25: Codec::decode(dec)?,
            ablations: Codec::decode(dec)?,
            mmwave: Codec::decode(dec)?,
            workload: Codec::decode(dec)?,
            cost_seed: dec.u64()?,
        })
    }
}

impl<'a> FigureAccumulator<TrialView<'a>> for EvalFigureSet {
    type Output = EvalFigures;

    fn observe(&mut self, r: &TrialView<'a>) {
        self.fig17.observe(r);
        self.fig20.observe(r);
        self.fig21.observe(r);
        self.fig22.observe(r);
        self.fig23_25.observe(r);
        self.ablations.observe(r);
        self.mmwave.observe(r);
        self.workload.observe(r);
    }

    fn merge(&mut self, other: Self) {
        self.fig17.merge(other.fig17);
        self.fig20.merge(other.fig20);
        self.fig21.merge(other.fig21);
        self.fig22.merge(other.fig22);
        self.fig23_25.merge(other.fig23_25);
        self.ablations.merge(other.ablations);
        self.mmwave.merge(other.mmwave);
        self.workload.merge(other.workload);
    }

    fn finish(self) -> Self::Output {
        self.finish_with(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_core::run_campaign;

    #[test]
    fn union_plan_is_smaller_than_the_sum_of_its_parts() {
        let counts = EvalCounts::uniform(8);
        let all = plan_for(&EVAL_SWEEP_IDS, &counts, 1);
        let separate: usize = EVAL_SWEEP_IDS
            .iter()
            .map(|&id| plan_for(&[id], &counts, 1).len())
            .sum();
        assert!(
            all.len() < separate,
            "no dedup: union {} vs sum {separate}",
            all.len()
        );
        // Figs 20–22 + cost share pairs; three tables share PaperDefault.
        assert_eq!(
            plan_for(&["fig20", "fig21", "fig22", "cost"], &counts, 1).len(),
            plan_for(&["fig20"], &counts, 1).len()
        );
    }

    #[test]
    fn fused_pass_serves_every_sweep_id() {
        let counts = EvalCounts::uniform(6);
        let plan = plan_for(&EVAL_SWEEP_IDS, &counts, 42);
        let pool = run_campaign(&plan, 2);
        let figs = reduce(EvalFigureSet::new(0xC0), &pool);
        for id in EVAL_SWEEP_IDS {
            let text = figs
                .render(id)
                .expect("known id")
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(!text.is_empty(), "{id}");
        }
        assert!(figs.render("fig04").is_none());
    }

    #[test]
    fn eval_set_codec_roundtrips_mid_pool_state() {
        use mbw_frame::Codec;
        let counts = EvalCounts::uniform(4);
        let plan = plan_for(&EVAL_SWEEP_IDS, &counts, 9);
        let pool = run_campaign(&plan, 1);
        let cut = pool.iter().count() / 2;
        let mut acc = EvalFigureSet::new(0xC0);
        // Observe only a prefix of the pool so the snapshot captures
        // genuinely partial state, then roundtrip it through the wire
        // format. Merge is observe-concatenation, so the split must be
        // prefix/suffix, not interleaved.
        for view in pool.iter().take(cut) {
            acc.observe(&view);
        }
        let bytes = acc.to_bytes();
        let back = EvalFigureSet::from_bytes(&bytes).expect("decodes");
        assert_eq!(bytes, back.to_bytes());
        // And the decoded prefix merges with the suffix to the full run.
        let mut rest = EvalFigureSet::new(0xC0);
        for view in pool.iter().skip(cut) {
            rest.observe(&view);
        }
        let mut merged = back;
        merged.merge(rest);
        let mut whole = EvalFigureSet::new(0xC0);
        for view in pool.iter() {
            whole.observe(&view);
        }
        for id in EVAL_SWEEP_IDS {
            assert_eq!(
                merged.clone().finish().render(id),
                whole.clone().finish().render(id),
                "{id}"
            );
        }
    }

    #[test]
    fn parallel_eval_finish_matches_serial() {
        let counts = EvalCounts::uniform(6);
        let plan = plan_for(&EVAL_SWEEP_IDS, &counts, 42);
        let pool = run_campaign(&plan, 2);
        let mut acc = EvalFigureSet::new(0xC0);
        for view in pool.iter() {
            acc.observe(&view);
        }
        let serial = acc.clone().finish_with(1);
        for threads in [2usize, 8] {
            let multi = acc.clone().finish_with(threads);
            for id in EVAL_SWEEP_IDS {
                assert_eq!(
                    serial.render(id),
                    multi.render(id),
                    "{id} differs at {threads} finish threads"
                );
            }
        }
    }

    #[test]
    fn missing_series_yield_typed_errors_not_panics() {
        let counts = EvalCounts::uniform(4);
        let plan = plan_for(&["fig20"], &counts, 7);
        let pool = run_campaign(&plan, 1);
        let figs = reduce(EvalFigureSet::new(0xC0), &pool);
        assert!(figs.render("fig20").expect("known id").is_ok());
        assert_eq!(figs.render("fig17"), Some(Err(EmptyCampaign)));
        assert_eq!(figs.render("mmwave"), Some(Err(EmptyCampaign)));
    }
}
