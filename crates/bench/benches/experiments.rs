//! One Criterion benchmark per paper table and figure.
//!
//! Each benchmark regenerates its experiment end-to-end at a CI-sized
//! scale (the `figures` binary produces the full-size reports). The
//! point of benching the regeneration is twofold: it keeps every
//! experiment exercised under `cargo bench --workspace`, and it tracks
//! the cost of the pipelines themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use mbw_analysis::{cellular, overview, pdfs, tables, wifi, Render};
use mbw_bench::{ablation, bts_eval, deploy_eval, fig17, measurement};
use std::hint::black_box;
use std::sync::OnceLock;

/// Shared small populations so dataset generation cost isn't re-paid in
/// every measurement benchmark's iteration loop.
fn pops() -> &'static measurement::Populations {
    static POPS: OnceLock<measurement::Populations> = OnceLock::new();
    POPS.get_or_init(|| measurement::populations(25_000, 0xBE11C))
}

macro_rules! measurement_bench {
    ($fn_name:ident, $id:literal, $body:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let p = pops();
            let mut group = c.benchmark_group("tables_and_figures");
            group.sample_size(10);
            group.bench_function($id, |b| b.iter(|| black_box($body(p))));
            group.finish();
        }
    };
}

measurement_bench!(bench_table1, "table1", |_p| tables::Table1.render());
measurement_bench!(bench_table2, "table2", |_p| tables::Table2.render());
measurement_bench!(bench_fig01, "fig01", |p: &measurement::Populations| {
    overview::fig01(&p.y2020, &p.y2021)
});
measurement_bench!(bench_fig02, "fig02", |p: &measurement::Populations| {
    overview::fig02(&p.y2021)
});
measurement_bench!(bench_fig03, "fig03", |p: &measurement::Populations| {
    overview::fig03(&p.y2021)
});
measurement_bench!(bench_fig04, "fig04", |p: &measurement::Populations| {
    cellular::fig04(&p.y2021)
});
measurement_bench!(bench_fig05, "fig05", |p: &measurement::Populations| {
    cellular::fig05_06(&p.y2021)
});
measurement_bench!(bench_fig06, "fig06", |p: &measurement::Populations| {
    cellular::fig05_06(&p.y2021)
});
measurement_bench!(bench_fig07, "fig07", |p: &measurement::Populations| {
    cellular::fig07(&p.y2021)
});
measurement_bench!(bench_fig08, "fig08", |p: &measurement::Populations| {
    cellular::fig08_09(&p.y2021)
});
measurement_bench!(bench_fig09, "fig09", |p: &measurement::Populations| {
    cellular::fig08_09(&p.y2021)
});
measurement_bench!(bench_fig10, "fig10", |p: &measurement::Populations| {
    cellular::fig10(&p.y2021)
});
measurement_bench!(bench_fig11, "fig11", |p: &measurement::Populations| {
    cellular::fig11_12(&p.y2021)
});
measurement_bench!(bench_fig12, "fig12", |p: &measurement::Populations| {
    cellular::fig11_12(&p.y2021)
});
measurement_bench!(bench_fig13, "fig13", |p: &measurement::Populations| {
    wifi::fig13(&p.y2021)
});
measurement_bench!(bench_fig14, "fig14", |p: &measurement::Populations| {
    wifi::fig14(&p.y2021)
});
measurement_bench!(bench_fig15, "fig15", |p: &measurement::Populations| {
    wifi::fig15(&p.y2021)
});
measurement_bench!(bench_fig16, "fig16", |p: &measurement::Populations| {
    pdfs::fig16(&p.y2021)
});
measurement_bench!(bench_fig18, "fig18", |p: &measurement::Populations| {
    pdfs::fig18(&p.y2021)
});
measurement_bench!(bench_fig19, "fig19", |p: &measurement::Populations| {
    pdfs::fig19(&p.y2021)
});

fn bench_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("fig17", |b| b.iter(|| black_box(fig17::fig17(2, 0x17))));
    group.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("fig20", |b| b.iter(|| black_box(bts_eval::fig20(5, 0x20))));
    group.finish();
}

fn bench_fig21(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("fig21", |b| b.iter(|| black_box(bts_eval::fig21(3, 0x21))));
    group.finish();
}

fn bench_fig22(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("fig22", |b| b.iter(|| black_box(bts_eval::fig22(3, 0x22))));
    group.finish();
}

fn bench_fig23_25(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    for id in ["fig23", "fig24", "fig25"] {
        group.bench_function(id, |b| b.iter(|| black_box(bts_eval::fig23_25(2, 0x23))));
    }
    group.finish();
}

fn bench_fig26(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("fig26", |b| {
        b.iter(|| black_box(deploy_eval::fig26(2, 0x26)))
    });
    group.finish();
}

fn bench_cost_and_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);
    group.bench_function("cost", |b| {
        b.iter(|| black_box(deploy_eval::cost_report(0xC0)))
    });
    group.bench_function("ablation_ilp", |b| {
        b.iter(|| black_box(ablation::ablation_ilp(0xAB4)))
    });
    group.bench_function("ablation_init", |b| {
        b.iter(|| black_box(ablation::ablation_init(4, 0xAB1)))
    });
    group.finish();
}

criterion_group! {
    name = experiments;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets =
    bench_table1,
    bench_table2,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_fig06,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_fig19,
    bench_fig20,
    bench_fig21,
    bench_fig22,
    bench_fig23_25,
    bench_fig26,
    bench_cost_and_ablation,
}
criterion_main!(experiments);
