//! Measurement-pipeline throughput at paper scale: legacy per-figure,
//! fused materialize-then-sweep, and the streaming fused engine.
//!
//! Times five ways of producing every measurement figure over the two
//! yearly populations (1M records each by default — override with
//! `ANALYSIS_SWEEP_RECORDS`):
//!
//! - `legacy_1t` — the one-pass-per-figure functions over materialised
//!   populations, each distinct computation run once (how the pipeline
//!   worked before the sweep);
//! - `fused_1t` / `fused_nt` — the fused single-pass sweep over
//!   materialised populations, one worker vs all available cores
//!   (analysis only, comparable to the legacy number);
//! - `streaming_1t` / `streaming_nt` — the streaming fused
//!   generate→analyze engine (`mbw_analysis::stream`): end-to-end from
//!   nothing to every figure, populations never materialised, with a
//!   per-stage breakdown (generate / observe / merge / finish).
//!
//! Generation is also timed on its own so the materialize-then-sweep
//! end-to-end number (`generate_nt + fused_nt`) is comparable to the
//! streaming end-to-end numbers.
//!
//! Each variant runs `ANALYSIS_SWEEP_ITERS` times (default 3) and the
//! best wall time is kept (standard for throughput measurement). Every
//! measurement records the worker threads it actually used;
//! `threads_detected` is the machine's available parallelism. The
//! streaming stage breakdown reports the finish stage twice — wall
//! time (`finish_wall_seconds`) and summed per-job CPU time
//! (`finish_cpu_seconds`) — so the finish pool's parallel speedup is
//! visible. On a single-core runner the `_nt` variants would be
//! byte-for-byte reruns of `_1t`, so they are not re-timed: they carry
//! the `_1t` numbers plus a `degenerate_duplicate_of` marker, and the
//! nt-vs-1t speedup ratios are `null` instead of scheduler noise below
//! 1.0. The result is written to `BENCH_analysis.json` at the repo
//! root and printed to stdout.

use mbw_analysis::{robustness, Render, StreamTimings};
use mbw_bench::distributed::{self, DistConfig};
use mbw_bench::measurement::{self, Populations};
use mbw_core::EvalCounts;
use mbw_dataset::ShardPlan;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Ids covering every *distinct* legacy computation exactly once
/// (fig05/fig06, fig08/fig09, fig11/fig12 share a pass, so one id each).
const DISTINCT_LEGACY_IDS: [&str; 20] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig07", "fig08", "fig10",
    "fig11", "fig13", "fig14", "fig15", "fig16", "fig18", "fig19", "general", "devices", "summary",
];

const SEED: u64 = 0xBE7C;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Which machine class produced these numbers (`MBW_RUNNER_CLASS`,
/// e.g. `ci-shared`, `bare-metal`). Throughput is not comparable
/// across runner classes, so the report carries its provenance.
fn runner_class() -> String {
    std::env::var("MBW_RUNNER_CLASS")
        .unwrap_or_else(|_| "unclassified-dev".into())
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
}

/// Best-of-`iters` wall time of `f`.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

/// Best-of-`iters` streaming run (by end-to-end wall time), keeping the
/// winning run's stage breakdown.
fn stream_best(iters: usize, records: usize, plan: ShardPlan) -> StreamTimings {
    (0..iters.max(1))
        .map(|_| {
            let (figs, timings) = measurement::stream_measurement_figures(records, SEED, plan);
            black_box(figs);
            timings
        })
        .min_by_key(|t| t.wall)
        .expect("at least one iteration")
}

fn legacy_all(pops: &Populations) -> usize {
    let mut rendered = 0;
    for id in DISTINCT_LEGACY_IDS {
        rendered += measurement::render_measurement(id, pops)
            .expect("known id")
            .len();
    }
    // The legacy path has no sweep renderer for the outcome tally; call
    // the figure function directly so both paths cover the same set.
    rendered + robustness::outcome_rates(&pops.y2021).render().len()
}

/// `BENCH_analysis.json` lives at the repo root no matter where the
/// bench is invoked from.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analysis.json")
}

/// The `degenerate_duplicate_of` JSON fragment for an `_nt` entry that
/// was not re-timed because only one core is available.
fn dup_marker(dup: Option<&str>) -> String {
    dup.map(|of| format!(", \"degenerate_duplicate_of\": \"{of}\""))
        .unwrap_or_default()
}

fn measurement_json(
    name: &str,
    threads: usize,
    analyzed: usize,
    wall: Duration,
    dup: Option<&str>,
) -> String {
    format!(
        "    \"{name}\": {{ \"threads\": {threads}, \"seconds\": {}, \
         \"records_per_second\": {}{} }}",
        wall.as_secs_f64(),
        analyzed as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        dup_marker(dup)
    )
}

fn streaming_json(name: &str, threads: usize, t: &StreamTimings, dup: Option<&str>) -> String {
    format!(
        "    \"{name}\": {{ \"threads\": {threads}, \"seconds\": {}, \"records_per_second\": {}, \
         \"stages\": {{ \"generate_cpu_seconds\": {}, \"observe_cpu_seconds\": {}, \
         \"merge_seconds\": {}, \"finish_wall_seconds\": {}, \"finish_cpu_seconds\": {} }}{} }}",
        t.wall.as_secs_f64(),
        t.records_per_second(),
        t.generate.as_secs_f64(),
        t.observe.as_secs_f64(),
        t.merge.as_secs_f64(),
        t.finish.as_secs_f64(),
        t.finish_cpu.as_secs_f64(),
        dup_marker(dup)
    )
}

fn main() {
    let records = env_usize("ANALYSIS_SWEEP_RECORDS", 1_000_000);
    let iters = env_usize("ANALYSIS_SWEEP_ITERS", 3);
    let threads = env_usize(
        "ANALYSIS_SWEEP_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .max(1);
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let plan_nt = ShardPlan::threads(threads);
    let analyzed = 2 * records;
    // One core (or an explicit 1-thread override) makes every `_nt`
    // variant a byte-for-byte rerun of its `_1t` sibling: don't re-time
    // it, mark it as a degenerate duplicate, and report the nt-vs-1t
    // speedups as null rather than scheduler noise below 1.0.
    let degenerate = threads == 1;

    eprintln!("timing sharded generation, {threads} workers ({iters} iters)...");
    let generate_nt = time_best(iters, || {
        measurement::populations_with(records, SEED, plan_nt)
    });
    let pops = measurement::populations_with(records, SEED, plan_nt);

    eprintln!("timing legacy per-figure pipeline...");
    let legacy = time_best(iters, || legacy_all(&pops));
    eprintln!("timing fused sweep, 1 worker...");
    let fused_1t = time_best(iters, || measurement::measurement_figures(&pops, 1));
    let fused_nt = if degenerate {
        eprintln!("fused sweep, {threads} workers: degenerate duplicate of fused_1t");
        fused_1t
    } else {
        eprintln!("timing fused sweep, {threads} workers...");
        time_best(iters, || measurement::measurement_figures(&pops, threads))
    };
    drop(pops);

    eprintln!("timing streaming engine, 1 worker...");
    let stream_1t = stream_best(iters, records, ShardPlan::threads(1));
    let stream_nt = if degenerate {
        eprintln!("streaming engine, {threads} workers: degenerate duplicate of streaming_1t");
        stream_1t
    } else {
        eprintln!("timing streaming engine, {threads} workers...");
        stream_best(iters, records, plan_nt)
    };

    // The distributed pipeline: a 4-way shard split through the real
    // plan → execute → reduce path (snapshots on disk and all), with
    // the shards executed back to back in this one process. The
    // reported wall time is the slowest shard plus the reduce — what a
    // perfectly parallel 4-process fan-out would cost.
    eprintln!("timing distributed 4-way split + reduce...");
    let dist_dir = std::env::temp_dir().join(format!("mbw-bench-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dist_dir);
    let dist_cfg = DistConfig {
        profile: mbw_dataset::EcosystemProfile::paper_china(),
        records,
        counts: EvalCounts::quick(),
        shards: 4,
    };
    let dist_plans =
        distributed::write_plans(&dist_cfg, &dist_dir.join("plans")).expect("write shard plans");
    let dist_parts_dir = dist_dir.join("parts");
    for plan in &dist_plans {
        distributed::run_shard_file(plan, &dist_parts_dir, threads).expect("run shard");
    }
    let dist_parts = distributed::collect_parts(&dist_parts_dir).expect("collect parts");
    let dist = distributed::reduce_parts(&dist_parts, threads).expect("reduce parts");
    black_box(&dist.figures);
    let _ = std::fs::remove_dir_all(&dist_dir);
    let dist_snapshot_bytes: u64 = dist.parts.iter().map(|p| p.snapshot_bytes).sum();
    let dist_reduce_seconds = dist.merge_seconds + dist.finish_seconds;
    let dist_max_execute = dist
        .parts
        .iter()
        .map(|p| p.execute_seconds)
        .fold(0.0, f64::max);

    let materialize_nt = generate_nt + fused_nt;
    let secs = |d: Duration| d.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"records_per_year\": {records},");
    let _ = writeln!(json, "  \"records_analyzed\": {analyzed},");
    let _ = writeln!(json, "  \"threads_detected\": {detected},");
    let _ = writeln!(json, "  \"degenerate_parallelism\": {degenerate},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"runner_class\": \"{}\",", runner_class());
    let _ = writeln!(json, "  \"wall_clock_source\": \"std::time::Instant\",");
    let _ = writeln!(
        json,
        "  \"profile\": \"{}\",",
        mbw_dataset::EcosystemProfile::paper_china().name
    );
    let _ = writeln!(json, "  \"measurements\": {{");
    let dup = |of: &'static str| degenerate.then_some(of);
    let _ = writeln!(
        json,
        "{},",
        measurement_json("generate_nt", threads, analyzed, generate_nt, None)
    );
    let _ = writeln!(
        json,
        "{},",
        measurement_json("legacy_1t", 1, analyzed, legacy, None)
    );
    let _ = writeln!(
        json,
        "{},",
        measurement_json("fused_1t", 1, analyzed, fused_1t, None)
    );
    let _ = writeln!(
        json,
        "{},",
        measurement_json("fused_nt", threads, analyzed, fused_nt, dup("fused_1t"))
    );
    let _ = writeln!(
        json,
        "{},",
        measurement_json(
            "materialize_then_sweep_nt",
            threads,
            analyzed,
            materialize_nt,
            None
        )
    );
    let _ = writeln!(
        json,
        "{},",
        streaming_json("streaming_1t", 1, &stream_1t, None)
    );
    let _ = writeln!(
        json,
        "{}",
        streaming_json("streaming_nt", threads, &stream_nt, dup("streaming_1t"))
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"distributed\": {{");
    let _ = writeln!(json, "    \"shards\": {},", dist_cfg.shards);
    let _ = writeln!(json, "    \"threads_per_shard\": {threads},");
    let _ = writeln!(json, "    \"eval_counts\": \"quick\",");
    let _ = writeln!(
        json,
        "    \"wall_seconds\": {},",
        dist_max_execute + dist_reduce_seconds
    );
    let per_shard: Vec<String> = dist
        .parts
        .iter()
        .map(|p| p.execute_seconds.to_string())
        .collect();
    let _ = writeln!(
        json,
        "    \"per_shard_execute_seconds\": [{}],",
        per_shard.join(", ")
    );
    let _ = writeln!(json, "    \"reduce_seconds\": {dist_reduce_seconds},");
    let _ = writeln!(json, "    \"snapshot_bytes\": {dist_snapshot_bytes},");
    let _ = writeln!(json, "    \"runner_class\": \"{}\",", runner_class());
    let _ = writeln!(json, "    \"wall_clock_source\": \"std::time::Instant\",");
    let _ = writeln!(json, "    \"profile\": \"{}\"", dist_cfg.profile.name);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_fused_1t_vs_legacy\": {},",
        secs(legacy) / secs(fused_1t)
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_nt_vs_legacy\": {},",
        secs(legacy) / secs(fused_nt)
    );
    let _ = writeln!(
        json,
        "  \"speedup_streaming_nt_vs_materialize_nt\": {},",
        secs(materialize_nt) / secs(stream_nt.wall)
    );
    // nt-vs-1t parallel speedups are undefined on one core: the nt
    // runs are duplicates, so a ratio would be pure scheduler noise.
    let nt_vs_1t = |num: f64, den: f64| {
        if degenerate {
            "null".to_string()
        } else {
            (num / den).to_string()
        }
    };
    let _ = writeln!(
        json,
        "  \"speedup_streaming_nt_vs_streaming_1t\": {},",
        nt_vs_1t(secs(stream_1t.wall), secs(stream_nt.wall))
    );
    let _ = writeln!(
        json,
        "  \"speedup_finish_nt_vs_finish_1t\": {}",
        nt_vs_1t(secs(stream_1t.finish), secs(stream_nt.finish))
    );
    json.push_str("}\n");

    let path = output_path();
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("{json}");
}
