//! Fused-sweep vs legacy per-figure analysis throughput at paper scale.
//!
//! Generates the two yearly populations (1M records each by default —
//! override with `ANALYSIS_SWEEP_RECORDS`), then times three ways of
//! producing every measurement figure:
//!
//! - `legacy` — the one-pass-per-figure functions, each distinct
//!   computation run once (how the pipeline worked before the sweep);
//! - `fused_1t` — the fused single-pass sweep, one worker;
//! - `fused_nt` — the fused sweep sharded across all available cores.
//!
//! Each variant runs `ANALYSIS_SWEEP_ITERS` times (default 3) and the
//! best wall time is kept (standard for throughput measurement). The
//! result — times, records/s, and speedups — is written to
//! `BENCH_analysis.json` and printed to stdout.

use mbw_analysis::{robustness, Render};
use mbw_bench::measurement::{self, Populations};
use mbw_dataset::ShardPlan;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Ids covering every *distinct* legacy computation exactly once
/// (fig05/fig06, fig08/fig09, fig11/fig12 share a pass, so one id each).
const DISTINCT_LEGACY_IDS: [&str; 20] = [
    "table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "fig07", "fig08", "fig10",
    "fig11", "fig13", "fig14", "fig15", "fig16", "fig18", "fig19", "general", "devices", "summary",
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`iters` wall time of `f`.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn legacy_all(pops: &Populations) -> usize {
    let mut rendered = 0;
    for id in DISTINCT_LEGACY_IDS {
        rendered += measurement::render_measurement(id, pops)
            .expect("known id")
            .len();
    }
    // The legacy path has no sweep renderer for the outcome tally; call
    // the figure function directly so both paths cover the same set.
    rendered + robustness::outcome_rates(&pops.y2021).render().len()
}

fn main() {
    let records = env_usize("ANALYSIS_SWEEP_RECORDS", 1_000_000);
    let iters = env_usize("ANALYSIS_SWEEP_ITERS", 3);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("generating {records} records per year ({threads} threads)...");
    let pops = measurement::populations_with(records, 0xBE7C, ShardPlan::threads(threads));
    let analyzed = pops.y2020.len() + pops.y2021.len();

    eprintln!("timing legacy per-figure pipeline ({iters} iters)...");
    let legacy = time_best(iters, || legacy_all(&pops));
    eprintln!("timing fused sweep, 1 worker...");
    let fused_1t = time_best(iters, || measurement::measurement_figures(&pops, 1));
    eprintln!("timing fused sweep, {threads} workers...");
    let fused_nt = time_best(iters, || measurement::measurement_figures(&pops, threads));

    let rps = |d: Duration| analyzed as f64 / d.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"records_per_year\": {records},");
    let _ = writeln!(json, "  \"records_analyzed\": {analyzed},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"legacy_seconds\": {},", legacy.as_secs_f64());
    let _ = writeln!(json, "  \"fused_1t_seconds\": {},", fused_1t.as_secs_f64());
    let _ = writeln!(json, "  \"fused_nt_seconds\": {},", fused_nt.as_secs_f64());
    let _ = writeln!(json, "  \"legacy_records_per_second\": {},", rps(legacy));
    let _ = writeln!(
        json,
        "  \"fused_1t_records_per_second\": {},",
        rps(fused_1t)
    );
    let _ = writeln!(
        json,
        "  \"fused_nt_records_per_second\": {},",
        rps(fused_nt)
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_1t_vs_legacy\": {},",
        legacy.as_secs_f64() / fused_1t.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_nt_vs_legacy\": {}",
        legacy.as_secs_f64() / fused_nt.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    json.push_str("}\n");

    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    println!("{json}");
}
