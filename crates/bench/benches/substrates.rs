//! Micro-benchmarks for the substrate layers: how expensive the pieces
//! every experiment leans on are (GMM fitting/sampling, estimators,
//! simulator rounds, dataset generation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mbw_congestion::{CcAlgorithm, MultiFlowConfig, MultiFlowSim};
use mbw_core::estimator::{
    BandwidthEstimator, ConvergenceEstimator, CrucialIntervalEstimator, GroupedTrimmedMean,
};
use mbw_dataset::{DatasetConfig, Generator, Year};
use mbw_netsim::{Link, LinkConfig, PathConfig, PathModel, SimTime};
use mbw_stats::{Gmm, GmmFitConfig, SeededRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_gmm(c: &mut Criterion) {
    let truth = Gmm::from_triples(&[(0.5, 100.0, 20.0), (0.3, 300.0, 30.0), (0.2, 500.0, 40.0)])
        .expect("valid");
    let mut rng = SeededRng::new(7);
    let data = truth.sample_n(&mut rng, 5_000);

    let mut group = c.benchmark_group("gmm");
    group.sample_size(10);
    group.bench_function("fit_k3_5000pts", |b| {
        b.iter(|| {
            Gmm::fit(
                black_box(&data),
                &GmmFitConfig {
                    components: 3,
                    ..Default::default()
                },
            )
            .expect("fits")
        })
    });
    group.bench_function("sample_10k", |b| {
        let mut rng = SeededRng::new(9);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += truth.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.bench_function("pdf_eval_10k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000 {
                acc += truth.pdf(i as f64 / 10.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let samples: Vec<f64> = (0..200)
        .map(|i| 100.0 + (i as f64 * 0.7).sin() * 10.0)
        .collect();
    let mut group = c.benchmark_group("estimators");
    group.sample_size(20);
    group.bench_function("grouped_trimmed_200", |b| {
        b.iter_batched(
            GroupedTrimmedMean::bts_app,
            |mut est| {
                for &s in &samples {
                    black_box(est.push(s));
                }
                est.finalize()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("convergence_200", |b| {
        b.iter_batched(
            ConvergenceEstimator::swiftest,
            |mut est| {
                for &s in &samples {
                    black_box(est.push(s));
                }
                est.finalize()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("crucial_interval_200", |b| {
        b.iter_batched(
            CrucialIntervalEstimator::fastbts,
            |mut est| {
                for &s in &samples {
                    black_box(est.push(s));
                }
                est.finalize()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(20);
    group.bench_function("link_send_10k_packets", |b| {
        b.iter_batched(
            || Link::new(LinkConfig::default()),
            |mut link| {
                for i in 0..10_000u64 {
                    black_box(link.send(SimTime::from_micros(i), 1500));
                }
                link.stats()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("multiflow_10s_cubic", |b| {
        b.iter(|| {
            let path = PathModel::new(PathConfig::constant(100e6, Duration::from_millis(40)));
            let mut sim = MultiFlowSim::new(path, MultiFlowConfig::default());
            sim.add_flow(CcAlgorithm::Cubic);
            sim.run_until(Duration::from_secs(10));
            black_box(sim.totals())
        })
    });
    group.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("generate_10k_records", |b| {
        b.iter(|| {
            let mut generator = Generator::new(DatasetConfig {
                seed: 0xBE7,
                tests: 10_000,
                year: Year::Y2021,
                ..Default::default()
            });
            black_box(generator.generate().len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_gmm, bench_estimators, bench_netsim, bench_dataset
}
criterion_main!(benches);
