//! Parallel campaign vs serial execution of the Swiftest evaluation.
//!
//! Plans the full evaluation campaign (every id the fused sweep serves
//! — the shared pairs, test groups, ramp cells, ablation variants, and
//! mmWave links; `EVAL_CAMPAIGN_TRIALS` trials per series, default 40),
//! then times three ways of producing the figures:
//!
//! - `legacy` — one run per figure, each planning and executing its own
//!   trials (how the pipeline worked before the campaign, including the
//!   duplicated back-to-back pairs across Figs 20–22);
//! - `campaign_1t` — the fused plan → execute → reduce pipeline, one
//!   worker;
//! - `campaign_nt` — the same pipeline with the executor sharded across
//!   all available cores.
//!
//! Each variant runs `EVAL_CAMPAIGN_ITERS` times (default 3) and the
//! best wall time is kept. The result — times, trials/s, and speedups —
//! is written to `BENCH_swiftest.json` and printed to stdout.

use mbw_bench::eval_sweep::{plan_for, reduce, EvalFigureSet, EVAL_SWEEP_IDS};
use mbw_bench::{ablation, bts_eval, fig17};
use mbw_core::{run_campaign, EvalCounts};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SEED: u64 = 0xBE57;
const COST_SEED: u64 = 0xC0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`iters` wall time of `f`.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

/// One run per figure, each executing its own trials (serially, as the
/// per-figure entry points always did).
fn legacy_all(c: &EvalCounts) -> usize {
    let mut rendered = 0;
    rendered += fig17::fig17(c.ramp_paths, SEED).expect("ok").render().len();
    rendered += bts_eval::fig20(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig21(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig22(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig23_25(c.groups, SEED)
        .expect("ok")
        .render()
        .len();
    for table in [
        ablation::ablation_init(c.ablation, SEED),
        ablation::ablation_converge(c.ablation, SEED),
        ablation::ablation_escalate(c.ablation, SEED),
    ] {
        rendered += ablation::render_variants("t", &table.expect("ok")).len();
    }
    rendered += bts_eval::mmwave_report(c.mmwave, SEED)
        .expect("ok")
        .render()
        .len();
    rendered
}

fn campaign_all(c: &EvalCounts, threads: usize) -> usize {
    let plan = plan_for(&EVAL_SWEEP_IDS, c, SEED);
    let pool = run_campaign(&plan, threads);
    let figs = reduce(EvalFigureSet::new(COST_SEED), &pool);
    EVAL_SWEEP_IDS
        .iter()
        .map(|&id| figs.render(id).expect("known id").expect("planned").len())
        .sum()
}

fn main() {
    let trials = env_usize("EVAL_CAMPAIGN_TRIALS", 40);
    let iters = env_usize("EVAL_CAMPAIGN_ITERS", 3);
    let threads = env_usize(
        "EVAL_CAMPAIGN_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .max(1);

    let counts = EvalCounts::uniform(trials);
    let plan = plan_for(&EVAL_SWEEP_IDS, &counts, SEED);
    let planned = plan.len();
    eprintln!("campaign plan: {planned} deduplicated trials ({trials} per series)");

    eprintln!("timing legacy per-figure pipeline ({iters} iters)...");
    let legacy = time_best(iters, || legacy_all(&counts));
    eprintln!("timing fused campaign, 1 worker...");
    let campaign_1t = time_best(iters, || campaign_all(&counts, 1));
    eprintln!("timing fused campaign, {threads} workers...");
    let campaign_nt = time_best(iters, || campaign_all(&counts, threads));

    let tps = |d: Duration| planned as f64 / d.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials_per_series\": {trials},");
    let _ = writeln!(json, "  \"planned_trials\": {planned},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"legacy_seconds\": {},", legacy.as_secs_f64());
    let _ = writeln!(
        json,
        "  \"campaign_1t_seconds\": {},",
        campaign_1t.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"campaign_nt_seconds\": {},",
        campaign_nt.as_secs_f64()
    );
    let _ = writeln!(
        json,
        "  \"campaign_1t_trials_per_second\": {},",
        tps(campaign_1t)
    );
    let _ = writeln!(
        json,
        "  \"campaign_nt_trials_per_second\": {},",
        tps(campaign_nt)
    );
    let _ = writeln!(
        json,
        "  \"speedup_campaign_1t_vs_legacy\": {},",
        legacy.as_secs_f64() / campaign_1t.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        json,
        "  \"speedup_campaign_nt_vs_legacy\": {},",
        legacy.as_secs_f64() / campaign_nt.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(
        json,
        "  \"speedup_campaign_nt_vs_1t\": {}",
        campaign_1t.as_secs_f64() / campaign_nt.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    json.push_str("}\n");

    std::fs::write("BENCH_swiftest.json", &json).expect("write BENCH_swiftest.json");
    println!("{json}");
}
