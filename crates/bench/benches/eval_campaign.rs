//! Parallel campaign vs serial execution of the Swiftest evaluation.
//!
//! Plans the full evaluation campaign (every id the fused sweep serves
//! — the shared pairs, test groups, ramp cells, ablation variants, and
//! mmWave links; `EVAL_CAMPAIGN_TRIALS` trials per series, default 40),
//! then times three ways of producing the figures:
//!
//! - `legacy_1t` — one run per figure, each planning and executing its
//!   own trials (how the pipeline worked before the campaign, including
//!   the duplicated back-to-back pairs across Figs 20–22);
//! - `campaign_1t` — the fused plan → execute → reduce pipeline, one
//!   worker;
//! - `campaign_nt` — the same pipeline with the executor sharded across
//!   all available cores.
//!
//! The campaign measurements carry a per-stage breakdown (plan /
//! execute / reduce) from the winning iteration, and every measurement
//! records the worker threads it actually used; `threads_detected` is
//! the machine's available parallelism. Each variant runs
//! `EVAL_CAMPAIGN_ITERS` times (default 3) and the best wall time is
//! kept. The result is written to `BENCH_swiftest.json` at the repo
//! root and printed to stdout.

use mbw_bench::eval_sweep::{plan_for, reduce, EvalFigureSet, EVAL_SWEEP_IDS};
use mbw_bench::{ablation, bts_eval, fig17};
use mbw_core::{run_campaign, EvalCounts};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0xBE57;
const COST_SEED: u64 = 0xC0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Which machine class produced these numbers (`MBW_RUNNER_CLASS`,
/// e.g. `ci-shared`, `bare-metal`). Throughput is not comparable
/// across runner classes, so the report carries its provenance.
fn runner_class() -> String {
    std::env::var("MBW_RUNNER_CLASS")
        .unwrap_or_else(|_| "unclassified-dev".into())
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
}

/// Best-of-`iters` wall time of `f`.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

/// One campaign run's stage breakdown (wall time per stage).
#[derive(Clone, Copy)]
struct CampaignTimings {
    plan: Duration,
    execute: Duration,
    reduce: Duration,
    wall: Duration,
}

/// One run per figure, each executing its own trials (serially, as the
/// per-figure entry points always did).
fn legacy_all(c: &EvalCounts) -> usize {
    let mut rendered = 0;
    rendered += fig17::fig17(c.ramp_paths, SEED).expect("ok").render().len();
    rendered += bts_eval::fig20(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig21(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig22(c.tests, SEED).expect("ok").render().len();
    rendered += bts_eval::fig23_25(c.groups, SEED)
        .expect("ok")
        .render()
        .len();
    for table in [
        ablation::ablation_init(c.ablation, SEED),
        ablation::ablation_converge(c.ablation, SEED),
        ablation::ablation_escalate(c.ablation, SEED),
    ] {
        rendered += ablation::render_variants("t", &table.expect("ok")).len();
    }
    rendered += bts_eval::mmwave_report(c.mmwave, SEED)
        .expect("ok")
        .render()
        .len();
    rendered
}

/// One fused plan → execute → reduce run, stage-timed.
fn campaign_all(c: &EvalCounts, threads: usize) -> CampaignTimings {
    let t0 = Instant::now();
    let plan = plan_for(&EVAL_SWEEP_IDS, c, SEED);
    let plan_elapsed = t0.elapsed();
    let t1 = Instant::now();
    let pool = run_campaign(&plan, threads);
    let execute = t1.elapsed();
    let t2 = Instant::now();
    let figs = reduce(EvalFigureSet::new(COST_SEED), &pool);
    let reduce_elapsed = t2.elapsed();
    let rendered: usize = EVAL_SWEEP_IDS
        .iter()
        .map(|&id| figs.render(id).expect("known id").expect("planned").len())
        .sum();
    black_box(rendered);
    CampaignTimings {
        plan: plan_elapsed,
        execute,
        reduce: reduce_elapsed,
        wall: t0.elapsed(),
    }
}

/// Best-of-`iters` campaign run by whole-pipeline wall time, keeping
/// the winning run's stage breakdown.
fn campaign_best(iters: usize, c: &EvalCounts, threads: usize) -> CampaignTimings {
    (0..iters.max(1))
        .map(|_| campaign_all(c, threads))
        .min_by_key(|t| t.wall)
        .expect("at least one iteration")
}

/// `BENCH_swiftest.json` lives at the repo root no matter where the
/// bench is invoked from.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_swiftest.json")
}

fn campaign_json(name: &str, threads: usize, planned: usize, t: &CampaignTimings) -> String {
    format!(
        "    \"{name}\": {{ \"threads\": {threads}, \"seconds\": {}, \"trials_per_second\": {}, \
         \"stages\": {{ \"plan_seconds\": {}, \"execute_seconds\": {}, \"reduce_seconds\": {} }} }}",
        t.wall.as_secs_f64(),
        planned as f64 / t.wall.as_secs_f64().max(f64::MIN_POSITIVE),
        t.plan.as_secs_f64(),
        t.execute.as_secs_f64(),
        t.reduce.as_secs_f64()
    )
}

fn main() {
    let trials = env_usize("EVAL_CAMPAIGN_TRIALS", 40);
    let iters = env_usize("EVAL_CAMPAIGN_ITERS", 3);
    let threads = env_usize(
        "EVAL_CAMPAIGN_THREADS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .max(1);
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let counts = EvalCounts::uniform(trials);
    let plan = plan_for(&EVAL_SWEEP_IDS, &counts, SEED);
    let planned = plan.len();
    eprintln!("campaign plan: {planned} deduplicated trials ({trials} per series)");

    eprintln!("timing legacy per-figure pipeline ({iters} iters)...");
    let legacy = time_best(iters, || legacy_all(&counts));
    eprintln!("timing fused campaign, 1 worker...");
    let campaign_1t = campaign_best(iters, &counts, 1);
    eprintln!("timing fused campaign, {threads} workers...");
    let campaign_nt = campaign_best(iters, &counts, threads);

    let secs = |d: Duration| d.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials_per_series\": {trials},");
    let _ = writeln!(json, "  \"planned_trials\": {planned},");
    let _ = writeln!(json, "  \"threads_detected\": {detected},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"runner_class\": \"{}\",", runner_class());
    let _ = writeln!(json, "  \"wall_clock_source\": \"std::time::Instant\",");
    let _ = writeln!(json, "  \"profile\": \"{}\",", plan.profile().name);
    let _ = writeln!(json, "  \"measurements\": {{");
    let _ = writeln!(
        json,
        "    \"legacy_1t\": {{ \"threads\": 1, \"seconds\": {}, \"trials_per_second\": {} }},",
        legacy.as_secs_f64(),
        planned as f64 / secs(legacy)
    );
    let _ = writeln!(
        json,
        "{},",
        campaign_json("campaign_1t", 1, planned, &campaign_1t)
    );
    let _ = writeln!(
        json,
        "{}",
        campaign_json("campaign_nt", threads, planned, &campaign_nt)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_campaign_1t_vs_legacy\": {},",
        secs(legacy) / secs(campaign_1t.wall)
    );
    let _ = writeln!(
        json,
        "  \"speedup_campaign_nt_vs_legacy\": {},",
        secs(legacy) / secs(campaign_nt.wall)
    );
    let _ = writeln!(
        json,
        "  \"speedup_campaign_nt_vs_1t\": {}",
        secs(campaign_1t.wall) / secs(campaign_nt.wall)
    );
    json.push_str("}\n");

    let path = output_path();
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("{json}");
}
