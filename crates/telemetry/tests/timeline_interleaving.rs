//! Property tests: `ProbeTimeline` export determinism under
//! multi-threaded recording.
//!
//! Events recorded concurrently land on per-thread recorders in an
//! arbitrary interleaving; merging those recorders and canonicalizing
//! must serialise the *set* of events byte-identically no matter how
//! they were partitioned or in which order the recorders merged.

use mbw_telemetry::{ProbeTimeline, TimelineEvent};
use proptest::prelude::*;

/// An arbitrary timeline event.
fn arb_event() -> impl Strategy<Value = TimelineEvent> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|bytes| TimelineEvent::Chunk { bytes }),
        (0.0f64..2000.0).prop_map(|mbps| TimelineEvent::Sample { mbps }),
        (0.0f64..2000.0).prop_map(|mbps| TimelineEvent::RateChange { mbps }),
        "[a-z]{1,8}".prop_map(|name| TimelineEvent::Phase { name }),
        Just(TimelineEvent::Stall),
        (1u32..5).prop_map(|attempt| TimelineEvent::Failover { attempt }),
        (1u32..5).prop_map(|round| TimelineEvent::Retry { round }),
        (0.0f64..2000.0).prop_map(|estimate_mbps| TimelineEvent::Converged { estimate_mbps }),
    ]
}

/// A fixed event set: `(at_ns, event)` pairs.
fn arb_events() -> impl Strategy<Value = Vec<(u64, TimelineEvent)>> {
    prop::collection::vec(((0u64..1_000), arb_event()), 0..40)
}

/// The canonical serialisation of an event set: all events on one
/// recorder, canonicalized.
fn reference_json(events: &[(u64, TimelineEvent)]) -> String {
    let mut t = ProbeTimeline::new();
    for (at, e) in events {
        t.record(*at, e.clone());
    }
    t.canonicalize();
    t.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Partition a fixed event set across up to four simulated
    /// recording threads (arbitrary assignment, arbitrary merge
    /// order): the merged, canonicalized JSON is byte-identical to the
    /// single-recorder reference.
    #[test]
    fn interleaved_recording_exports_byte_stable_json(
        events in arb_events(),
        assignment in prop::collection::vec(0usize..4, 0..40),
        merge_order in Just(()).prop_flat_map(|_| any::<u64>()),
    ) {
        let reference = reference_json(&events);

        // Scatter events across four per-thread recorders.
        let mut threads: Vec<ProbeTimeline> = (0..4).map(|_| ProbeTimeline::new()).collect();
        for (i, (at, e)) in events.iter().enumerate() {
            let slot = assignment.get(i).copied().unwrap_or(i % 4);
            threads[slot].record(*at, e.clone());
        }

        // Merge in a seed-derived order.
        let mut order: Vec<usize> = (0..4).collect();
        let mut seed = merge_order | 1;
        for i in (1..4).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (seed >> 33) as usize % (i + 1));
        }
        let mut merged = ProbeTimeline::new();
        for idx in order {
            merged.merge_from(&threads[idx]);
        }
        merged.canonicalize();
        prop_assert_eq!(merged.to_json(), reference);
    }

    /// Canonicalization is idempotent and insertion-order independent
    /// on a single recorder.
    #[test]
    fn canonicalize_is_idempotent(events in arb_events()) {
        let mut t = ProbeTimeline::new();
        for (at, e) in &events {
            t.record(*at, e.clone());
        }
        t.canonicalize();
        let once = t.to_json();
        t.canonicalize();
        prop_assert_eq!(t.to_json(), once);
    }
}
