//! Causal span tracing: where the time *inside* a run goes.
//!
//! Counters and histograms say how much; spans say *which part*. A
//! [`Tracer`] collects [`SpanRecord`]s — named, timed intervals with
//! parent links and a trace id — from any number of threads and exports
//! them three ways:
//!
//! - [`export_chrome_json`]: Chrome trace-event JSON, loadable directly
//!   in [Perfetto](https://ui.perfetto.dev) (`figures --trace-out`,
//!   `swiftest {serve,measure,load} --trace-out`);
//! - [`self_profile`]: a text report — per-name aggregation, the top-k
//!   individual spans, and a slow-span log against [`SpanBudgets`];
//! - [`publish_spans`]: span-duration histograms and slow-span counters
//!   in the crate's [`Registry`](crate::Registry).
//!
//! # Recording model
//!
//! Recording is two-level. The shared [`Tracer`] owns a lock-free
//! collector (a Treiber stack of drained chunks — no locks, no
//! dependencies); each recording thread holds a [`LocalTracer`] whose
//! fixed-capacity ring buffer batches records and drains into the
//! collector when full or on drop. The hot path is therefore a clock
//! read plus a `Vec` push; the contended path is one CAS per
//! [`RING_CAPACITY`] spans.
//!
//! A disabled tracer ([`Tracer::disabled`]) records nothing and costs
//! one branch per span — instrumentation can stay unconditionally in
//! place on hot loops (per-EM-iteration spans in `mbw-stats`) without a
//! measurable tax.
//!
//! # Determinism
//!
//! Timestamps come from a caller-supplied [`Clock`]: wall time for real
//! profiles, [`ManualClock`](crate::ManualClock) for tests, where a
//! fixed event sequence exports byte-identical JSON. Export order is
//! canonical — `(tid, start, −duration, id)` — so a fixed set of
//! records renders identically no matter which thread drained first.
//!
//! # Cross-process traces
//!
//! Every record carries a `trace` id. The wire layer propagates the
//! client's trace id inside the HELLO handshake, and the server records
//! its admission/session/results-log spans under that id — exporting
//! both sides yields one joined session trace.

use crate::clock::Clock;
use crate::histogram::Histogram;
use crate::registry::Registry;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Spans a [`LocalTracer`] buffers before draining into the shared
/// collector.
pub const RING_CAPACITY: usize = 256;

/// Default cap on retained spans (records past it are counted, not
/// stored) — the same runaway-recorder guard the probe timeline uses.
pub const DEFAULT_SPAN_LIMIT: u64 = 1 << 20;

/// One argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (iteration counts, shard indices…).
    U64(u64),
    /// A float (rates, fractions…).
    F64(f64),
    /// Free text (figure ids, phase names…).
    Text(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Text(v.to_string())
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to (propagated across the wire).
    pub trace: u64,
    /// Span id, unique within the tracer (never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Low-cardinality name — the aggregation key (`gmm.fit`,
    /// `finish.fig04`, `server.session`…).
    pub name: Cow<'static, str>,
    /// Category (`sweep`, `gmm`, `campaign`, `wire`, `service`…).
    pub cat: &'static str,
    /// Start, nanoseconds on the tracer's clock.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Recording-thread id, allocated per [`LocalTracer`].
    pub tid: u64,
    /// Attached arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A chunk of drained records, linked into the collector stack.
struct Chunk {
    records: Vec<SpanRecord>,
    next: *mut Chunk,
}

struct TracerInner {
    clock: Arc<dyn Clock>,
    trace_id: u64,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    /// Treiber stack of drained chunks: push is a CAS loop, snapshot is
    /// an acquire-walk. Never popped while the tracer lives.
    head: AtomicPtr<Chunk>,
    stored: AtomicU64,
    dropped: AtomicU64,
    limit: u64,
}

// SAFETY: `head` is only mutated via atomic CAS; chunks are immutable
// once pushed and freed only in `Drop` (exclusive access).
unsafe impl Send for TracerInner {}
unsafe impl Sync for TracerInner {}

impl TracerInner {
    fn push_chunk(&self, records: Vec<SpanRecord>) {
        let node = Box::into_raw(Box::new(Chunk {
            records,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    fn collect(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: chunks are immutable after publication and outlive
            // this borrow (freed only when the tracer drops).
            let chunk = unsafe { &*node };
            out.extend(chunk.records.iter().cloned());
            node = chunk.next;
        }
        out
    }
}

impl Drop for TracerInner {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: drop has exclusive access; each node was created by
            // `Box::into_raw` in `push_chunk` and is freed exactly once.
            let chunk = unsafe { Box::from_raw(node) };
            node = chunk.next;
        }
    }
}

/// A cheap-to-clone handle to a shared span collector; `None` inside
/// means disabled (every recording call is a no-op branch).
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(i) => write!(f, "Tracer(trace_id={:#x})", i.trace_id),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A no-op tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled tracer on `clock` under `trace_id`, with the default
    /// span cap.
    pub fn new(clock: Arc<dyn Clock>, trace_id: u64) -> Self {
        Self::with_span_limit(clock, trace_id, DEFAULT_SPAN_LIMIT)
    }

    /// An enabled tracer retaining at most `limit` spans (further spans
    /// are counted in [`dropped`](Self::dropped), not stored).
    pub fn with_span_limit(clock: Arc<dyn Clock>, trace_id: u64, limit: u64) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                clock,
                trace_id,
                next_span: AtomicU64::new(1),
                next_tid: AtomicU64::new(1),
                head: AtomicPtr::new(std::ptr::null_mut()),
                stored: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                limit,
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id new spans are recorded under (0 when disabled).
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace_id)
    }

    /// Current time on the tracer's clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// A recording handle for the current thread. Dropping it flushes
    /// its ring buffer into the shared collector.
    pub fn local(&self) -> LocalTracer {
        let tid = self
            .inner
            .as_ref()
            .map_or(0, |i| i.next_tid.fetch_add(1, Ordering::Relaxed));
        LocalTracer {
            inner: self.inner.clone(),
            tid,
            buf: Vec::new(),
        }
    }

    /// Spans dropped by the retention cap.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Snapshot every drained span, in canonical order. Spans still
    /// buffered in live [`LocalTracer`]s are not included — drop or
    /// [`flush`](LocalTracer::flush) them first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = self.inner.as_ref().map_or_else(Vec::new, |i| i.collect());
        canonical_order(&mut out);
        out
    }
}

/// An in-flight span: its pre-allocated id and start timestamp.
///
/// `id == 0` means the span was begun on a disabled tracer and ending
/// it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSpan {
    /// The span's id (0 when disabled).
    pub id: u64,
    /// Start, nanoseconds on the tracer's clock.
    pub start_ns: u64,
}

impl OpenSpan {
    /// The open span of a disabled tracer.
    pub const NONE: OpenSpan = OpenSpan { id: 0, start_ns: 0 };
}

/// A per-thread recording handle (see [`Tracer::local`]).
pub struct LocalTracer {
    inner: Option<Arc<TracerInner>>,
    tid: u64,
    buf: Vec<SpanRecord>,
}

impl LocalTracer {
    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recording-thread id this handle stamps on its spans.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Current time on the tracer's clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Open a span: allocate its id and read the clock. On a disabled
    /// tracer this is a branch and returns [`OpenSpan::NONE`].
    pub fn begin(&mut self) -> OpenSpan {
        match &self.inner {
            None => OpenSpan::NONE,
            Some(i) => OpenSpan {
                id: i.next_span.fetch_add(1, Ordering::Relaxed),
                start_ns: i.clock.now_ns(),
            },
        }
    }

    /// Close `open` as `name` under `parent` (0 for a root span).
    pub fn end(
        &mut self,
        open: OpenSpan,
        parent: u64,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
    ) {
        self.end_with(open, parent, name, cat, Vec::new());
    }

    /// [`end`](Self::end) with attached arguments.
    pub fn end_with(
        &mut self,
        open: OpenSpan,
        parent: u64,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if open.id == 0 {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let end_ns = inner.clock.now_ns();
        let record = SpanRecord {
            trace: inner.trace_id,
            id: open.id,
            parent,
            name: name.into(),
            cat,
            start_ns: open.start_ns,
            dur_ns: end_ns.saturating_sub(open.start_ns),
            tid: self.tid,
            args,
        };
        self.push(record);
    }

    /// Record a fully-specified span (for intervals assembled across
    /// threads, e.g. a server session opened on one task and closed on
    /// another). A zero `id` allocates one; a zero `trace` uses the
    /// tracer's own; a zero `tid` uses this handle's.
    pub fn record(&mut self, mut record: SpanRecord) {
        let Some(inner) = &self.inner else { return };
        if record.id == 0 {
            record.id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        }
        if record.trace == 0 {
            record.trace = inner.trace_id;
        }
        if record.tid == 0 {
            record.tid = self.tid;
        }
        self.push(record);
    }

    fn push(&mut self, record: SpanRecord) {
        self.buf.push(record);
        if self.buf.len() >= RING_CAPACITY {
            self.flush();
        }
    }

    /// Drain the ring buffer into the shared collector.
    pub fn flush(&mut self) {
        let Some(inner) = &self.inner else { return };
        if self.buf.is_empty() {
            return;
        }
        let n = self.buf.len() as u64;
        let prev = inner.stored.fetch_add(n, Ordering::Relaxed);
        let keep = inner.limit.saturating_sub(prev).min(n);
        if keep < n {
            inner.stored.fetch_sub(n - keep, Ordering::Relaxed);
            inner.dropped.fetch_add(n - keep, Ordering::Relaxed);
            self.buf.truncate(keep as usize);
        }
        if !self.buf.is_empty() {
            inner.push_chunk(std::mem::take(&mut self.buf));
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for LocalTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static ACTIVE: RefCell<Tracer> = RefCell::new(Tracer::disabled());
}

/// Run `f` with `tracer` installed as the thread's active tracer (see
/// [`active`]); the previous tracer is restored afterwards, panic or
/// not. Spawned threads do *not* inherit the scope — capture the tracer
/// and re-`scope` inside each worker.
pub fn scope<T>(tracer: &Tracer, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Tracer>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                ACTIVE.with(|a| *a.borrow_mut() = prev);
            }
        }
    }
    let prev = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), tracer.clone()));
    let _restore = Restore(Some(prev));
    f()
}

/// The thread's active tracer ([`Tracer::disabled`] outside any
/// [`scope`]). Lets deep library code (EM loops, accumulators) record
/// spans without threading a handle through every signature.
pub fn active() -> Tracer {
    ACTIVE.with(|a| a.borrow().clone())
}

/// Sort records into canonical export order: `(tid, start, −duration,
/// id)` — parents precede children that start the same nanosecond, and
/// a fixed record set renders identically whatever the drain order was.
pub fn canonical_order(records: &mut [SpanRecord]) {
    records.sort_by(|a, b| {
        (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns), a.id).cmp(&(
            b.tid,
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            b.id,
        ))
    });
}

/// Microseconds with fixed 3-digit nanosecond remainder — the `ts`/
/// `dur` unit of the Chrome trace-event format, formatted
/// deterministically (no float rounding).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render records as Chrome trace-event JSON (complete `"X"` events),
/// loadable directly in Perfetto or `chrome://tracing`.
///
/// The export is deterministic for a fixed record set: events are
/// emitted in [`canonical_order`], timestamps are integer-derived, and
/// args render in recording order. The trace id rides in every event's
/// `args.trace` so joined client/server exports correlate.
pub fn export_chrome_json(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by(|a, b| {
        (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns), a.id).cmp(&(
            b.tid,
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            b.id,
        ))
    });
    let mut out = String::with_capacity(64 + records.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{:#x}\",\"span\":{}",
            json_escape(&r.name),
            json_escape(r.cat),
            micros(r.start_ns),
            micros(r.dur_ns),
            r.tid,
            r.trace,
            r.id,
        );
        if r.parent != 0 {
            let _ = write!(out, ",\"parent\":{}", r.parent);
        }
        for (k, v) in &r.args {
            let _ = write!(out, ",\"{}\":", json_escape(k));
            match v {
                ArgValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::F64(f) => {
                    let _ = write!(out, "{}", json_f64(*f));
                }
                ArgValue::Text(t) => {
                    let _ = write!(out, "\"{}\"", json_escape(t));
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Per-span-name duration budgets driving the slow-span log.
///
/// Lookup order: exact name, then the longest matching registered
/// prefix, then the default (if any). A span with no applicable budget
/// is never slow.
#[derive(Debug, Clone, Default)]
pub struct SpanBudgets {
    default_ns: Option<u64>,
    exact: BTreeMap<String, u64>,
    prefixes: Vec<(String, u64)>,
}

impl SpanBudgets {
    /// No budgets: nothing is ever slow.
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the fallback budget for spans with no specific entry.
    pub fn default_ns(mut self, ns: u64) -> Self {
        self.default_ns = Some(ns);
        self
    }

    /// Budget spans named exactly `name`.
    pub fn exact(mut self, name: &str, ns: u64) -> Self {
        self.exact.insert(name.to_string(), ns);
        self
    }

    /// Budget spans whose name starts with `prefix`.
    pub fn prefix(mut self, prefix: &str, ns: u64) -> Self {
        self.prefixes.push((prefix.to_string(), ns));
        self.prefixes
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        self
    }

    /// The budget applying to `name`, if any.
    pub fn for_name(&self, name: &str) -> Option<u64> {
        if let Some(&ns) = self.exact.get(name) {
            return Some(ns);
        }
        for (prefix, ns) in &self.prefixes {
            if name.starts_with(prefix.as_str()) {
                return Some(*ns);
            }
        }
        self.default_ns
    }

    /// The budgets the `figures` and `swiftest` binaries apply by
    /// default: generous per-stage ceilings that a healthy smoke-scale
    /// run never hits, so a non-empty slow-span log is a CI failure.
    pub fn default_profile() -> Self {
        Self::none()
            .prefix("finish.", 10_000_000_000)
            .exact("gmm.fit", 5_000_000_000)
            // Binned EM iterates over ≤513 weighted bins, not records:
            // iterations are microseconds and a whole binned fit (all
            // EM restarts for one candidate k) stays well under a
            // second even on a loaded CI runner.
            .exact("gmm.em_iter", 100_000_000)
            .exact("gmm.fit_binned", 1_000_000_000)
            .exact("gmm.fit_auto", 5_000_000_000)
            .prefix("stream.", 120_000_000_000)
            .prefix("campaign.", 120_000_000_000)
            .exact("client.admit", 5_000_000_000)
            .exact("server.hello", 1_000_000_000)
            .exact("server.resultslog.append", 1_000_000_000)
    }
}

/// Records exceeding their budget, slowest-overrun first.
pub fn slow_spans<'a>(records: &'a [SpanRecord], budgets: &SpanBudgets) -> Vec<&'a SpanRecord> {
    let mut out: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| budgets.for_name(&r.name).is_some_and(|b| r.dur_ns > b))
        .collect();
    out.sort_by(|a, b| {
        let over_a = a.dur_ns - budgets.for_name(&a.name).unwrap_or(0);
        let over_b = b.dur_ns - budgets.for_name(&b.name).unwrap_or(0);
        over_b
            .cmp(&over_a)
            .then_with(|| (a.tid, a.start_ns, a.id).cmp(&(b.tid, b.start_ns, b.id)))
    });
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render a text self-profile: per-name aggregation (count / total /
/// mean / max, sorted by total time), the `top_k` longest individual
/// spans, and the slow-span log (lines prefixed `SLOW `, which CI greps
/// for). Deterministic for a fixed record set.
pub fn self_profile(records: &[SpanRecord], budgets: &SpanBudgets, top_k: usize) -> String {
    let mut out = String::new();
    let total_ns: u64 = records.iter().map(|r| r.dur_ns).sum();
    let _ = writeln!(
        out,
        "== span profile: {} spans, {:.3} ms total span time ==",
        records.len(),
        ms(total_ns)
    );

    struct Agg {
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for r in records {
        let a = by_name.entry(r.name.as_ref()).or_insert(Agg {
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        a.count += 1;
        a.total_ns += r.dur_ns;
        a.max_ns = a.max_ns.max(r.dur_ns);
    }
    let mut names: Vec<(&str, &Agg)> = by_name.iter().map(|(k, v)| (*k, v)).collect();
    names.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(out, "-- by name --");
    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>12} {:>10} {:>10}",
        "name", "count", "total_ms", "mean_ms", "max_ms"
    );
    for (name, a) in &names {
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12.3} {:>10.3} {:>10.3}",
            name,
            a.count,
            ms(a.total_ns),
            ms(a.total_ns) / a.count as f64,
            ms(a.max_ns)
        );
    }

    let mut top: Vec<&SpanRecord> = records.iter().collect();
    top.sort_by(|a, b| {
        b.dur_ns
            .cmp(&a.dur_ns)
            .then_with(|| (a.tid, a.start_ns, a.id).cmp(&(b.tid, b.start_ns, b.id)))
    });
    top.truncate(top_k);
    let _ = writeln!(out, "-- top {} spans --", top.len());
    for r in &top {
        let _ = writeln!(
            out,
            "{:<32} {:>12.3} ms  start {:>14.3} ms  tid {}",
            r.name,
            ms(r.dur_ns),
            ms(r.start_ns),
            r.tid
        );
    }

    let slow = slow_spans(records, budgets);
    if slow.is_empty() {
        let _ = writeln!(out, "-- slow spans: none --");
    } else {
        let _ = writeln!(out, "-- slow spans ({}) --", slow.len());
        for r in &slow {
            let budget = budgets.for_name(&r.name).unwrap_or(0);
            let _ = writeln!(
                out,
                "SLOW {:<27} {:>12.3} ms over budget {:>10.3} ms  tid {}",
                r.name,
                ms(r.dur_ns),
                ms(budget),
                r.tid
            );
        }
    }
    out
}

/// Publish span durations and slow-span counts into `registry`:
/// `trace_span_seconds{name=…}` histograms plus
/// `trace_slow_spans_total{name=…}` counters (only names that exceeded
/// their budget get a counter series).
pub fn publish_spans(registry: &Registry, records: &[SpanRecord], budgets: &SpanBudgets) {
    let mut hists: BTreeMap<&str, Histogram> = BTreeMap::new();
    for r in records {
        let h = hists.entry(r.name.as_ref()).or_insert_with(|| {
            registry.histogram_with(
                "trace_span_seconds",
                "Traced span durations by span name",
                &[("name", r.name.as_ref())],
                Histogram::seconds_default(),
            )
        });
        h.observe(r.dur_ns as f64 / 1e9);
    }
    for r in slow_spans(records, budgets) {
        registry
            .counter_with(
                "trace_slow_spans_total",
                "Spans that exceeded their duration budget, by span name",
                &[("name", r.name.as_ref())],
            )
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer(trace_id: u64) -> (Tracer, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Tracer::new(clock.clone(), trace_id), clock)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut local = t.local();
        let open = local.begin();
        assert_eq!(open, OpenSpan::NONE);
        local.end(open, 0, "x", "test");
        drop(local);
        assert!(t.spans().is_empty());
        assert_eq!(t.trace_id(), 0);
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let (t, clock) = manual_tracer(0xAB);
        {
            let mut local = t.local();
            let outer = local.begin();
            clock.advance(std::time::Duration::from_micros(10));
            let inner = local.begin();
            clock.advance(std::time::Duration::from_micros(5));
            local.end_with(
                inner,
                outer.id,
                "inner",
                "test",
                vec![("k", ArgValue::U64(3))],
            );
            local.end(outer, 0, "outer", "test");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.dur_ns, 5_000);
        assert_eq!(outer.dur_ns, 15_000);
        assert_eq!(inner.args, vec![("k", ArgValue::U64(3))]);
        assert_eq!(outer.trace, 0xAB);
    }

    #[test]
    fn ring_buffers_drain_from_many_threads() {
        let (t, _clock) = manual_tracer(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    let mut local = t.local();
                    for _ in 0..RING_CAPACITY + 17 {
                        let open = local.begin();
                        local.end(open, 0, "work", "test");
                    }
                });
            }
        });
        let spans = t.spans();
        assert_eq!(spans.len(), 4 * (RING_CAPACITY + 17));
        // Span ids are unique across threads.
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), spans.len());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn span_cap_counts_overflow() {
        let clock = Arc::new(ManualClock::new());
        let t = Tracer::with_span_limit(clock, 1, 10);
        {
            let mut local = t.local();
            for _ in 0..25 {
                let open = local.begin();
                local.end(open, 0, "x", "test");
            }
        }
        assert_eq!(t.spans().len(), 10);
        assert_eq!(t.dropped(), 15);
    }

    #[test]
    fn scoped_tracer_is_thread_local_and_restored() {
        assert!(!active().enabled());
        let (t, _clock) = manual_tracer(7);
        scope(&t, || {
            assert!(active().enabled());
            assert_eq!(active().trace_id(), 7);
            // Nested scope shadows and restores.
            scope(&Tracer::disabled(), || assert!(!active().enabled()));
            assert_eq!(active().trace_id(), 7);
        });
        assert!(!active().enabled());
    }

    #[test]
    fn scope_restores_after_panic() {
        let (t, _clock) = manual_tracer(9);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(&t, || panic!("boom"))
        }));
        assert!(result.is_err());
        assert!(!active().enabled());
    }

    #[test]
    fn chrome_export_is_deterministic_and_well_formed() {
        let (t, clock) = manual_tracer(0xC0FFEE);
        {
            let mut local = t.local();
            let a = local.begin();
            clock.advance(std::time::Duration::from_micros(3));
            local.end_with(
                a,
                0,
                "alpha \"quoted\"",
                "test",
                vec![
                    ("n", ArgValue::U64(2)),
                    ("f", ArgValue::F64(1.5)),
                    ("s", ArgValue::Text("x\ny".into())),
                ],
            );
        }
        let spans = t.spans();
        let json = export_chrome_json(&spans);
        assert_eq!(json, export_chrome_json(&spans), "export must be stable");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":0.000"), "{json}");
        assert!(json.contains("\"dur\":3.000"), "{json}");
        assert!(json.contains("\"trace\":\"0xc0ffee\""), "{json}");
        assert!(json.contains("alpha \\\"quoted\\\""), "{json}");
        assert!(json.contains("\"s\":\"x\\ny\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn export_order_is_canonical_whatever_the_drain_order() {
        // The same record set, drained in two different orders, must
        // export byte-identically.
        let make = |reverse: bool| {
            let clock = Arc::new(ManualClock::new());
            let t = Tracer::new(clock.clone(), 5);
            let mut records = {
                let mut local = t.local();
                for i in 0..10u64 {
                    clock.set_ns(i * 1000);
                    let open = local.begin();
                    clock.set_ns(i * 1000 + 100);
                    local.end(open, 0, format!("s{i}"), "test");
                }
                // Steal the buffered records so we control drain order.
                std::mem::take(&mut local.buf)
            };
            if reverse {
                records.reverse();
            }
            let t2 = Tracer::new(Arc::new(ManualClock::new()), 5);
            {
                let mut local = t2.local();
                for r in records {
                    local.record(r);
                    local.flush(); // one chunk per record
                }
            }
            export_chrome_json(&t2.spans())
        };
        assert_eq!(make(false), make(true));
    }

    #[test]
    fn budgets_resolve_exact_then_prefix_then_default() {
        let b = SpanBudgets::none()
            .default_ns(100)
            .prefix("finish.", 50)
            .prefix("finish.fig0", 25)
            .exact("finish.fig01", 10);
        assert_eq!(b.for_name("finish.fig01"), Some(10));
        assert_eq!(b.for_name("finish.fig04"), Some(25));
        assert_eq!(b.for_name("finish.summary"), Some(50));
        assert_eq!(b.for_name("anything"), Some(100));
        assert_eq!(SpanBudgets::none().for_name("x"), None);
    }

    #[test]
    fn self_profile_flags_slow_spans() {
        let (t, clock) = manual_tracer(1);
        {
            let mut local = t.local();
            let fast = local.begin();
            clock.advance(std::time::Duration::from_micros(1));
            local.end(fast, 0, "fast", "test");
            let slow = local.begin();
            clock.advance(std::time::Duration::from_millis(10));
            local.end(slow, 0, "slow", "test");
        }
        let spans = t.spans();
        let budgets = SpanBudgets::none().exact("slow", 1_000_000);
        let report = self_profile(&spans, &budgets, 5);
        assert!(report.contains("-- by name --"), "{report}");
        assert!(report.contains("SLOW slow"), "{report}");
        assert!(!report.contains("SLOW fast"), "{report}");
        let clean = self_profile(&spans, &SpanBudgets::none(), 5);
        assert!(clean.contains("slow spans: none"), "{clean}");
        assert!(!clean.contains("\nSLOW "), "{clean}");
    }

    #[test]
    fn publish_feeds_the_registry() {
        let (t, clock) = manual_tracer(1);
        {
            let mut local = t.local();
            for _ in 0..3 {
                let open = local.begin();
                clock.advance(std::time::Duration::from_millis(2));
                local.end(open, 0, "stage.a", "test");
            }
            let open = local.begin();
            clock.advance(std::time::Duration::from_millis(50));
            local.end(open, 0, "stage.b", "test");
        }
        let registry = Registry::new();
        let budgets = SpanBudgets::none().exact("stage.b", 10_000_000);
        publish_spans(&registry, &t.spans(), &budgets);
        let text = registry.render_prometheus();
        assert!(
            text.contains("trace_span_seconds_count{name=\"stage.a\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("trace_slow_spans_total{name=\"stage.b\"} 1"),
            "{text}"
        );
        assert!(!text.contains("trace_slow_spans_total{name=\"stage.a\"}"));
    }

    #[test]
    fn cross_thread_record_assembly() {
        // A span opened logically on one thread and recorded by another
        // (the server-session pattern) keeps its explicit trace id.
        let (t, clock) = manual_tracer(0x11);
        let start = t.now_ns();
        clock.advance(std::time::Duration::from_millis(3));
        {
            let mut local = t.local();
            local.record(SpanRecord {
                trace: 0x99, // the client's trace id, not ours
                id: 0,
                parent: 0,
                name: "server.session".into(),
                cat: "service",
                start_ns: start,
                dur_ns: local.now_ns() - start,
                tid: 0,
                args: vec![("session", ArgValue::U64(42))],
            });
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, 0x99);
        assert_ne!(spans[0].id, 0);
        assert_eq!(spans[0].dur_ns, 3_000_000);
    }
}
