//! Measurement-pipeline metrics: generation and analysis throughput.
//!
//! The paper-scale pipeline moves millions of records through two
//! stages — sharded generation (`mbw-dataset::parallel`) and the fused
//! figure sweep (`mbw-analysis::sweep`). [`PipelineMetrics`] gives both
//! stages one shared vocabulary in the registry:
//!
//! - `records_generated_total` / `records_analyzed_total` — monotonic
//!   counters of records that left each stage;
//! - `pipeline_records_per_second{stage=...}` — the most recent
//!   throughput observation per stage, over **wall clock**: this is the
//!   rate at which the pipeline actually moved records;
//! - `pipeline_stage_seconds{stage=...}` — duration histograms for the
//!   streaming engine's stages (generate / observe / merge / finish /
//!   finish_cpu, see `mbw-analysis::stream`). The generate and observe
//!   stages run inside the workers, so callers feed them **CPU seconds
//!   summed across workers** (they can exceed the run's wall time).
//!   The finish stage reports both its wall time (`finish`) and its
//!   summed per-job CPU time (`finish_cpu`) — their ratio is the
//!   parallel efficiency of the finish work pool;
//! - `pipeline_stage_records_per_second{stage=...}` — the most recent
//!   per-stage throughput of a streaming run, in the same time base as
//!   `pipeline_stage_seconds` (records per CPU-second for generate /
//!   observe / finish_cpu, per wall-second for merge / finish);
//! - `fit_cache_hits_total` / `fit_cache_misses_total` — monotonic
//!   counters of GMM fit-cache lookups served from (or missing in) the
//!   memoized fit store (`mbw-analysis::fitcache`).
//!
//! Handles are cheap clones of registry series; both stages can hold a
//! `PipelineMetrics` built from the same [`Registry`] and their updates
//! land on the same series.

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use std::time::Duration;

/// The streaming engine's stage labels, in pipeline order. `finish` is
/// the finish stage's wall time; `finish_cpu` is the same stage's CPU
/// time summed over the finish pool's jobs.
pub const PIPELINE_STAGE_LABELS: [&str; 5] =
    ["generate", "observe", "merge", "finish", "finish_cpu"];

/// Metric handles for one pipeline (generation + analysis stages).
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    generated: Counter,
    analyzed: Counter,
    generate_rate: Gauge,
    analyze_rate: Gauge,
    stage_seconds: [Histogram; 5],
    stage_rate: [Gauge; 5],
    fit_cache_hits: Counter,
    fit_cache_misses: Counter,
}

impl PipelineMetrics {
    /// Register (or re-attach to) the pipeline series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            generated: registry.counter(
                "records_generated_total",
                "Measurement records produced by the dataset generator",
            ),
            analyzed: registry.counter(
                "records_analyzed_total",
                "Measurement records folded into the analysis sweep",
            ),
            generate_rate: registry.gauge_with(
                "pipeline_records_per_second",
                "Most recent records-per-second throughput per pipeline stage",
                &[("stage", "generate")],
            ),
            analyze_rate: registry.gauge_with(
                "pipeline_records_per_second",
                "Most recent records-per-second throughput per pipeline stage",
                &[("stage", "analyze")],
            ),
            stage_seconds: PIPELINE_STAGE_LABELS.map(|stage| {
                registry.histogram_with(
                    "pipeline_stage_seconds",
                    "Time spent in each streaming-engine stage per run",
                    &[("stage", stage)],
                    Histogram::exponential(1e-3, 4.0, 10),
                )
            }),
            stage_rate: PIPELINE_STAGE_LABELS.map(|stage| {
                registry.gauge_with(
                    "pipeline_stage_records_per_second",
                    "Most recent streaming run's records-per-second per stage",
                    &[("stage", stage)],
                )
            }),
            fit_cache_hits: registry.counter(
                "fit_cache_hits_total",
                "GMM fit-cache lookups served from the memoized fit store",
            ),
            fit_cache_misses: registry.counter(
                "fit_cache_misses_total",
                "GMM fit-cache lookups that required a fresh EM fit",
            ),
        }
    }

    /// Record one streaming-engine stage (one of
    /// [`PIPELINE_STAGE_LABELS`]) that moved `records` in `elapsed`.
    /// Unknown stage labels are ignored.
    pub fn observe_stage(&self, stage: &str, records: u64, elapsed: Duration) {
        if let Some(i) = PIPELINE_STAGE_LABELS.iter().position(|s| *s == stage) {
            self.stage_seconds[i].observe(elapsed.as_secs_f64());
            self.stage_rate[i].set(rate(records, elapsed));
        }
    }

    /// Record that the generation stage produced `records` in `elapsed`.
    pub fn observe_generated(&self, records: u64, elapsed: Duration) {
        self.generated.add(records);
        self.generate_rate.set(rate(records, elapsed));
    }

    /// Record that the analysis stage consumed `records` in `elapsed`.
    pub fn observe_analyzed(&self, records: u64, elapsed: Duration) {
        self.analyzed.add(records);
        self.analyze_rate.set(rate(records, elapsed));
    }

    /// Record one finish stage's GMM fit-cache outcome counts.
    pub fn observe_fit_cache(&self, hits: u64, misses: u64) {
        self.fit_cache_hits.add(hits);
        self.fit_cache_misses.add(misses);
    }

    /// Total fit-cache hits so far.
    pub fn fit_cache_hits_total(&self) -> u64 {
        self.fit_cache_hits.get()
    }

    /// Total fit-cache misses so far.
    pub fn fit_cache_misses_total(&self) -> u64 {
        self.fit_cache_misses.get()
    }

    /// Total records generated so far.
    pub fn generated_total(&self) -> u64 {
        self.generated.get()
    }

    /// Total records analyzed so far.
    pub fn analyzed_total(&self) -> u64 {
        self.analyzed.get()
    }
}

fn rate(records: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        records as f64 / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rates_overwrite() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_generated(1_000, Duration::from_millis(500));
        metrics.observe_generated(1_000, Duration::from_millis(250));
        metrics.observe_analyzed(2_000, Duration::from_secs(1));
        assert_eq!(metrics.generated_total(), 2_000);
        assert_eq!(metrics.analyzed_total(), 2_000);

        let text = registry.render_prometheus();
        assert!(text.contains("records_generated_total 2000"), "{text}");
        assert!(text.contains("records_analyzed_total 2000"), "{text}");
        // Rate gauges carry the latest observation, labelled per stage.
        assert!(
            text.contains("pipeline_records_per_second{stage=\"generate\"} 4000"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_records_per_second{stage=\"analyze\"} 2000"),
            "{text}"
        );
    }

    #[test]
    fn stage_observations_land_on_labelled_series() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_stage("generate", 10_000, Duration::from_secs(2));
        metrics.observe_stage("finish", 10_000, Duration::from_millis(500));
        metrics.observe_stage("not-a-stage", 1, Duration::from_secs(1));
        let text = registry.render_prometheus();
        assert!(
            text.contains("pipeline_stage_seconds_count{stage=\"generate\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_stage_records_per_second{stage=\"generate\"} 5000"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_stage_records_per_second{stage=\"finish\"} 20000"),
            "{text}"
        );
    }

    #[test]
    fn finish_cpu_stage_and_fit_cache_counters_register() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_stage("finish_cpu", 10_000, Duration::from_secs(2));
        metrics.observe_fit_cache(3, 1);
        metrics.observe_fit_cache(2, 0);
        assert_eq!(metrics.fit_cache_hits_total(), 5);
        assert_eq!(metrics.fit_cache_misses_total(), 1);
        let text = registry.render_prometheus();
        assert!(
            text.contains("pipeline_stage_records_per_second{stage=\"finish_cpu\"} 5000"),
            "{text}"
        );
        assert!(text.contains("fit_cache_hits_total 5"), "{text}");
        assert!(text.contains("fit_cache_misses_total 1"), "{text}");
    }

    #[test]
    fn zero_elapsed_reports_zero_rate_not_infinity() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_generated(500, Duration::ZERO);
        let text = registry.render_prometheus();
        assert!(
            text.contains("pipeline_records_per_second{stage=\"generate\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn both_stages_share_series_across_handles() {
        let registry = Registry::new();
        let a = PipelineMetrics::register(&registry);
        let b = PipelineMetrics::register(&registry);
        a.observe_generated(10, Duration::from_secs(1));
        b.observe_generated(5, Duration::from_secs(1));
        assert_eq!(a.generated_total(), 15);
        assert_eq!(b.generated_total(), 15);
    }
}
