//! Measurement-pipeline metrics: generation and analysis throughput.
//!
//! The paper-scale pipeline moves millions of records through two
//! stages — sharded generation (`mbw-dataset::parallel`) and the fused
//! figure sweep (`mbw-analysis::sweep`). [`PipelineMetrics`] gives both
//! stages one shared vocabulary in the registry:
//!
//! - `records_generated_total` / `records_analyzed_total` — monotonic
//!   counters of records that left each stage;
//! - `pipeline_records_per_second{stage=...}` — the most recent
//!   throughput observation per stage.
//!
//! Handles are cheap clones of registry series; both stages can hold a
//! `PipelineMetrics` built from the same [`Registry`] and their updates
//! land on the same series.

use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use std::time::Duration;

/// Metric handles for one pipeline (generation + analysis stages).
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    generated: Counter,
    analyzed: Counter,
    generate_rate: Gauge,
    analyze_rate: Gauge,
}

impl PipelineMetrics {
    /// Register (or re-attach to) the pipeline series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            generated: registry.counter(
                "records_generated_total",
                "Measurement records produced by the dataset generator",
            ),
            analyzed: registry.counter(
                "records_analyzed_total",
                "Measurement records folded into the analysis sweep",
            ),
            generate_rate: registry.gauge_with(
                "pipeline_records_per_second",
                "Most recent records-per-second throughput per pipeline stage",
                &[("stage", "generate")],
            ),
            analyze_rate: registry.gauge_with(
                "pipeline_records_per_second",
                "Most recent records-per-second throughput per pipeline stage",
                &[("stage", "analyze")],
            ),
        }
    }

    /// Record that the generation stage produced `records` in `elapsed`.
    pub fn observe_generated(&self, records: u64, elapsed: Duration) {
        self.generated.add(records);
        self.generate_rate.set(rate(records, elapsed));
    }

    /// Record that the analysis stage consumed `records` in `elapsed`.
    pub fn observe_analyzed(&self, records: u64, elapsed: Duration) {
        self.analyzed.add(records);
        self.analyze_rate.set(rate(records, elapsed));
    }

    /// Total records generated so far.
    pub fn generated_total(&self) -> u64 {
        self.generated.get()
    }

    /// Total records analyzed so far.
    pub fn analyzed_total(&self) -> u64 {
        self.analyzed.get()
    }
}

fn rate(records: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        records as f64 / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rates_overwrite() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_generated(1_000, Duration::from_millis(500));
        metrics.observe_generated(1_000, Duration::from_millis(250));
        metrics.observe_analyzed(2_000, Duration::from_secs(1));
        assert_eq!(metrics.generated_total(), 2_000);
        assert_eq!(metrics.analyzed_total(), 2_000);

        let text = registry.render_prometheus();
        assert!(text.contains("records_generated_total 2000"), "{text}");
        assert!(text.contains("records_analyzed_total 2000"), "{text}");
        // Rate gauges carry the latest observation, labelled per stage.
        assert!(
            text.contains("pipeline_records_per_second{stage=\"generate\"} 4000"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_records_per_second{stage=\"analyze\"} 2000"),
            "{text}"
        );
    }

    #[test]
    fn zero_elapsed_reports_zero_rate_not_infinity() {
        let registry = Registry::new();
        let metrics = PipelineMetrics::register(&registry);
        metrics.observe_generated(500, Duration::ZERO);
        let text = registry.render_prometheus();
        assert!(
            text.contains("pipeline_records_per_second{stage=\"generate\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn both_stages_share_series_across_handles() {
        let registry = Registry::new();
        let a = PipelineMetrics::register(&registry);
        let b = PipelineMetrics::register(&registry);
        a.observe_generated(10, Duration::from_secs(1));
        b.observe_generated(5, Duration::from_secs(1));
        assert_eq!(a.generated_total(), 15);
        assert_eq!(b.generated_total(), 15);
    }
}
