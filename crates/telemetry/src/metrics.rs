//! The atomic metric primitives: [`Counter`] and [`Gauge`].
//!
//! Both are cheap-to-clone handles around a shared atomic cell, so the
//! same metric can be incremented from a tokio task, a pacing loop, and
//! a simulator thread while an HTTP exporter reads it concurrently.
//! Relaxed ordering everywhere: metrics are statistical, not
//! synchronisation primitives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down, stored as `f64` bits.
///
/// `add`/`sub` use a compare-and-swap loop; contention on a gauge is
/// expected to be negligible (a handful of writers per metric).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Subtract `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A clone shares the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
