//! Campaign-executor metrics: trial throughput and per-kind latency.
//!
//! The Swiftest evaluation half runs as a *campaign* — a planned set of
//! simulated trials executed by a work-stealing thread pool
//! (`mbw-core::campaign`). [`CampaignMetrics`] gives the executor the
//! same registry vocabulary [`PipelineMetrics`](crate::PipelineMetrics)
//! gives the dataset pipeline:
//!
//! - `campaign_trials_total` / `campaign_outcomes_total` — monotonic
//!   counters of trials executed and outcome rows they produced;
//! - `campaign_trials_per_second` — the most recent campaign's
//!   throughput observation;
//! - `campaign_trial_seconds{kind=...}` — wall-time histograms per
//!   trial kind (single / pair / group / ramp / variant);
//! - `campaign_stage_seconds{stage=...}` — duration histograms for the
//!   campaign's three stages (plan / execute / reduce);
//! - `campaign_stage_trials_per_second{stage=...}` — the most recent
//!   campaign's per-stage trial throughput.
//!
//! Handles are cheap clones of registry series and safe to share across
//! worker threads: every worker observes into the same series.

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use std::time::Duration;

/// The trial-kind labels the executor reports under.
pub const TRIAL_KIND_LABELS: [&str; 5] = ["single", "pair", "group", "ramp", "variant"];

/// The campaign's stage labels, in execution order.
pub const CAMPAIGN_STAGE_LABELS: [&str; 3] = ["plan", "execute", "reduce"];

/// Metric handles for one evaluation campaign executor.
#[derive(Debug, Clone)]
pub struct CampaignMetrics {
    trials: Counter,
    outcomes: Counter,
    rate: Gauge,
    kind_seconds: [Histogram; 5],
    stage_seconds: [Histogram; 3],
    stage_rate: [Gauge; 3],
}

impl CampaignMetrics {
    /// Register (or re-attach to) the campaign series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let kind_seconds = TRIAL_KIND_LABELS.map(|kind| {
            registry.histogram_with(
                "campaign_trial_seconds",
                "Wall time per executed trial, by trial kind",
                &[("kind", kind)],
                Histogram::exponential(1e-4, 4.0, 10),
            )
        });
        Self {
            trials: registry.counter(
                "campaign_trials_total",
                "Evaluation trials executed by the campaign executor",
            ),
            outcomes: registry.counter(
                "campaign_outcomes_total",
                "Outcome rows produced by executed trials",
            ),
            rate: registry.gauge(
                "campaign_trials_per_second",
                "Most recent campaign's trial throughput",
            ),
            kind_seconds,
            stage_seconds: CAMPAIGN_STAGE_LABELS.map(|stage| {
                registry.histogram_with(
                    "campaign_stage_seconds",
                    "Time spent in each campaign stage per run",
                    &[("stage", stage)],
                    Histogram::exponential(1e-3, 4.0, 10),
                )
            }),
            stage_rate: CAMPAIGN_STAGE_LABELS.map(|stage| {
                registry.gauge_with(
                    "campaign_stage_trials_per_second",
                    "Most recent campaign's trials-per-second per stage",
                    &[("stage", stage)],
                )
            }),
        }
    }

    /// Record one campaign stage (one of [`CAMPAIGN_STAGE_LABELS`])
    /// that handled `trials` in `elapsed`. Unknown stage labels are
    /// ignored.
    pub fn observe_stage(&self, stage: &str, trials: u64, elapsed: Duration) {
        if let Some(i) = CAMPAIGN_STAGE_LABELS.iter().position(|s| *s == stage) {
            self.stage_seconds[i].observe(elapsed.as_secs_f64());
            let secs = elapsed.as_secs_f64();
            self.stage_rate[i].set(if secs > 0.0 {
                trials as f64 / secs
            } else {
                0.0
            });
        }
    }

    /// Record one executed trial of kind `kind` (one of
    /// [`TRIAL_KIND_LABELS`]) that produced `outcomes` rows in
    /// `elapsed` wall time.
    pub fn observe_trial(&self, kind: &str, outcomes: u64, elapsed: Duration) {
        self.trials.inc();
        self.outcomes.add(outcomes);
        if let Some(i) = TRIAL_KIND_LABELS.iter().position(|k| *k == kind) {
            self.kind_seconds[i].observe(elapsed.as_secs_f64());
        }
    }

    /// Record a whole campaign: `trials` executed in `elapsed` wall
    /// time (sets the throughput gauge).
    pub fn observe_campaign(&self, trials: u64, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.rate.set(if secs > 0.0 {
            trials as f64 / secs
        } else {
            0.0
        });
    }

    /// Total trials executed so far.
    pub fn trials_total(&self) -> u64 {
        self.trials.get()
    }

    /// Total outcome rows produced so far.
    pub fn outcomes_total(&self) -> u64 {
        self.outcomes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_and_outcomes_accumulate() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.observe_trial("single", 1, Duration::from_millis(2));
        m.observe_trial("group", 4, Duration::from_millis(9));
        m.observe_trial("group", 4, Duration::from_millis(7));
        assert_eq!(m.trials_total(), 3);
        assert_eq!(m.outcomes_total(), 9);
    }

    #[test]
    fn throughput_gauge_reports_last_campaign() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.observe_campaign(100, Duration::from_secs(4));
        let text = registry.render_prometheus();
        assert!(text.contains("campaign_trials_per_second 25"), "{text}");
    }

    #[test]
    fn zero_elapsed_reports_zero_rate() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.observe_campaign(50, Duration::ZERO);
        let text = registry.render_prometheus();
        assert!(text.contains("campaign_trials_per_second 0"), "{text}");
    }

    #[test]
    fn kind_histograms_are_labelled() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.observe_trial("pair", 2, Duration::from_millis(5));
        m.observe_trial("not-a-kind", 1, Duration::from_millis(5));
        let text = registry.render_prometheus();
        assert!(
            text.contains("campaign_trial_seconds_count{kind=\"pair\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn stage_observations_land_on_labelled_series() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.observe_stage("execute", 100, Duration::from_secs(2));
        m.observe_stage("not-a-stage", 1, Duration::from_secs(1));
        let text = registry.render_prometheus();
        assert!(
            text.contains("campaign_stage_seconds_count{stage=\"execute\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("campaign_stage_trials_per_second{stage=\"execute\"} 50"),
            "{text}"
        );
    }

    #[test]
    fn handles_reattach_to_the_same_series() {
        let registry = Registry::new();
        let a = CampaignMetrics::register(&registry);
        let b = CampaignMetrics::register(&registry);
        a.observe_trial("ramp", 1, Duration::from_millis(1));
        b.observe_trial("ramp", 1, Duration::from_millis(1));
        assert_eq!(a.trials_total(), 2);
        assert_eq!(b.trials_total(), 2);
    }
}
