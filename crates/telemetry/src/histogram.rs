//! A log-bucketed histogram with atomic buckets.
//!
//! Bandwidth-test observables span orders of magnitude (a 50 ms window
//! holds 3 KB on a congested 2G link and 3 MB on 5G), so the bucket
//! ladder is exponential: `start, start·factor, start·factor², …`.
//! Observation is lock-free — a binary search over the (immutable)
//! bounds plus one `fetch_add` — so it is safe on the pacing hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive), strictly increasing. An implicit +Inf
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing +Inf bucket.
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A cheap-to-clone handle to a shared histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Exponential bucket ladder: `count` bounds starting at `start`,
    /// each `factor` times the previous.
    ///
    /// # Panics
    /// Panics on a non-positive `start`, a `factor` at or below 1, or a
    /// zero `count`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0, "start must be positive");
        assert!(factor > 1.0, "factor must exceed 1");
        assert!(count > 0, "need at least one bucket");
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::with_bounds(bounds)
    }

    /// Explicit upper bounds (must be strictly increasing).
    ///
    /// # Panics
    /// Panics on an empty or non-increasing bound list.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A ladder suited to throughput samples in Mbps: 0.125 → ~4000 in
    /// ×2 steps.
    pub fn mbps_default() -> Self {
        Self::exponential(0.125, 2.0, 16)
    }

    /// A ladder suited to byte volumes: 1 KiB → ~1 GiB in ×4 steps.
    pub fn bytes_default() -> Self {
        Self::exponential(1024.0, 4.0, 11)
    }

    /// A ladder suited to durations in seconds: 1 ms → ~32 s in ×2 steps.
    pub fn seconds_default() -> Self {
        Self::exponential(0.001, 2.0, 16)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .partition_point(|&b| b < v)
            .min(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket upper bounds (excluding the implicit +Inf bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket (non-cumulative) counts, +Inf bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative counts as Prometheus exposition wants them: one per
    /// bound, +Inf last, each including every smaller bucket.
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.bucket_counts()
            .into_iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the bucket the rank falls into — the same
    /// estimate `histogram_quantile` would compute from the exposition.
    /// Returns `None` while the histogram is empty. A rank landing in
    /// the +Inf bucket reports the last finite bound (the estimate is
    /// clamped, exactly as Prometheus clamps it).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let counts = self.bucket_counts();
        let bounds = &self.inner.bounds;
        let mut below = 0.0f64;
        for (i, &c) in counts.iter().enumerate() {
            let here = c as f64;
            if below + here >= rank && c > 0 {
                let upper = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                if !upper.is_finite() {
                    return Some(*bounds.last().expect("at least one bound"));
                }
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let frac = ((rank - below) / here).clamp(0.0, 1.0);
                return Some(lower + frac * (upper - lower));
            }
            below += here;
        }
        Some(*bounds.last().expect("at least one bound"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        h.observe(0.5); // ≤ 1
        h.observe(1.0); // ≤ 1 (inclusive upper bound)
        h.observe(5.0); // ≤ 10
        h.observe(1000.0); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 1, 0, 1]);
        assert_eq!(h.cumulative_counts(), vec![2, 3, 3, 4]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 1006.5).abs() < 1e-9);
    }

    #[test]
    fn exponential_ladder_grows_by_factor() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn concurrent_observation_is_lossless() {
        let h = Histogram::mbps_default();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..1000 {
                        h.observe((i * 1000 + k) as f64 / 100.0);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.cumulative_counts().last().copied(), Some(4000));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for v in [0.5, 1.5, 1.6, 3.0] {
            h.observe(v);
        }
        // Rank 2 of 4 falls in the (1, 2] bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        // The top of the distribution sits in the (2, 4] bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!((2.0..=4.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantile_clamps_overflow_to_last_bound() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(100.0); // +Inf bucket
        assert_eq!(h.quantile(0.99), Some(2.0));
    }
}
