//! Service-layer metrics: session admission, overload shedding, and
//! test-completion latency for the long-running Swiftest BTS service.
//!
//! The wire server's admission controller and the `mbw-bench` load
//! harness both report through [`ServiceMetrics`], so a scrape of
//! `/metrics` reads the same vocabulary whether the sessions are real
//! loopback sockets or tens of thousands of simulated clients:
//!
//! - `swiftest_service_admitted_total` / `swiftest_service_rejected_total{reason=...}`
//!   — admission outcomes, rejections broken down by typed reason
//!   (`bad_token` / `capacity` / `rate_limited` / `overloaded` /
//!   `draining`);
//! - `swiftest_service_sessions_inflight` / `swiftest_service_peak_inflight`
//!   — live and high-water concurrent admitted sessions;
//! - `swiftest_service_shed_state` — the load-shedding state machine's
//!   current state (0 = normal, 1 = shedding, 2 = drain);
//! - `swiftest_service_shed_transitions_total{to=...}` — state-machine
//!   transitions; `to="normal"` counts recoveries;
//! - `swiftest_service_completed_total` / `swiftest_service_degraded_total`
//!   / `swiftest_service_failed_total` — how admitted sessions ended;
//! - `swiftest_service_completion_seconds` — test-completion latency
//!   histogram (admission to final estimate), the series p50/p99 are
//!   scraped from;
//! - `swiftest_service_log_records_total` — results-log records
//!   appended (the zero-accepted-session-loss invariant is
//!   `admitted_total == log_records_total` after a drain).

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;
use std::time::Duration;

/// The typed rejection-reason labels, in wire-protocol order.
pub const REJECT_REASON_LABELS: [&str; 5] = [
    "bad_token",
    "capacity",
    "rate_limited",
    "overloaded",
    "draining",
];

/// The shed-state labels, indexed by the state gauge's value.
pub const SHED_STATE_LABELS: [&str; 3] = ["normal", "shedding", "drain"];

/// Metric handles for one Swiftest service instance (server or load
/// harness). Cheap to clone; all clones share the same series.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    admitted: Counter,
    rejected: [Counter; 5],
    inflight: Gauge,
    peak_inflight: Gauge,
    shed_state: Gauge,
    shed_transitions: [Counter; 3],
    completed: Counter,
    degraded: Counter,
    failed: Counter,
    completion_seconds: Histogram,
    log_records: Counter,
}

impl ServiceMetrics {
    /// Register (or re-attach to) the service series in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            admitted: registry.counter(
                "swiftest_service_admitted_total",
                "Sessions granted admission",
            ),
            rejected: REJECT_REASON_LABELS.map(|reason| {
                registry.counter_with(
                    "swiftest_service_rejected_total",
                    "Sessions rejected at admission, by typed reason",
                    &[("reason", reason)],
                )
            }),
            inflight: registry.gauge(
                "swiftest_service_sessions_inflight",
                "Currently admitted, unfinished sessions",
            ),
            peak_inflight: registry.gauge(
                "swiftest_service_peak_inflight",
                "High-water mark of concurrent admitted sessions",
            ),
            shed_state: registry.gauge(
                "swiftest_service_shed_state",
                "Load-shedding state (0 = normal, 1 = shedding, 2 = drain)",
            ),
            shed_transitions: SHED_STATE_LABELS.map(|to| {
                registry.counter_with(
                    "swiftest_service_shed_transitions_total",
                    "Shedding state-machine transitions; to=\"normal\" counts recoveries",
                    &[("to", to)],
                )
            }),
            completed: registry.counter(
                "swiftest_service_completed_total",
                "Admitted sessions that finished with a converged estimate",
            ),
            degraded: registry.counter(
                "swiftest_service_degraded_total",
                "Admitted sessions that finished with a partial (degraded) estimate",
            ),
            failed: registry.counter(
                "swiftest_service_failed_total",
                "Admitted sessions that produced no usable estimate",
            ),
            completion_seconds: registry.histogram(
                "swiftest_service_completion_seconds",
                "Test-completion latency, admission to final estimate",
                Histogram::seconds_default(),
            ),
            log_records: registry.counter(
                "swiftest_service_log_records_total",
                "Records appended to the results log",
            ),
        }
    }

    /// Record one admission grant and the resulting inflight count.
    pub fn observe_admitted(&self, inflight_now: usize) {
        self.admitted.inc();
        self.set_inflight(inflight_now);
    }

    /// Record one typed rejection. `reason` indexes
    /// [`REJECT_REASON_LABELS`]; out-of-range indices are ignored.
    pub fn observe_rejected(&self, reason: usize) {
        if let Some(c) = self.rejected.get(reason) {
            c.inc();
        }
    }

    /// Update the inflight gauge (and the peak, monotonically).
    pub fn set_inflight(&self, inflight_now: usize) {
        let v = inflight_now as f64;
        self.inflight.set(v);
        if v > self.peak_inflight.get() {
            self.peak_inflight.set(v);
        }
    }

    /// Record a shed-state transition into state `to` (an index into
    /// [`SHED_STATE_LABELS`]); out-of-range indices are ignored.
    pub fn observe_shed_transition(&self, to: usize) {
        if let Some(c) = self.shed_transitions.get(to) {
            c.inc();
            self.shed_state.set(to as f64);
        }
    }

    /// Record one finished admitted session: its completion latency and
    /// how it ended (`complete` = converged, `usable` = at least a
    /// partial estimate).
    pub fn observe_session_end(&self, latency: Duration, complete: bool, usable: bool) {
        self.completion_seconds.observe(latency.as_secs_f64());
        if complete {
            self.completed.inc();
        } else if usable {
            self.degraded.inc();
        } else {
            self.failed.inc();
        }
    }

    /// Record `n` results-log appends.
    pub fn observe_log_records(&self, n: u64) {
        self.log_records.add(n);
    }

    /// Sessions granted admission so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.get()
    }

    /// Total typed rejections so far, across every reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().map(Counter::get).sum()
    }

    /// Finished admitted sessions so far (complete + degraded + failed).
    pub fn finished_total(&self) -> u64 {
        self.completed.get() + self.degraded.get() + self.failed.get()
    }

    /// Results-log records appended so far.
    pub fn log_records_total(&self) -> u64 {
        self.log_records.get()
    }

    /// The completion-latency histogram (for quantile scrapes).
    pub fn completion_seconds(&self) -> &Histogram {
        &self.completion_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_counters_and_peak_track() {
        let r = Registry::new();
        let m = ServiceMetrics::register(&r);
        m.observe_admitted(1);
        m.observe_admitted(2);
        m.set_inflight(1);
        m.observe_rejected(0);
        m.observe_rejected(3);
        m.observe_rejected(99); // ignored
        assert_eq!(m.admitted_total(), 2);
        assert_eq!(m.rejected_total(), 2);
        let text = r.render_prometheus();
        assert!(text.contains("swiftest_service_peak_inflight 2"), "{text}");
        assert!(
            text.contains("swiftest_service_sessions_inflight 1"),
            "{text}"
        );
        assert!(
            text.contains("swiftest_service_rejected_total{reason=\"bad_token\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("swiftest_service_rejected_total{reason=\"overloaded\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn shed_transitions_and_session_ends_are_typed() {
        let r = Registry::new();
        let m = ServiceMetrics::register(&r);
        m.observe_shed_transition(1);
        m.observe_shed_transition(0);
        m.observe_session_end(Duration::from_millis(800), true, true);
        m.observe_session_end(Duration::from_millis(4500), false, true);
        m.observe_session_end(Duration::from_millis(100), false, false);
        m.observe_log_records(3);
        assert_eq!(m.finished_total(), 3);
        assert_eq!(m.log_records_total(), 3);
        let text = r.render_prometheus();
        assert!(
            text.contains("swiftest_service_shed_transitions_total{to=\"shedding\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("swiftest_service_shed_transitions_total{to=\"normal\"} 1"),
            "{text}"
        );
        assert!(text.contains("swiftest_service_shed_state 0"), "{text}");
        assert!(
            text.contains("swiftest_service_completed_total 1"),
            "{text}"
        );
        assert!(text.contains("swiftest_service_degraded_total 1"), "{text}");
        assert!(text.contains("swiftest_service_failed_total 1"), "{text}");
        assert!(
            m.completion_seconds().quantile(0.5).is_some(),
            "latency histogram populated"
        );
    }
}
