//! The named metric registry and its Prometheus text exposition.
//!
//! A [`Registry`] is a cheap-to-clone handle to a shared, mutex-guarded
//! metric table. Registration is get-or-create: asking twice for the
//! same `(name, labels)` returns a handle to the same underlying atomic,
//! which is what lets the wire server, the pacing tasks, and an HTTP
//! exporter all talk about `swiftest_tx_bytes_total` without passing
//! handles around.
//!
//! Naming follows the Prometheus conventions used throughout this repo:
//! `<subsystem>_<quantity>_<unit>[_total]`, e.g.
//! `swiftest_sessions_started_total`, `netsim_link_delivered_packets`.
//! The lock is held only during registration and rendering — never on
//! the increment path (the handles are lock-free atomics).

use crate::histogram::Histogram;
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Label pairs attached to one metric instance (sorted at registration
/// so `{a="1",b="2"}` and `{b="2",a="1"}` are the same series).
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn type_name(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    /// Instances keyed by label set; BTreeMap keeps exposition
    /// deterministic.
    instances: BTreeMap<Labels, Slot>,
}

/// A shared, named metric registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Lock the family table, recovering from a poisoned mutex (a panicking
/// registrant must not take the whole exporter down with it).
fn lock(m: &Mutex<BTreeMap<String, Family>>) -> MutexGuard<'_, BTreeMap<String, Family>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn normalise_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// Escape a label value for exposition (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape HELP text for exposition. The text-format spec escapes only
/// backslash and newline here — quotes are legal in help text.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Render an f64 the way Prometheus text format expects.
fn render_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Slot) -> Slot {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = normalise_labels(labels);
        let mut families = lock(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            instances: BTreeMap::new(),
        });
        let slot = family.instances.entry(labels).or_insert(make);
        slot.clone()
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a labelled counter.
    ///
    /// # Panics
    /// Panics if `name` is not a legal metric name, or if the series
    /// already exists with a different metric type.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.slot(name, help, labels, Slot::Counter(Counter::new())) {
            Slot::Counter(c) => c,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a labelled gauge.
    ///
    /// # Panics
    /// Panics on an illegal name or a type clash with an existing series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.slot(name, help, labels, Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Get-or-create an unlabelled histogram; `proto` supplies the
    /// bucket ladder on first registration and is discarded afterwards.
    pub fn histogram(&self, name: &str, help: &str, proto: Histogram) -> Histogram {
        self.histogram_with(name, help, &[], proto)
    }

    /// Get-or-create a labelled histogram.
    ///
    /// # Panics
    /// Panics on an illegal name or a type clash with an existing series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        proto: Histogram,
    ) -> Histogram {
        match self.slot(name, help, labels, Slot::Histogram(proto)) {
            Slot::Histogram(h) => h,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Render every metric in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`). Output is deterministic: families
    /// and series are sorted by name and label set.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = lock(&self.families);
        for (name, family) in families.iter() {
            let type_name = family
                .instances
                .values()
                .next()
                .map_or("untyped", Slot::type_name);
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {type_name}\n"));
            for (labels, slot) in &family.instances {
                match slot {
                    Slot::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", render_labels(labels), c.get()));
                    }
                    Slot::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels),
                            render_f64(g.get())
                        ));
                    }
                    Slot::Histogram(h) => {
                        let cumulative = h.cumulative_counts();
                        for (i, upper) in h
                            .bounds()
                            .iter()
                            .copied()
                            .chain(std::iter::once(f64::INFINITY))
                            .enumerate()
                        {
                            let mut le = labels.clone();
                            le.push(("le".into(), render_f64(upper)));
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                render_labels(&le),
                                cumulative[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels),
                            render_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("demo_total", "a demo");
        let b = r.counter("demo_total", "a demo");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let wifi = r.counter_with("tests_total", "tests", &[("tech", "wifi")]);
        let lte = r.counter_with("tests_total", "tests", &[("tech", "4g")]);
        wifi.add(3);
        lte.add(1);
        let text = r.render_prometheus();
        assert!(text.contains("tests_total{tech=\"wifi\"} 3"), "{text}");
        assert!(text.contains("tests_total{tech=\"4g\"} 1"), "{text}");
    }

    #[test]
    fn exposition_is_valid_prometheus_shape() {
        let r = Registry::new();
        r.counter("c_total", "counter help").add(7);
        r.gauge("g_now", "gauge help").set(1.5);
        let h = r.histogram(
            "h_mbps",
            "histogram help",
            Histogram::with_bounds(vec![1.0, 8.0]),
        );
        h.observe(0.5);
        h.observe(100.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 7"));
        assert!(text.contains("# TYPE g_now gauge"));
        assert!(text.contains("g_now 1.5"));
        assert!(text.contains("h_mbps_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_mbps_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("h_mbps_count 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.split(' ').count() == 2, "bad line {line:?}");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = Registry::new();
        r.counter_with("z_total", "z", &[("b", "2")]).inc();
        r.counter_with("z_total", "z", &[("a", "1")]).inc();
        r.counter("a_total", "a").inc();
        assert_eq!(r.render_prometheus(), r.render_prometheus());
        let text = r.render_prometheus();
        let a_pos = text.find("a_total").unwrap();
        let z_pos = text.find("z_total").unwrap();
        assert!(a_pos < z_pos, "families must be name-sorted");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("1bad name", "nope");
    }

    #[test]
    fn label_values_are_escaped_per_spec() {
        let r = Registry::new();
        r.counter_with("esc_total", "esc", &[("path", "C:\\tmp\ntail \"q\"")])
            .inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("esc_total{path=\"C:\\\\tmp\\ntail \\\"q\\\"\"} 1"),
            "{text}"
        );
        // The raw newline in the label value must not split the series
        // line: exactly HELP + TYPE + one series line.
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn help_text_is_escaped_per_spec() {
        let r = Registry::new();
        r.counter("multi_total", "first line\nsecond \\ line").inc();
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP multi_total first line\\nsecond \\\\ line\n"),
            "{text}"
        );
        // The newline in the help text must not split the comment line.
        assert_eq!(text.lines().filter(|l| l.starts_with("# HELP")).count(), 1);
    }

    #[test]
    fn help_and_type_render_once_per_family_with_interleaved_series() {
        // Register labelled series of two families in interleaved order;
        // exposition must still group each family under exactly one
        // HELP/TYPE pair.
        let r = Registry::new();
        r.counter_with("a_total", "a", &[("t", "2")]).inc();
        r.counter_with("b_total", "b", &[("t", "1")]).inc();
        r.counter_with("a_total", "a", &[("t", "1")]).inc();
        r.counter_with("b_total", "b", &[("t", "2")]).inc();
        r.counter_with("a_total", "a", &[("t", "3")]).inc();
        let text = r.render_prometheus();
        for family in ["a_total", "b_total"] {
            let help = format!("# HELP {family} ");
            let typ = format!("# TYPE {family} ");
            assert_eq!(
                text.matches(&help).count(),
                1,
                "HELP for {family} must appear once:\n{text}"
            );
            assert_eq!(
                text.matches(&typ).count(),
                1,
                "TYPE for {family} must appear once:\n{text}"
            );
        }
        // Every series line of a family sits contiguously after its
        // TYPE line (no re-interleaving).
        let lines: Vec<&str> = text.lines().collect();
        let first_b = lines.iter().position(|l| l.starts_with("b_total")).unwrap();
        let last_a = lines
            .iter()
            .rposition(|l| l.starts_with("a_total"))
            .unwrap();
        assert!(last_a < first_b, "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_clashes_are_rejected() {
        let r = Registry::new();
        r.counter("clash", "as counter");
        r.gauge("clash", "as gauge");
    }
}
