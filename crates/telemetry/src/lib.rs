#![warn(missing_docs)]
//! Telemetry substrate: metrics, probe timelines, and exposition.
//!
//! The paper's headline results hinge on *why* a bandwidth test
//! converged — per-chunk arrival dynamics, retries, failovers — not just
//! the final number (MONROE-Nettest makes the same argument for
//! dissecting speed-test internals). This crate is the one mechanism
//! every other layer reports through:
//!
//! - [`metrics`] — atomic [`Counter`] / [`Gauge`] handles, cheap to
//!   clone, lock-free to update.
//! - [`histogram`] — a log-bucketed [`Histogram`] for quantities that
//!   span orders of magnitude (window goodput, session bytes).
//! - [`registry`] — the named [`Registry`] with deterministic Prometheus
//!   text exposition; get-or-create registration so independent layers
//!   share series by name.
//! - [`timeline`] — the per-test [`ProbeTimeline`] recorder: per-chunk
//!   timestamps, instantaneous-throughput samples, rate escalations, and
//!   the convergence trajectory, exportable as deterministic JSON.
//! - [`clock`] — the [`Clock`] abstraction that lets the same recorder
//!   observe wall-time wire tests and virtual-time `mbw-netsim` runs.
//! - [`http`] — a dependency-free HTTP listener serving the registry at
//!   `/metrics` in Prometheus text format.
//! - [`pipeline`] — shared counters and throughput gauges for the
//!   record-generation and figure-analysis stages of the measurement
//!   pipeline.
//! - [`service`] — the Swiftest-as-a-service vocabulary: admission
//!   grants/rejections by typed reason, shed-state transitions,
//!   inflight/peak session gauges, and completion-latency histograms,
//!   shared by the wire server and the load harness.
//! - [`trace`] — the causal span [`Tracer`]: thread-local ring buffers
//!   draining into a lock-free collector, exported as Perfetto-loadable
//!   Chrome trace JSON, a text self-profile with slow-span budgets, and
//!   span-duration series in the registry.
//!
//! No heavy dependencies by design: the whole crate is std +
//! `parking_lot`, so it can sit under the simulator, the tokio wire
//! stack, and the CLI without pulling an observability framework into
//! the hot path.

pub mod campaign;
pub mod clock;
pub mod histogram;
pub mod http;
pub mod metrics;
pub mod pipeline;
pub mod registry;
pub mod service;
pub mod timeline;
pub mod trace;

pub use campaign::CampaignMetrics;
pub use clock::{Clock, ManualClock, WallClock};
pub use histogram::Histogram;
pub use http::MetricsServer;
pub use metrics::{Counter, Gauge};
pub use pipeline::PipelineMetrics;
pub use registry::Registry;
pub use service::ServiceMetrics;
pub use timeline::{ProbeTimeline, TimelineEntry, TimelineEvent, TimelineSummary};
pub use trace::{LocalTracer, OpenSpan, SpanBudgets, SpanRecord, Tracer};
