//! Per-test probe timelines.
//!
//! A final bandwidth number says *what* a test concluded; the timeline
//! says *why*: when each chunk of data arrived, how instantaneous
//! throughput moved, where the probing rate was escalated, and when the
//! convergence rule fired (the raw material behind the paper's Figs
//! 17–26). The recorder is deliberately dumb — an ordered event list
//! with nanosecond timestamps supplied by the caller (see
//! [`crate::clock`]) — so a fixed-seed simulated run serialises to
//! byte-identical JSON every time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded occurrence in a test's life.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A chunk of test data arrived (one datagram on the wire, one
    /// integration step in the simulator).
    Chunk {
        /// Payload bytes delivered.
        bytes: u64,
    },
    /// One instantaneous-throughput sample (the 50 ms window).
    Sample {
        /// Goodput over the window, Mbps.
        mbps: f64,
    },
    /// The prober escalated (or otherwise changed) its probing rate.
    RateChange {
        /// New probing rate, Mbps.
        mbps: f64,
    },
    /// A named phase began (`ping`, `probe`, `converge`).
    Phase {
        /// Phase name.
        name: String,
    },
    /// The stream went silent past the stall threshold.
    Stall,
    /// The client abandoned a server and moved to the next candidate.
    Failover {
        /// How many servers have been abandoned so far (1-based).
        attempt: u32,
    },
    /// A retry round (e.g. a dead PING round retried with backoff).
    Retry {
        /// Retry round number (1-based).
        round: u32,
    },
    /// The stop rule fired.
    Converged {
        /// The converged estimate, Mbps.
        estimate_mbps: f64,
    },
}

impl TimelineEvent {
    fn kind(&self) -> &'static str {
        match self {
            TimelineEvent::Chunk { .. } => "chunk",
            TimelineEvent::Sample { .. } => "sample",
            TimelineEvent::RateChange { .. } => "rate_change",
            TimelineEvent::Phase { .. } => "phase",
            TimelineEvent::Stall => "stall",
            TimelineEvent::Failover { .. } => "failover",
            TimelineEvent::Retry { .. } => "retry",
            TimelineEvent::Converged { .. } => "converged",
        }
    }
}

/// A timestamped [`TimelineEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Nanoseconds since the test's epoch (wall or simulated).
    pub at_ns: u64,
    /// What happened.
    pub event: TimelineEvent,
}

/// Closing summary written by [`ProbeTimeline::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// The test's final estimate, Mbps.
    pub estimate_mbps: f64,
    /// Completion status (`complete` / `degraded:…` / `failed:…`).
    pub status: String,
    /// Total recorded duration, nanoseconds.
    pub duration_ns: u64,
}

/// Default cap on recorded events; a 10 s flood at line rate generates
/// millions of chunks, and the tail of a runaway recorder is noise.
const DEFAULT_EVENT_LIMIT: usize = 262_144;

/// An ordered per-test event recorder, exportable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeTimeline {
    meta: BTreeMap<String, String>,
    entries: Vec<TimelineEntry>,
    limit: usize,
    dropped: u64,
    summary: Option<TimelineSummary>,
}

impl Default for ProbeTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeTimeline {
    /// An empty timeline with the default event cap.
    pub fn new() -> Self {
        Self {
            meta: BTreeMap::new(),
            entries: Vec::new(),
            limit: DEFAULT_EVENT_LIMIT,
            dropped: 0,
            summary: None,
        }
    }

    /// Override the event cap (events past it are counted, not stored).
    pub fn with_event_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Attach a metadata key (service kind, technology, seed, server…).
    pub fn annotate(&mut self, key: &str, value: &str) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    /// Record one event at the given timestamp.
    pub fn record(&mut self, at_ns: u64, event: TimelineEvent) {
        if self.entries.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        self.entries.push(TimelineEntry { at_ns, event });
    }

    /// Record a data-chunk arrival.
    pub fn record_chunk(&mut self, at_ns: u64, bytes: u64) {
        self.record(at_ns, TimelineEvent::Chunk { bytes });
    }

    /// Record an instantaneous-throughput sample.
    pub fn record_sample(&mut self, at_ns: u64, mbps: f64) {
        self.record(at_ns, TimelineEvent::Sample { mbps });
    }

    /// Record a probing-rate change.
    pub fn record_rate(&mut self, at_ns: u64, mbps: f64) {
        self.record(at_ns, TimelineEvent::RateChange { mbps });
    }

    /// Record the start of a named phase.
    pub fn record_phase(&mut self, at_ns: u64, name: &str) {
        self.record(
            at_ns,
            TimelineEvent::Phase {
                name: name.to_string(),
            },
        );
    }

    /// Close the timeline with the test's outcome.
    pub fn finish(&mut self, at_ns: u64, estimate_mbps: f64, status: &str) {
        self.summary = Some(TimelineSummary {
            estimate_mbps,
            status: status.to_string(),
            duration_ns: at_ns,
        });
    }

    /// The recorded events, in order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Attached metadata.
    pub fn meta(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    /// The closing summary, if [`finish`](Self::finish) was called.
    pub fn summary(&self) -> Option<&TimelineSummary> {
        self.summary.as_ref()
    }

    /// Events dropped by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The convergence trajectory: every throughput sample in order,
    /// `(at_ns, mbps)` — the series the stop rule watched.
    pub fn trajectory(&self) -> Vec<(u64, f64)> {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TimelineEvent::Sample { mbps } => Some((e.at_ns, mbps)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes across recorded chunk events.
    pub fn chunk_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TimelineEvent::Chunk { bytes } => Some(bytes),
                _ => None,
            })
            .sum()
    }

    /// Serialise to a single JSON document.
    ///
    /// The output is deterministic: metadata keys are sorted, events keep
    /// insertion order, and floats use Rust's shortest round-trip
    /// formatting — a fixed-seed simulated run yields byte-identical
    /// JSON on every serialisation.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        out.push_str("{\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_ns\":{},\"kind\":\"{}\"",
                e.at_ns,
                e.event.kind()
            );
            match &e.event {
                TimelineEvent::Chunk { bytes } => {
                    let _ = write!(out, ",\"bytes\":{bytes}");
                }
                TimelineEvent::Sample { mbps } | TimelineEvent::RateChange { mbps } => {
                    let _ = write!(out, ",\"mbps\":{}", json_f64(*mbps));
                }
                TimelineEvent::Phase { name } => {
                    let _ = write!(out, ",\"name\":{}", json_string(name));
                }
                TimelineEvent::Stall => {}
                TimelineEvent::Failover { attempt } => {
                    let _ = write!(out, ",\"attempt\":{attempt}");
                }
                TimelineEvent::Retry { round } => {
                    let _ = write!(out, ",\"round\":{round}");
                }
                TimelineEvent::Converged { estimate_mbps } => {
                    let _ = write!(out, ",\"estimate_mbps\":{}", json_f64(*estimate_mbps));
                }
            }
            out.push('}');
        }
        let _ = write!(out, "],\"dropped_events\":{}", self.dropped);
        if let Some(s) = &self.summary {
            let _ = write!(
                out,
                ",\"summary\":{{\"estimate_mbps\":{},\"status\":{},\"duration_ns\":{}}}",
                json_f64(s.estimate_mbps),
                json_string(&s.status),
                s.duration_ns
            );
        }
        out.push('}');
        out
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (non-finite values become `null`,
/// which JSON cannot express as a number).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> ProbeTimeline {
        let mut t = ProbeTimeline::new();
        t.annotate("kind", "swiftest");
        t.annotate("tech", "5g");
        t.record_phase(0, "probe");
        t.record_chunk(1_000_000, 1400);
        t.record_sample(50_000_000, 212.5);
        t.record_rate(50_000_000, 320.0);
        t.record(
            60_000_000,
            TimelineEvent::Converged {
                estimate_mbps: 212.5,
            },
        );
        t.finish(60_000_000, 212.5, "complete");
        t
    }

    #[test]
    fn json_has_the_expected_shape() {
        let json = sample_timeline().to_json();
        assert!(json.starts_with("{\"meta\":{"), "{json}");
        assert!(json.contains("\"kind\":\"chunk\",\"bytes\":1400"), "{json}");
        assert!(
            json.contains("\"kind\":\"sample\",\"mbps\":212.5"),
            "{json}"
        );
        assert!(json.contains("\"status\":\"complete\""), "{json}");
        assert!(json.contains("\"tech\":\"5g\""), "{json}");
        // Balanced braces / brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn serialisation_is_deterministic() {
        let t = sample_timeline();
        assert_eq!(t.to_json(), t.to_json());
        assert_eq!(t.to_json(), sample_timeline().to_json());
    }

    #[test]
    fn trajectory_and_chunk_totals() {
        let t = sample_timeline();
        assert_eq!(t.trajectory(), vec![(50_000_000, 212.5)]);
        assert_eq!(t.chunk_bytes(), 1400);
    }

    #[test]
    fn event_cap_counts_overflow() {
        let mut t = ProbeTimeline::new().with_event_limit(2);
        for i in 0..5 {
            t.record_chunk(i, 100);
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_json().contains("\"dropped_events\":3"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = ProbeTimeline::new();
        t.annotate("server", "127.0.0.1:9\"quote\"\n");
        let json = t.to_json();
        assert!(json.contains("\\\"quote\\\"\\n"), "{json}");
    }
}
