//! Per-test probe timelines.
//!
//! A final bandwidth number says *what* a test concluded; the timeline
//! says *why*: when each chunk of data arrived, how instantaneous
//! throughput moved, where the probing rate was escalated, and when the
//! convergence rule fired (the raw material behind the paper's Figs
//! 17–26). The recorder is deliberately dumb — an ordered event list
//! with nanosecond timestamps supplied by the caller (see
//! [`crate::clock`]) — so a fixed-seed simulated run serialises to
//! byte-identical JSON every time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded occurrence in a test's life.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A chunk of test data arrived (one datagram on the wire, one
    /// integration step in the simulator).
    Chunk {
        /// Payload bytes delivered.
        bytes: u64,
    },
    /// One instantaneous-throughput sample (the 50 ms window).
    Sample {
        /// Goodput over the window, Mbps.
        mbps: f64,
    },
    /// The prober escalated (or otherwise changed) its probing rate.
    RateChange {
        /// New probing rate, Mbps.
        mbps: f64,
    },
    /// A named phase began (`ping`, `probe`, `converge`).
    Phase {
        /// Phase name.
        name: String,
    },
    /// The stream went silent past the stall threshold.
    Stall,
    /// The client abandoned a server and moved to the next candidate.
    Failover {
        /// How many servers have been abandoned so far (1-based).
        attempt: u32,
    },
    /// A retry round (e.g. a dead PING round retried with backoff).
    Retry {
        /// Retry round number (1-based).
        round: u32,
    },
    /// The stop rule fired.
    Converged {
        /// The converged estimate, Mbps.
        estimate_mbps: f64,
    },
}

impl TimelineEvent {
    fn kind(&self) -> &'static str {
        match self {
            TimelineEvent::Chunk { .. } => "chunk",
            TimelineEvent::Sample { .. } => "sample",
            TimelineEvent::RateChange { .. } => "rate_change",
            TimelineEvent::Phase { .. } => "phase",
            TimelineEvent::Stall => "stall",
            TimelineEvent::Failover { .. } => "failover",
            TimelineEvent::Retry { .. } => "retry",
            TimelineEvent::Converged { .. } => "converged",
        }
    }
}

/// A timestamped [`TimelineEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Nanoseconds since the test's epoch (wall or simulated).
    pub at_ns: u64,
    /// What happened.
    pub event: TimelineEvent,
}

/// Closing summary written by [`ProbeTimeline::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// The test's final estimate, Mbps.
    pub estimate_mbps: f64,
    /// Completion status (`complete` / `degraded:…` / `failed:…`).
    pub status: String,
    /// Total recorded duration, nanoseconds.
    pub duration_ns: u64,
}

/// Default cap on recorded events; a 10 s flood at line rate generates
/// millions of chunks, and the tail of a runaway recorder is noise.
const DEFAULT_EVENT_LIMIT: usize = 262_144;

/// An ordered per-test event recorder, exportable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeTimeline {
    meta: BTreeMap<String, String>,
    entries: Vec<TimelineEntry>,
    limit: usize,
    dropped: u64,
    summary: Option<TimelineSummary>,
}

impl Default for ProbeTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeTimeline {
    /// An empty timeline with the default event cap.
    pub fn new() -> Self {
        Self {
            meta: BTreeMap::new(),
            entries: Vec::new(),
            limit: DEFAULT_EVENT_LIMIT,
            dropped: 0,
            summary: None,
        }
    }

    /// Override the event cap (events past it are counted, not stored).
    pub fn with_event_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Attach a metadata key (service kind, technology, seed, server…).
    pub fn annotate(&mut self, key: &str, value: &str) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    /// Record one event at the given timestamp.
    pub fn record(&mut self, at_ns: u64, event: TimelineEvent) {
        if self.entries.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        self.entries.push(TimelineEntry { at_ns, event });
    }

    /// Record a data-chunk arrival.
    pub fn record_chunk(&mut self, at_ns: u64, bytes: u64) {
        self.record(at_ns, TimelineEvent::Chunk { bytes });
    }

    /// Record an instantaneous-throughput sample.
    pub fn record_sample(&mut self, at_ns: u64, mbps: f64) {
        self.record(at_ns, TimelineEvent::Sample { mbps });
    }

    /// Record a probing-rate change.
    pub fn record_rate(&mut self, at_ns: u64, mbps: f64) {
        self.record(at_ns, TimelineEvent::RateChange { mbps });
    }

    /// Record the start of a named phase.
    pub fn record_phase(&mut self, at_ns: u64, name: &str) {
        self.record(
            at_ns,
            TimelineEvent::Phase {
                name: name.to_string(),
            },
        );
    }

    /// Close the timeline with the test's outcome.
    pub fn finish(&mut self, at_ns: u64, estimate_mbps: f64, status: &str) {
        self.summary = Some(TimelineSummary {
            estimate_mbps,
            status: status.to_string(),
            duration_ns: at_ns,
        });
    }

    /// The recorded events, in order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Fold another timeline into this one: entries are appended (the
    /// cap still applies, overflow is counted), metadata keys are
    /// union-merged (existing keys win), drop counts add, and the later
    /// summary (by recorded duration) is kept. Call
    /// [`canonicalize`](Self::canonicalize) afterwards to restore the
    /// deterministic export order — per-thread recorders merged in any
    /// order then serialise byte-identically.
    pub fn merge_from(&mut self, other: &ProbeTimeline) {
        for (k, v) in &other.meta {
            self.meta.entry(k.clone()).or_insert_with(|| v.clone());
        }
        for e in &other.entries {
            self.record(e.at_ns, e.event.clone());
        }
        self.dropped += other.dropped;
        match (&self.summary, &other.summary) {
            (None, Some(s)) => self.summary = Some(s.clone()),
            (Some(mine), Some(theirs)) if theirs.duration_ns > mine.duration_ns => {
                self.summary = Some(theirs.clone());
            }
            _ => {}
        }
    }

    /// Sort entries into a canonical total order: by timestamp, ties
    /// broken by the entry's rendered JSON. Any interleaving of a fixed
    /// event set becomes the same sequence, so [`to_json`](Self::to_json)
    /// is byte-stable no matter which thread recorded what first.
    pub fn canonicalize(&mut self) {
        self.entries.sort_by(|a, b| {
            a.at_ns
                .cmp(&b.at_ns)
                .then_with(|| entry_json(a).cmp(&entry_json(b)))
        });
    }

    /// Attached metadata.
    pub fn meta(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    /// The closing summary, if [`finish`](Self::finish) was called.
    pub fn summary(&self) -> Option<&TimelineSummary> {
        self.summary.as_ref()
    }

    /// Events dropped by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The convergence trajectory: every throughput sample in order,
    /// `(at_ns, mbps)` — the series the stop rule watched.
    pub fn trajectory(&self) -> Vec<(u64, f64)> {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TimelineEvent::Sample { mbps } => Some((e.at_ns, mbps)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes across recorded chunk events.
    pub fn chunk_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                TimelineEvent::Chunk { bytes } => Some(bytes),
                _ => None,
            })
            .sum()
    }

    /// Serialise to a single JSON document.
    ///
    /// The output is deterministic: metadata keys are sorted, events keep
    /// insertion order, and floats use Rust's shortest round-trip
    /// formatting — a fixed-seed simulated run yields byte-identical
    /// JSON on every serialisation.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 48);
        out.push_str("{\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry_json(e));
        }
        let _ = write!(out, "],\"dropped_events\":{}", self.dropped);
        if let Some(s) = &self.summary {
            let _ = write!(
                out,
                ",\"summary\":{{\"estimate_mbps\":{},\"status\":{},\"duration_ns\":{}}}",
                json_f64(s.estimate_mbps),
                json_string(&s.status),
                s.duration_ns
            );
        }
        out.push('}');
        out
    }
}

/// One entry's JSON object — shared by serialisation and the canonical
/// sort (the rendered form is the tie-break key, giving a total order
/// over arbitrary thread interleavings).
fn entry_json(e: &TimelineEntry) -> String {
    let mut out = String::with_capacity(48);
    let _ = write!(
        out,
        "{{\"at_ns\":{},\"kind\":\"{}\"",
        e.at_ns,
        e.event.kind()
    );
    match &e.event {
        TimelineEvent::Chunk { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        TimelineEvent::Sample { mbps } | TimelineEvent::RateChange { mbps } => {
            let _ = write!(out, ",\"mbps\":{}", json_f64(*mbps));
        }
        TimelineEvent::Phase { name } => {
            let _ = write!(out, ",\"name\":{}", json_string(name));
        }
        TimelineEvent::Stall => {}
        TimelineEvent::Failover { attempt } => {
            let _ = write!(out, ",\"attempt\":{attempt}");
        }
        TimelineEvent::Retry { round } => {
            let _ = write!(out, ",\"round\":{round}");
        }
        TimelineEvent::Converged { estimate_mbps } => {
            let _ = write!(out, ",\"estimate_mbps\":{}", json_f64(*estimate_mbps));
        }
    }
    out.push('}');
    out
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (non-finite values become `null`,
/// which JSON cannot express as a number).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> ProbeTimeline {
        let mut t = ProbeTimeline::new();
        t.annotate("kind", "swiftest");
        t.annotate("tech", "5g");
        t.record_phase(0, "probe");
        t.record_chunk(1_000_000, 1400);
        t.record_sample(50_000_000, 212.5);
        t.record_rate(50_000_000, 320.0);
        t.record(
            60_000_000,
            TimelineEvent::Converged {
                estimate_mbps: 212.5,
            },
        );
        t.finish(60_000_000, 212.5, "complete");
        t
    }

    #[test]
    fn json_has_the_expected_shape() {
        let json = sample_timeline().to_json();
        assert!(json.starts_with("{\"meta\":{"), "{json}");
        assert!(json.contains("\"kind\":\"chunk\",\"bytes\":1400"), "{json}");
        assert!(
            json.contains("\"kind\":\"sample\",\"mbps\":212.5"),
            "{json}"
        );
        assert!(json.contains("\"status\":\"complete\""), "{json}");
        assert!(json.contains("\"tech\":\"5g\""), "{json}");
        // Balanced braces / brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn serialisation_is_deterministic() {
        let t = sample_timeline();
        assert_eq!(t.to_json(), t.to_json());
        assert_eq!(t.to_json(), sample_timeline().to_json());
    }

    #[test]
    fn trajectory_and_chunk_totals() {
        let t = sample_timeline();
        assert_eq!(t.trajectory(), vec![(50_000_000, 212.5)]);
        assert_eq!(t.chunk_bytes(), 1400);
    }

    #[test]
    fn event_cap_counts_overflow() {
        let mut t = ProbeTimeline::new().with_event_limit(2);
        for i in 0..5 {
            t.record_chunk(i, 100);
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_json().contains("\"dropped_events\":3"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = ProbeTimeline::new();
        t.annotate("server", "127.0.0.1:9\"quote\"\n");
        let json = t.to_json();
        assert!(json.contains("\\\"quote\\\"\\n"), "{json}");
    }

    #[test]
    fn merged_recorders_canonicalize_to_stable_json() {
        // Two per-thread recorders see disjoint slices of one event
        // set; merging them in either order must export identically.
        let mut a = ProbeTimeline::new();
        a.annotate("kind", "swiftest");
        a.record_chunk(10, 100);
        a.record_sample(30, 5.0);
        let mut b = ProbeTimeline::new();
        b.annotate("tech", "lte");
        b.record_rate(10, 8.0);
        b.record_chunk(20, 200);

        let mut ab = a.clone();
        ab.merge_from(&b);
        ab.canonicalize();
        let mut ba = b.clone();
        ba.merge_from(&a);
        ba.canonicalize();
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.entries().len(), 4);
        // Meta unions from both sides.
        assert!(ab.to_json().contains("\"kind\":\"swiftest\""));
        assert!(ab.to_json().contains("\"tech\":\"lte\""));
    }

    #[test]
    fn canonicalize_orders_equal_timestamps_totally() {
        // Same at_ns, different events: the rendered JSON breaks the
        // tie the same way regardless of insertion order.
        let mut x = ProbeTimeline::new();
        x.record_chunk(5, 1);
        x.record_sample(5, 2.0);
        x.record(5, TimelineEvent::Stall);
        let mut y = ProbeTimeline::new();
        y.record(5, TimelineEvent::Stall);
        y.record_sample(5, 2.0);
        y.record_chunk(5, 1);
        x.canonicalize();
        y.canonicalize();
        assert_eq!(x.to_json(), y.to_json());
    }

    #[test]
    fn merge_respects_the_event_cap_and_sums_drops() {
        let mut a = ProbeTimeline::new().with_event_limit(3);
        a.record_chunk(1, 1);
        a.record_chunk(2, 2);
        let mut b = ProbeTimeline::new();
        b.record_chunk(3, 3);
        b.record_chunk(4, 4);
        a.merge_from(&b);
        assert_eq!(a.entries().len(), 3);
        assert_eq!(a.dropped(), 1);
    }

    #[test]
    fn merge_keeps_the_longer_summary() {
        let mut a = ProbeTimeline::new();
        a.finish(100, 1.0, "complete");
        let mut b = ProbeTimeline::new();
        b.finish(500, 2.0, "complete");
        a.merge_from(&b);
        assert_eq!(a.summary().unwrap().duration_ns, 500);
        // And the reverse keeps its own longer summary.
        let mut c = ProbeTimeline::new();
        c.finish(900, 3.0, "complete");
        c.merge_from(&ProbeTimeline::new());
        assert_eq!(c.summary().unwrap().duration_ns, 900);
    }
}
