//! The clock abstraction that makes telemetry sim-time aware.
//!
//! Timeline recording needs timestamps, but the repo has two notions of
//! time: wall time (the tokio wire stack) and virtual time (`mbw-netsim`
//! simulations). A [`Clock`] yields nanoseconds-since-epoch from either
//! source, so the same [`crate::ProbeTimeline`] recorder observes both —
//! and a simulated run stamped from a [`ManualClock`] is bit-for-bit
//! reproducible under a fixed seed, which wall time never is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotone nanosecond timestamps.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// Wall time, measured from the moment the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A manually driven clock for simulations: the simulator advances it
/// as virtual time progresses and telemetry reads it like any other
/// clock. Cheap to clone (shared cell).
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jump to an absolute time (nanoseconds).
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }

    /// Advance by a delta.
    pub fn advance(&self, delta: std::time::Duration) {
        self.ns
            .fetch_add(delta.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_ns() > a);
    }

    #[test]
    fn manual_clock_is_driven() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.set_ns(50);
        c.advance(std::time::Duration::from_nanos(25));
        assert_eq!(c.now_ns(), 75);
        // Clones share the cell — a simulator handle drives every reader.
        let reader = c.clone();
        c.set_ns(1000);
        assert_eq!(reader.now_ns(), 1000);
    }
}
