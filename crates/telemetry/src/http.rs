//! A minimal HTTP `/metrics` listener.
//!
//! One std-thread accept loop, one short-lived handler per connection,
//! no HTTP library: the endpoint serves exactly one resource (the
//! registry's Prometheus exposition) to exactly one kind of client (a
//! scraper), so a hand-rolled responder is smaller than any dependency.
//! Runs on plain `std::net` so it works identically under tokio, inside
//! a bench harness, or from a synchronous CLI.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `registry` at
    /// `/metrics` until [`shutdown`](Self::shutdown) or drop.
    pub fn start(addr: SocketAddr, registry: Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mbw-metrics".into())
            .spawn(move || accept_loop(listener, registry, thread_stop))?;
        Ok(Self {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (scrape `http://<addr>/metrics`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Serve inline: scrapes are rare, tiny, and read-only, so one
        // at a time is plenty and avoids spawning per connection.
        let _ = serve_one(stream, &registry);
    }
}

fn serve_one(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or the buffer fills —
    // a scraper's GET fits in one read almost always).
    let mut buf = [0u8; 4096];
    let mut used = 0usize;
    while used < buf.len() && !head_complete(&buf[..used]) {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => used += n,
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path.split('?').next().unwrap_or(path)) {
        ("GET", "/metrics") => ("200 OK", registry.render_prometheus()),
        ("GET", _) => ("404 Not Found", "not found; try /metrics\n".to_string()),
        _ => ("405 Method Not Allowed", "GET only\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_the_registry_at_metrics() {
        let registry = Registry::new();
        registry.counter("probe_total", "probes run").add(3);
        let server =
            MetricsServer::start("127.0.0.1:0".parse().unwrap(), registry.clone()).unwrap();
        let response = get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("probe_total 3"), "{response}");
        // Counters keep moving between scrapes.
        registry.counter("probe_total", "probes run").inc();
        let again = get(server.local_addr(), "/metrics");
        assert!(again.contains("probe_total 4"), "{again}");
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404() {
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), Registry::new()).unwrap();
        let response = get(server.local_addr(), "/nope");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), Registry::new()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is released: a fresh bind on the same address works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }
}
