//! One-dimensional Gaussian mixture models.
//!
//! §5.1 of the paper models the access bandwidth `X` of a technology as
//!
//! ```text
//! P(X) = Σᵢ wᵢ · N(X | μᵢ, σᵢ)
//! ```
//!
//! and drives Swiftest's probing from the fitted modes: the initial probing
//! rate is the most probable mode, and escalation jumps to the most
//! probable *larger* mode. This module provides the full lifecycle:
//!
//! - construction from known parameters (the dataset generator's ground
//!   truth models),
//! - density/CDF evaluation and seeded sampling,
//! - EM fitting from raw samples with k-means++ initialisation,
//! - *binned* EM fitting from log-bucketed sufficient statistics
//!   ([`Gmm::fit_binned`]), whose E/M steps iterate weighted histogram
//!   bins instead of raw samples — `O(bins · k · iters)` per fit no matter
//!   how many records the accumulator saw,
//! - BIC-based selection of the number of components
//!   ([`Gmm::fit_auto`] / [`Gmm::fit_auto_binned`]), used when refreshing
//!   the model from fresh measurement data "periodically" as the paper
//!   prescribes; candidate fits race on the shared [`crate::pool`].

use crate::histogram::LogBins;
use crate::pool::{self, PoolCtx};
use crate::rng::SeededRng;
use crate::special::{log_sum_exp, standard_normal_cdf};
use mbw_telemetry::trace::{self, ArgValue};

/// One Gaussian component of a mixture.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GmmComponent {
    /// Mixing weight `wᵢ` (weights of a valid mixture sum to 1).
    pub weight: f64,
    /// Mean `μᵢ` — a "modal" bandwidth in Mbps in the BTS use case.
    pub mean: f64,
    /// Standard deviation `σᵢ` (> 0).
    pub std_dev: f64,
}

impl GmmComponent {
    /// Component log-density at `x`.
    fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Configuration for EM fitting.
#[derive(Debug, Clone, Copy)]
pub struct GmmFitConfig {
    /// Number of mixture components to fit.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the per-sample log-likelihood improvement.
    pub tolerance: f64,
    /// Seed for the k-means++ initialisation.
    pub seed: u64,
    /// Floor on component standard deviations, as a fraction of the data
    /// range; prevents components collapsing onto single points.
    pub min_std_frac: f64,
}

impl Default for GmmFitConfig {
    fn default() -> Self {
        Self {
            components: 3,
            max_iters: 200,
            tolerance: 1e-7,
            seed: 0x5EED,
            min_std_frac: 0.005,
        }
    }
}

/// Errors from mixture construction or fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GmmError {
    /// No components supplied / requested.
    NoComponents,
    /// Component parameters invalid (σ ≤ 0, non-finite, weight < 0, or
    /// weights summing to zero).
    InvalidParameters,
    /// Not enough data points to fit the requested number of components.
    NotEnoughData {
        /// Minimum samples the requested fit needs.
        needed: usize,
        /// Samples actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for GmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GmmError::NoComponents => write!(f, "mixture must have at least one component"),
            GmmError::InvalidParameters => write!(f, "invalid mixture parameters"),
            GmmError::NotEnoughData { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
        }
    }
}

impl std::error::Error for GmmError {}

/// A 1-D Gaussian mixture.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Gmm {
    components: Vec<GmmComponent>,
}

impl Gmm {
    /// Build a mixture from explicit components. Weights are normalised to
    /// sum to 1.
    pub fn new(components: Vec<GmmComponent>) -> Result<Self, GmmError> {
        if components.is_empty() {
            return Err(GmmError::NoComponents);
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(GmmError::InvalidParameters);
        }
        for c in &components {
            if c.weight.is_nan()
                || c.weight < 0.0
                || !c.mean.is_finite()
                || c.std_dev.is_nan()
                || c.std_dev <= 0.0
            {
                return Err(GmmError::InvalidParameters);
            }
        }
        let components = components
            .into_iter()
            .map(|c| GmmComponent {
                weight: c.weight / total,
                ..c
            })
            .collect();
        Ok(Self { components })
    }

    /// Convenience constructor from `(weight, mean, std_dev)` triples.
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Result<Self, GmmError> {
        Self::new(
            triples
                .iter()
                .map(|&(weight, mean, std_dev)| GmmComponent {
                    weight,
                    mean,
                    std_dev,
                })
                .collect(),
        )
    }

    /// The components, in unspecified order.
    pub fn components(&self) -> &[GmmComponent] {
        &self.components
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Mixture log-density at `x` (numerically stable).
    pub fn log_pdf(&self, x: f64) -> f64 {
        let terms: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(f64::MIN_POSITIVE).ln() + c.log_pdf(x))
            .collect();
        log_sum_exp(&terms)
    }

    /// Mixture CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * standard_normal_cdf((x - c.mean) / c.std_dev))
            .sum()
    }

    /// Mixture mean `Σ wᵢ μᵢ`.
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.mean).sum()
    }

    /// Mixture variance via the law of total variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.components
            .iter()
            .map(|c| c.weight * (c.std_dev * c.std_dev + (c.mean - m).powi(2)))
            .sum()
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SeededRng) -> f64 {
        let u = rng.uniform();
        let mut acc = 0.0;
        for c in &self.components {
            acc += c.weight;
            if u < acc {
                return rng.normal(c.mean, c.std_dev);
            }
        }
        // Floating-point slack: fall through to the last component.
        let c = self.components.last().expect("non-empty mixture");
        rng.normal(c.mean, c.std_dev)
    }

    /// Draw one sample truncated to be ≥ `floor` (resampling; used for
    /// bandwidths which cannot be negative).
    pub fn sample_at_least(&self, rng: &mut SeededRng, floor: f64) -> f64 {
        for _ in 0..1000 {
            let x = self.sample(rng);
            if x >= floor {
                return x;
            }
        }
        floor
    }

    /// Draw `n` samples.
    pub fn sample_n(&self, rng: &mut SeededRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The component means ("modal" bandwidths), sorted ascending.
    pub fn modes(&self) -> Vec<f64> {
        let mut m: Vec<f64> = self.components.iter().map(|c| c.mean).collect();
        m.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        m
    }

    /// The most probable mode: the mean of the component with the largest
    /// weight. This is Swiftest's *initial probing data rate* (§5.1).
    pub fn dominant_mode(&self) -> f64 {
        self.components
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
            .expect("non-empty mixture")
            .mean
    }

    /// Among the modes strictly greater than `current`, the one whose
    /// component has the largest weight. This is Swiftest's escalation
    /// rule: "we use the most probable one among these larger modal
    /// bandwidth values as the next probing data rate" (§5.1).
    pub fn next_larger_mode(&self, current: f64) -> Option<f64> {
        self.components
            .iter()
            .filter(|c| c.mean > current)
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
            .map(|c| c.mean)
    }

    /// Inverse CDF by bisection: the smallest `x` with `CDF(x) ≥ q`.
    /// Used e.g. to provision server fleets for the fast-client tail
    /// (`q = 0.95`) rather than the average client.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        // Bracket: ±8σ around the extreme component means.
        let lo_c = self
            .components
            .iter()
            .map(|c| c.mean - 8.0 * c.std_dev)
            .fold(f64::INFINITY, f64::min);
        let hi_c = self
            .components
            .iter()
            .map(|c| c.mean + 8.0 * c.std_dev)
            .fold(f64::NEG_INFINITY, f64::max);
        let (mut lo, mut hi) = (lo_c, hi_c);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mean per-sample log-likelihood of `data` under the mixture.
    pub fn mean_log_likelihood(&self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        // Hoist the per-component constants (`ln w`, `ln σ`) out of the
        // data loop and reuse one scratch buffer; the per-sample
        // arithmetic and summation order match `log_pdf` exactly, so the
        // result is bit-identical to the naive per-sample call.
        let consts = ComponentLogConsts::of(&self.components);
        let mut logs = vec![0.0f64; self.components.len()];
        data.iter()
            .map(|&x| {
                consts.fill_logs(&self.components, x, &mut logs);
                log_sum_exp(&logs)
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// Bayesian information criterion for this mixture on `data`
    /// (lower is better). A k-component 1-D mixture has `3k - 1` free
    /// parameters.
    pub fn bic(&self, data: &[f64]) -> f64 {
        let n = data.len().max(1) as f64;
        let ll = self.mean_log_likelihood(data) * n;
        let params = (3 * self.k() - 1) as f64;
        params * n.ln() - 2.0 * ll
    }

    /// Fit a mixture with EM.
    ///
    /// Initialisation is k-means++ on the sample followed by one hard
    /// assignment pass; EM then iterates soft E/M steps until the mean
    /// log-likelihood improves by less than `config.tolerance` or
    /// `config.max_iters` is reached.
    pub fn fit(data: &[f64], config: &GmmFitConfig) -> Result<Self, GmmError> {
        let k = config.components;
        if k == 0 {
            return Err(GmmError::NoComponents);
        }
        // Heuristic: at least 5 points per component for a meaningful fit.
        let needed = (5 * k).max(2);
        if data.len() < needed {
            return Err(GmmError::NotEnoughData {
                needed,
                got: data.len(),
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(GmmError::InvalidParameters);
        }

        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(f64::MIN_POSITIVE);
        let min_std = range * config.min_std_frac;

        let mut rng = SeededRng::new(config.seed);
        let centers = kmeans_pp_centers(data, k, &mut rng);
        let mut mix = initial_mixture_from_centers(data, &centers, min_std);

        let n = data.len();
        let mut resp = vec![0.0f64; n * k]; // responsibilities, row-major
        let mut logs = vec![0.0f64; k]; // per-sample scratch, reused
        let mut prev_ll = f64::NEG_INFINITY;
        let tracer = trace::active();
        let mut spans = tracer.local();
        let fit_span = spans.begin();
        let mut iters = 0u64;
        for _ in 0..config.max_iters {
            let iter_span = spans.begin();
            iters += 1;
            // E-step. `ln w` and `ln σ` are invariant across the sample
            // loop, so they are hoisted per iteration; the per-sample
            // arithmetic matches `log_pdf` term for term, keeping the fit
            // bit-identical to the unhoisted form while dropping two `ln`
            // calls and a heap allocation per sample.
            let consts = ComponentLogConsts::of(&mix.components);
            let mut ll_sum = 0.0;
            for (i, &x) in data.iter().enumerate() {
                consts.fill_logs(&mix.components, x, &mut logs);
                let norm = log_sum_exp(&logs);
                ll_sum += norm;
                for (j, &l) in logs.iter().enumerate() {
                    resp[i * k + j] = (l - norm).exp();
                }
            }
            let ll = ll_sum / n as f64;

            // M-step.
            for j in 0..k {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                let nj = nj.max(1e-12);
                let mean = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nj;
                let var = (0..n)
                    .map(|i| resp[i * k + j] * (data[i] - mean).powi(2))
                    .sum::<f64>()
                    / nj;
                mix.components[j] = GmmComponent {
                    weight: nj / n as f64,
                    mean,
                    std_dev: var.sqrt().max(min_std),
                };
            }

            // Per-iteration spans carry no args so a disabled tracer pays
            // only the `id == 0` branch, never an allocation.
            spans.end(iter_span, fit_span.id, "gmm.em_iter", "gmm");
            if (ll - prev_ll).abs() < config.tolerance {
                break;
            }
            prev_ll = ll;
        }
        if fit_span.id != 0 {
            spans.end_with(
                fit_span,
                0,
                "gmm.fit",
                "gmm",
                vec![
                    ("components", ArgValue::from(k)),
                    ("samples", ArgValue::from(n)),
                    ("iters", ArgValue::U64(iters)),
                ],
            );
        }
        // Renormalise weights (guards against drift from the nj floor).
        Gmm::new(mix.components)
    }

    /// Fit mixtures with `1..=max_components` components and return the one
    /// with the lowest BIC — the "update the statistical model
    /// periodically" step of §5.1, where the right number of modes is not
    /// known a priori.
    pub fn fit_auto(data: &[f64], max_components: usize, seed: u64) -> Result<Self, GmmError> {
        if max_components == 0 {
            return Err(GmmError::NoComponents);
        }
        // The candidate fits are independent (each starts from its own
        // `SeededRng::new(seed)`), so on large inputs they race on the
        // shared work pool. Results are folded in `k` order afterwards,
        // which keeps the BIC tie-break (first/lowest `k` wins) — and thus
        // the selected mixture — identical to the sequential loop. Small
        // inputs (per-trial fits in the eval half) stay sequential; the
        // thread spawn would cost more than the fit.
        let tracer = trace::active();
        let mut auto_spans = tracer.local();
        let auto_span = auto_spans.begin();
        // Spawned workers do not inherit the caller's trace scope, so the
        // candidate closure re-`scope`s the captured tracer before fitting;
        // on the sequential path the nested scope is a no-op.
        let fit_k = |k: usize| {
            trace::scope(&tracer, || {
                let mut spans = tracer.local();
                let cand_span = spans.begin();
                let config = GmmFitConfig {
                    components: k,
                    seed,
                    ..Default::default()
                };
                let result = Gmm::fit(data, &config).map(|g| {
                    let bic = g.bic(data);
                    (bic, g)
                });
                if cand_span.id != 0 {
                    let bic = match &result {
                        Ok((bic, _)) => *bic,
                        Err(_) => f64::NAN,
                    };
                    spans.end_with(
                        cand_span,
                        0,
                        "gmm.fit_candidate",
                        "gmm",
                        vec![("k", ArgValue::from(k)), ("bic", ArgValue::F64(bic))],
                    );
                }
                result
            })
        };
        let fits: Vec<Result<(f64, Gmm), GmmError>> =
            if data.len() >= PARALLEL_FIT_MIN_SAMPLES && max_components > 1 {
                let fit_k = &fit_k;
                let tasks: Vec<pool::Task<'_, Result<(f64, Gmm), GmmError>>> = (1..=max_components)
                    .map(|k| -> pool::Task<'_, Result<(f64, Gmm), GmmError>> {
                        Box::new(move |_ctx| fit_k(k))
                    })
                    .collect();
                pool::run(max_components, tasks)
            } else {
                (1..=max_components).map(fit_k).collect()
            };
        let mut best: Option<(f64, Gmm)> = None;
        let mut last_err = GmmError::NoComponents;
        for fit in fits {
            match fit {
                Ok((bic, g)) => {
                    if best.as_ref().is_none_or(|(b, _)| bic < *b) {
                        best = Some((bic, g));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        if auto_span.id != 0 {
            auto_spans.end_with(
                auto_span,
                0,
                "gmm.fit_auto",
                "gmm",
                vec![
                    ("max_components", ArgValue::from(max_components)),
                    ("samples", ArgValue::from(data.len())),
                ],
            );
        }
        best.map(|(_, g)| g).ok_or(last_err)
    }

    /// Fit a mixture with EM over the *binned* sufficient statistics of a
    /// [`LogBins`] histogram instead of raw samples.
    ///
    /// Each occupied bin contributes its geometric-mean representative
    /// weighted by its count, so one E/M step costs `O(bins · k)` no
    /// matter how many records were observed. Relative to a raw-sample
    /// [`Gmm::fit`] on the same data, fitted means and standard deviations
    /// differ by at most the bin's relative width (about 2% at the
    /// default 512 bins over four decades); within one binning the fit is
    /// exactly deterministic, and because `LogBins` merges by exact
    /// integer addition the result is invariant under thread count and
    /// distributed reduction.
    pub fn fit_binned(bins: &LogBins, config: &GmmFitConfig) -> Result<Self, GmmError> {
        let points = bins.weighted_points();
        fit_weighted(&points, bins.total(), config, bins.bins())
    }

    /// Binned analogue of [`Gmm::fit_auto`]: fit `1..=max_components`
    /// candidates with [`Gmm::fit_binned`] and keep the lowest
    /// [`Gmm::bic_binned`]. Candidates race on `ctx`'s work pool when one
    /// is available (inside a parallel finish), or run sequentially under
    /// [`PoolCtx::serial`] — the fold happens in `k` order either way, so
    /// the selected mixture is identical.
    pub fn fit_auto_binned<'env>(
        bins: &LogBins,
        max_components: usize,
        seed: u64,
        ctx: &PoolCtx<'_, 'env>,
    ) -> Result<Self, GmmError> {
        if max_components == 0 {
            return Err(GmmError::NoComponents);
        }
        let tracer = trace::active();
        let mut auto_spans = tracer.local();
        let auto_span = auto_spans.begin();
        let points = bins.weighted_points();
        let total = bins.total();
        let occupied = points.len();
        let log_bins = bins.bins();
        let fits: Vec<Result<(f64, Gmm), GmmError>> = if ctx.is_parallel() && max_components > 1 {
            // Pool subtasks may outlive this stack frame's borrows, so each
            // candidate owns a clone of the (at most bins+1 entry) weighted
            // point list and of the tracer handle.
            let tasks: Vec<Box<dyn FnOnce() -> Result<(f64, Gmm), GmmError> + Send + 'env>> = (1
                ..=max_components)
                .map(
                    |k| -> Box<dyn FnOnce() -> Result<(f64, Gmm), GmmError> + Send + 'env> {
                        let points = points.clone();
                        let tracer = tracer.clone();
                        Box::new(move || {
                            binned_candidate(k, &points, total, log_bins, seed, &tracer)
                        })
                    },
                )
                .collect();
            ctx.fork_join(tasks)
        } else {
            (1..=max_components)
                .map(|k| binned_candidate(k, &points, total, log_bins, seed, &tracer))
                .collect()
        };
        let mut best: Option<(f64, Gmm)> = None;
        let mut last_err = GmmError::NoComponents;
        for fit in fits {
            match fit {
                Ok((bic, g)) => {
                    if best.as_ref().is_none_or(|(b, _)| bic < *b) {
                        best = Some((bic, g));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        if auto_span.id != 0 {
            auto_spans.end_with(
                auto_span,
                0,
                "gmm.fit_auto",
                "gmm",
                vec![
                    ("max_components", ArgValue::from(max_components)),
                    ("bins", ArgValue::from(occupied)),
                    ("records", ArgValue::U64(total)),
                ],
            );
        }
        best.map(|(_, g)| g).ok_or(last_err)
    }

    /// BIC of this mixture against binned data (lower is better), using
    /// the weighted bin log-likelihood and the *true* observation count
    /// for the complexity penalty.
    pub fn bic_binned(&self, bins: &LogBins) -> f64 {
        bic_weighted(self, &bins.weighted_points(), bins.total())
    }
}

/// Sample count above which [`Gmm::fit_auto`] fans its candidate fits
/// out over scoped threads. Figure-scale fits (tens of thousands of
/// samples) clear this easily; per-trial fits in the eval half do not.
const PARALLEL_FIT_MIN_SAMPLES: usize = 10_000;

/// Per-component constants of the weighted log-density, hoisted out of
/// per-sample loops: `ln wⱼ` and `ln σⱼ`. `fill_logs` evaluates
/// `ln wⱼ + log_pdfⱼ(x)` with exactly the operation order of
/// `GmmComponent::log_pdf`, so hoisting never changes a bit of the
/// result — only how often the logarithms are taken.
struct ComponentLogConsts {
    ln_weight: Vec<f64>,
    ln_std: Vec<f64>,
}

impl ComponentLogConsts {
    fn of(components: &[GmmComponent]) -> Self {
        Self {
            ln_weight: components
                .iter()
                .map(|c| c.weight.max(f64::MIN_POSITIVE).ln())
                .collect(),
            ln_std: components.iter().map(|c| c.std_dev.ln()).collect(),
        }
    }

    fn fill_logs(&self, components: &[GmmComponent], x: f64, logs: &mut [f64]) {
        let half_ln_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
        for (j, c) in components.iter().enumerate() {
            let z = (x - c.mean) / c.std_dev;
            let log_pdf = -0.5 * z * z - self.ln_std[j] - half_ln_2pi;
            logs[j] = self.ln_weight[j] + log_pdf;
        }
    }
}

/// k-means++ seeding: first centre uniform, subsequent centres sampled
/// proportionally to squared distance from the nearest chosen centre.
fn kmeans_pp_centers(data: &[f64], k: usize, rng: &mut SeededRng) -> Vec<f64> {
    let mut centers = Vec::with_capacity(k);
    centers.push(data[rng.index(data.len())]);
    while centers.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|&x| {
                centers
                    .iter()
                    .map(|&c| (x - c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centres; duplicate one.
            centers.push(centers[0]);
            continue;
        }
        let mut target = rng.uniform() * total;
        let mut chosen = data.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centers.push(data[chosen]);
    }
    centers
}

/// Hard-assign points to the nearest centre and build the initial mixture.
fn initial_mixture_from_centers(data: &[f64], centers: &[f64], min_std: f64) -> Gmm {
    let k = centers.len();
    let mut sums = vec![0.0; k];
    let mut sqs = vec![0.0; k];
    let mut counts = vec![0usize; k];
    for &x in data {
        let (j, _) = centers
            .iter()
            .enumerate()
            .map(|(j, &c)| (j, (x - c).abs()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one centre");
        sums[j] += x;
        sqs[j] += x * x;
        counts[j] += 1;
    }
    let n = data.len() as f64;
    let components = (0..k)
        .map(|j| {
            let cnt = counts[j].max(1) as f64;
            let mean = if counts[j] == 0 {
                centers[j]
            } else {
                sums[j] / cnt
            };
            let var = (sqs[j] / cnt - mean * mean).max(0.0);
            GmmComponent {
                weight: (counts[j] as f64 / n).max(1e-6),
                mean,
                std_dev: var.sqrt().max(min_std),
            }
        })
        .collect();
    Gmm::new(components).expect("initial mixture is valid by construction")
}

/// One BIC candidate of [`Gmm::fit_auto_binned`]: fit `k` components on
/// the weighted bins and score them. Re-`scope`s the tracer so candidate
/// spans attach to the right trace even when run on a pool worker.
fn binned_candidate(
    k: usize,
    points: &[(f64, f64)],
    total: u64,
    log_bins: usize,
    seed: u64,
    tracer: &trace::Tracer,
) -> Result<(f64, Gmm), GmmError> {
    trace::scope(tracer, || {
        let mut spans = tracer.local();
        let cand_span = spans.begin();
        let config = GmmFitConfig {
            components: k,
            seed,
            ..Default::default()
        };
        let result = fit_weighted(points, total, &config, log_bins)
            .map(|g| (bic_weighted(&g, points, total), g));
        if cand_span.id != 0 {
            let bic = match &result {
                Ok((bic, _)) => *bic,
                Err(_) => f64::NAN,
            };
            spans.end_with(
                cand_span,
                0,
                "gmm.fit_candidate",
                "gmm",
                vec![("k", ArgValue::from(k)), ("bic", ArgValue::F64(bic))],
            );
        }
        result
    })
}

/// Weighted EM over `(representative, count)` pairs — the engine behind
/// [`Gmm::fit_binned`]. `total` is the true observation count (used for
/// the data-sufficiency check and the mixture weights); `log_bins` is the
/// histogram's bin budget, recorded on the `gmm.fit_binned` span.
fn fit_weighted(
    points: &[(f64, f64)],
    total: u64,
    config: &GmmFitConfig,
    log_bins: usize,
) -> Result<Gmm, GmmError> {
    let k = config.components;
    if k == 0 {
        return Err(GmmError::NoComponents);
    }
    // Same heuristic as the raw fit: 5 *observations* (not bins) per
    // component.
    let needed = (5 * k).max(2);
    if (total as usize) < needed {
        return Err(GmmError::NotEnoughData {
            needed,
            got: total as usize,
        });
    }
    let lo = points.iter().map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|&(x, _)| x)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    let min_std = range * config.min_std_frac;

    let mut rng = SeededRng::new(config.seed);
    let centers = weighted_kmeans_pp_centers(points, k, &mut rng);
    let mut mix = weighted_initial_mixture(points, &centers, min_std);

    let total_w = total as f64;
    let b = points.len();
    let mut resp = vec![0.0f64; b * k]; // weighted responsibilities, row-major
    let mut logs = vec![0.0f64; k];
    let mut prev_ll = f64::NEG_INFINITY;
    let tracer = trace::active();
    let mut spans = tracer.local();
    let fit_span = spans.begin();
    let mut iters = 0u64;
    for _ in 0..config.max_iters {
        let iter_span = spans.begin();
        iters += 1;
        // E-step over occupied bins: identical arithmetic to the raw-sample
        // E-step, with every per-sample term scaled by the bin count.
        let consts = ComponentLogConsts::of(&mix.components);
        let mut ll_sum = 0.0;
        for (i, &(x, w)) in points.iter().enumerate() {
            consts.fill_logs(&mix.components, x, &mut logs);
            let norm = log_sum_exp(&logs);
            ll_sum += w * norm;
            for (j, &l) in logs.iter().enumerate() {
                resp[i * k + j] = w * (l - norm).exp();
            }
        }
        let ll = ll_sum / total_w;

        // M-step.
        for j in 0..k {
            let nj: f64 = (0..b).map(|i| resp[i * k + j]).sum();
            let nj = nj.max(1e-12);
            let mean = (0..b).map(|i| resp[i * k + j] * points[i].0).sum::<f64>() / nj;
            let var = (0..b)
                .map(|i| resp[i * k + j] * (points[i].0 - mean).powi(2))
                .sum::<f64>()
                / nj;
            mix.components[j] = GmmComponent {
                weight: nj / total_w,
                mean,
                std_dev: var.sqrt().max(min_std),
            };
        }

        spans.end(iter_span, fit_span.id, "gmm.em_iter", "gmm");
        if (ll - prev_ll).abs() < config.tolerance {
            break;
        }
        prev_ll = ll;
    }
    if fit_span.id != 0 {
        spans.end_with(
            fit_span,
            0,
            "gmm.fit_binned",
            "gmm",
            vec![
                ("components", ArgValue::from(k)),
                ("bins", ArgValue::from(b)),
                ("log_bins", ArgValue::from(log_bins)),
                ("records", ArgValue::U64(total)),
                ("iters", ArgValue::U64(iters)),
            ],
        );
    }
    Gmm::new(mix.components)
}

/// BIC of `g` against weighted bins: the weighted log-likelihood with the
/// true observation count in the complexity penalty, mirroring
/// [`Gmm::bic`].
fn bic_weighted(g: &Gmm, points: &[(f64, f64)], total: u64) -> f64 {
    let n = total.max(1) as f64;
    let consts = ComponentLogConsts::of(g.components());
    let mut logs = vec![0.0f64; g.k()];
    let ll: f64 = points
        .iter()
        .map(|&(x, w)| {
            consts.fill_logs(g.components(), x, &mut logs);
            w * log_sum_exp(&logs)
        })
        .sum();
    let params = (3 * g.k() - 1) as f64;
    params * n.ln() - 2.0 * ll
}

/// k-means++ seeding over weighted points: the first centre is drawn by
/// bin mass, subsequent centres proportionally to `w · d²` from the
/// nearest chosen centre — the weighted analogue of `kmeans_pp_centers`.
fn weighted_kmeans_pp_centers(points: &[(f64, f64)], k: usize, rng: &mut SeededRng) -> Vec<f64> {
    let mut centers = Vec::with_capacity(k);
    let total_w: f64 = points.iter().map(|&(_, w)| w).sum();
    let mut target = rng.uniform() * total_w;
    let mut first = points.len() - 1;
    for (i, &(_, w)) in points.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            first = i;
            break;
        }
    }
    centers.push(points[first].0);
    while centers.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|&(x, w)| {
                w * centers
                    .iter()
                    .map(|&c| (x - c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All mass coincides with existing centres; duplicate one.
            centers.push(centers[0]);
            continue;
        }
        let mut target = rng.uniform() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centers.push(points[chosen].0);
    }
    centers
}

/// Hard-assign weighted points to the nearest centre and build the
/// initial mixture, mirroring `initial_mixture_from_centers`.
fn weighted_initial_mixture(points: &[(f64, f64)], centers: &[f64], min_std: f64) -> Gmm {
    let k = centers.len();
    let mut sums = vec![0.0; k];
    let mut sqs = vec![0.0; k];
    let mut wsum = vec![0.0f64; k];
    for &(x, w) in points {
        let (j, _) = centers
            .iter()
            .enumerate()
            .map(|(j, &c)| (j, (x - c).abs()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one centre");
        sums[j] += w * x;
        sqs[j] += w * x * x;
        wsum[j] += w;
    }
    let n: f64 = wsum.iter().sum();
    let components = (0..k)
        .map(|j| {
            // Bin counts are integers, so a non-empty cluster has mass ≥ 1.
            let cnt = wsum[j].max(1.0);
            let mean = if wsum[j] == 0.0 {
                centers[j]
            } else {
                sums[j] / cnt
            };
            let var = (sqs[j] / cnt - mean * mean).max(0.0);
            GmmComponent {
                weight: (wsum[j] / n).max(1e-6),
                mean,
                std_dev: var.sqrt().max(min_std),
            }
        })
        .collect();
    Gmm::new(components).expect("initial mixture is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_modal() -> Gmm {
        // Shaped like the paper's WiFi 5 distribution (Fig 16): modes near
        // the 100/300/500 Mbps broadband plan tiers.
        Gmm::from_triples(&[(0.5, 100.0, 20.0), (0.3, 300.0, 30.0), (0.2, 500.0, 40.0)]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Gmm::new(vec![]).unwrap_err(), GmmError::NoComponents);
        assert!(Gmm::from_triples(&[(1.0, 0.0, 0.0)]).is_err()); // σ = 0
        assert!(Gmm::from_triples(&[(-1.0, 0.0, 1.0)]).is_err()); // w < 0
        assert!(Gmm::from_triples(&[(0.0, 0.0, 1.0)]).is_err()); // Σw = 0
    }

    #[test]
    fn weights_are_normalised() {
        let g = Gmm::from_triples(&[(2.0, 0.0, 1.0), (6.0, 5.0, 1.0)]).unwrap();
        let total: f64 = g.components().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((g.components()[0].weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = tri_modal();
        let (lo, hi, n) = (-200.0, 900.0, 11000);
        let h = (hi - lo) / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let x = lo + i as f64 * h;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * g.pdf(x)
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6, "{integral}");
    }

    #[test]
    fn cdf_limits_and_monotonicity() {
        let g = tri_modal();
        assert!(g.cdf(-1000.0) < 1e-9);
        assert!((g.cdf(2000.0) - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for i in 0..200 {
            let x = -100.0 + i as f64 * 5.0;
            let c = g.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn analytic_moments() {
        let g = tri_modal();
        // mean = .5*100 + .3*300 + .2*500 = 240
        assert!((g.mean() - 240.0).abs() < 1e-9);
        let want_var = 0.5 * (400.0 + 140.0f64.powi(2))
            + 0.3 * (900.0 + 60.0f64.powi(2))
            + 0.2 * (1600.0 + 260.0f64.powi(2));
        assert!((g.variance() - want_var).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_moments() {
        let g = tri_modal();
        let mut rng = SeededRng::new(101);
        let samples = g.sample_n(&mut rng, 200_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - g.mean()).abs() < 2.0, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var - g.variance()).abs() / g.variance() < 0.03);
    }

    #[test]
    fn sample_at_least_respects_floor() {
        let g = Gmm::from_triples(&[(1.0, 1.0, 5.0)]).unwrap();
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            assert!(g.sample_at_least(&mut rng, 0.0) >= 0.0);
        }
    }

    #[test]
    fn dominant_and_next_modes_drive_probing() {
        let g = tri_modal();
        assert_eq!(g.dominant_mode(), 100.0);
        assert_eq!(g.next_larger_mode(100.0), Some(300.0));
        assert_eq!(g.next_larger_mode(300.0), Some(500.0));
        assert_eq!(g.next_larger_mode(500.0), None);
        assert_eq!(g.modes(), vec![100.0, 300.0, 500.0]);
    }

    #[test]
    fn next_larger_mode_picks_most_probable_not_nearest() {
        // Two larger modes; the farther one has the bigger weight.
        let g = Gmm::from_triples(&[(0.5, 10.0, 1.0), (0.1, 20.0, 1.0), (0.4, 50.0, 1.0)]).unwrap();
        assert_eq!(g.next_larger_mode(10.0), Some(50.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = tri_modal();
        for q in [0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let x = g.quantile(q);
            assert!(
                (g.cdf(x) - q).abs() < 1e-6,
                "q={q}: cdf({x}) = {}",
                g.cdf(x)
            );
        }
        // Monotone.
        assert!(g.quantile(0.95) > g.quantile(0.5));
        // The p95 of the WiFi-plan-like mixture sits in the top mode.
        assert!(g.quantile(0.95) > 400.0);
    }

    #[test]
    fn em_recovers_two_well_separated_components() {
        let truth = Gmm::from_triples(&[(0.6, 50.0, 5.0), (0.4, 200.0, 10.0)]).unwrap();
        let mut rng = SeededRng::new(42);
        let data = truth.sample_n(&mut rng, 5000);
        let fit = Gmm::fit(
            &data,
            &GmmFitConfig {
                components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut means = fit.modes();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 50.0).abs() < 2.0, "{means:?}");
        assert!((means[1] - 200.0).abs() < 4.0, "{means:?}");
        // Weight of the lower component ≈ 0.6.
        let low = fit
            .components()
            .iter()
            .min_by(|a, b| a.mean.partial_cmp(&b.mean).unwrap())
            .unwrap();
        assert!((low.weight - 0.6).abs() < 0.05, "{}", low.weight);
    }

    #[test]
    fn em_increases_likelihood_over_single_gaussian() {
        let truth = tri_modal();
        let mut rng = SeededRng::new(7);
        let data = truth.sample_n(&mut rng, 4000);
        let k1 = Gmm::fit(
            &data,
            &GmmFitConfig {
                components: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let k3 = Gmm::fit(
            &data,
            &GmmFitConfig {
                components: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(k3.mean_log_likelihood(&data) > k1.mean_log_likelihood(&data));
    }

    #[test]
    fn fit_auto_selects_multimodal_over_unimodal() {
        let truth = tri_modal();
        let mut rng = SeededRng::new(13);
        let data = truth.sample_n(&mut rng, 6000);
        let fit = Gmm::fit_auto(&data, 5, 99).unwrap();
        assert!(fit.k() >= 3, "selected k = {}", fit.k());
        // The dominant fitted mode should be near the true dominant mode.
        assert!(
            (fit.dominant_mode() - 100.0).abs() < 15.0,
            "{}",
            fit.dominant_mode()
        );
    }

    #[test]
    fn fit_rejects_insufficient_data() {
        let err = Gmm::fit(
            &[1.0, 2.0],
            &GmmFitConfig {
                components: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GmmError::NotEnoughData { .. }));
    }

    #[test]
    fn fit_rejects_non_finite_data() {
        let mut data = vec![1.0; 50];
        data[10] = f64::NAN;
        let err = Gmm::fit(
            &data,
            &GmmFitConfig {
                components: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, GmmError::InvalidParameters);
    }

    #[test]
    fn fit_is_deterministic_for_seed() {
        let truth = tri_modal();
        let mut rng = SeededRng::new(5);
        let data = truth.sample_n(&mut rng, 2000);
        let cfg = GmmFitConfig {
            components: 3,
            seed: 11,
            ..Default::default()
        };
        let a = Gmm::fit(&data, &cfg).unwrap();
        let b = Gmm::fit(&data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    fn logbins_of(data: &[f64], hi: f64) -> LogBins {
        let mut lb = LogBins::for_range(hi);
        for &v in data {
            lb.add(v);
        }
        lb
    }

    #[test]
    fn fit_binned_agrees_with_raw_fit_within_bin_tolerance() {
        // Accuracy contract: with the default 512 bins over four decades,
        // the binned representatives sit within ~1% of the raw samples, so
        // fitted means should land within a few percent of the raw fit's
        // (and of the truth) on a well-separated mixture.
        let truth = Gmm::from_triples(&[(0.6, 50.0, 5.0), (0.4, 200.0, 10.0)]).unwrap();
        let mut rng = SeededRng::new(42);
        let data = truth.sample_n(&mut rng, 20_000);
        let cfg = GmmFitConfig {
            components: 2,
            ..Default::default()
        };
        let raw = Gmm::fit(&data, &cfg).unwrap();
        let binned = Gmm::fit_binned(&logbins_of(&data, 500.0), &cfg).unwrap();
        let raw_modes = raw.modes();
        let binned_modes = binned.modes();
        for (r, b) in raw_modes.iter().zip(&binned_modes) {
            assert!(
                (r - b).abs() / r < 0.03,
                "raw modes {raw_modes:?} vs binned {binned_modes:?}"
            );
        }
        for (rc, bc) in raw.components().iter().zip(binned.components()) {
            assert!(
                (rc.weight - bc.weight).abs() < 0.05,
                "weights {} vs {}",
                rc.weight,
                bc.weight
            );
        }
    }

    #[test]
    fn fit_binned_is_exactly_deterministic() {
        let truth = tri_modal();
        let mut rng = SeededRng::new(77);
        let data = truth.sample_n(&mut rng, 30_000);
        let lb = logbins_of(&data, 1000.0);
        let cfg = GmmFitConfig {
            components: 3,
            seed: 16,
            ..Default::default()
        };
        let a = Gmm::fit_binned(&lb, &cfg).unwrap();
        let b = Gmm::fit_binned(&lb, &cfg).unwrap();
        assert_eq!(a, b);
        // And invariant under how the histogram was assembled (merge vs
        // single pass) — counts are exact integer sums.
        let mut left = logbins_of(&data[..9_311], 1000.0);
        let right = logbins_of(&data[9_311..], 1000.0);
        left.merge(&right);
        assert_eq!(Gmm::fit_binned(&left, &cfg).unwrap(), a);
    }

    #[test]
    fn fit_auto_binned_matches_serial_on_a_pool() {
        let truth = tri_modal();
        let mut rng = SeededRng::new(13);
        let data = truth.sample_n(&mut rng, 25_000);
        let lb = logbins_of(&data, 1000.0);
        let serial = Gmm::fit_auto_binned(&lb, 5, 99, &PoolCtx::serial()).unwrap();
        assert!(serial.k() >= 3, "selected k = {}", serial.k());
        // The same fit racing candidates on a real pool must select the
        // same mixture bit-for-bit.
        for threads in [2, 8] {
            let tasks: Vec<pool::Task<'_, Gmm>> = (0..2)
                .map(|_| -> pool::Task<'_, Gmm> {
                    let lb = lb.clone();
                    Box::new(move |ctx| Gmm::fit_auto_binned(&lb, 5, 99, ctx).unwrap())
                })
                .collect();
            for got in pool::run(threads, tasks) {
                assert_eq!(got, serial);
            }
        }
    }

    #[test]
    fn fit_binned_rejects_insufficient_data() {
        let lb = logbins_of(&[10.0, 20.0], 100.0);
        let err = Gmm::fit_binned(
            &lb,
            &GmmFitConfig {
                components: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GmmError::NotEnoughData { .. }));
    }

    #[test]
    fn fit_binned_handles_single_occupied_bin() {
        let lb = logbins_of(&vec![5.0; 100], 100.0);
        let fit = Gmm::fit_binned(
            &lb,
            &GmmFitConfig {
                components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Everything sits in one bin; the fit collapses onto its
        // representative (within the bin's relative width).
        assert!((fit.mean() / 5.0 - 1.0).abs() < 0.02, "{}", fit.mean());
    }

    #[test]
    fn bic_binned_prefers_the_right_model_class() {
        let truth = Gmm::from_triples(&[(0.5, 30.0, 3.0), (0.5, 300.0, 20.0)]).unwrap();
        let mut rng = SeededRng::new(21);
        let data = truth.sample_n(&mut rng, 15_000);
        let lb = logbins_of(&data, 1000.0);
        let k1 = Gmm::fit_binned(
            &lb,
            &GmmFitConfig {
                components: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let k2 = Gmm::fit_binned(
            &lb,
            &GmmFitConfig {
                components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(k2.bic_binned(&lb) < k1.bic_binned(&lb));
    }

    #[test]
    fn fit_handles_identical_points() {
        let data = vec![5.0; 100];
        let fit = Gmm::fit(
            &data,
            &GmmFitConfig {
                components: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((fit.mean() - 5.0).abs() < 1e-6);
    }
}
