#![warn(missing_docs)]
//! Statistics substrate for the mobile-bandwidth reproduction.
//!
//! The paper's central statistical observation (§5.1) is that, for a given
//! access technology, the population of access bandwidths follows a
//! *multi-modal Gaussian distribution*:
//!
//! ```text
//! P(X) = Σᵢ wᵢ · N(X | μᵢ, σᵢ)
//! ```
//!
//! Swiftest uses the fitted mixture to pick the initial probing data rate
//! and the escalation ladder. This crate provides everything required for
//! that pipeline, implemented from scratch:
//!
//! - [`gmm`] — 1-D Gaussian mixture models: density/CDF evaluation,
//!   sampling, mode extraction, EM fitting with k-means++ initialisation,
//!   and BIC-based selection of the number of components.
//! - [`descriptive`] — means, medians, percentiles, trimmed means, and the
//!   [`descriptive::Summary`] used throughout the analysis pipeline.
//! - [`histogram`] — fixed-bin histograms, normalised PDFs, empirical
//!   CDFs matching the paper's figure style, and the log-bucketed
//!   [`histogram::LogBins`] sufficient statistics the binned EM consumes.
//! - [`pool`] — a scoped batch work pool with help-while-waiting
//!   fork/join, shared by the figure-finish fan-out and the BIC candidate
//!   races inside it.
//! - [`sampling`] — seeded random draws (normal, log-normal, categorical)
//!   built on a deterministic [`rng`] so every experiment is reproducible.
//! - [`special`] — the special functions (erf, log-sum-exp) the rest of the
//!   crate needs.

pub mod descriptive;
pub mod gmm;
pub mod histogram;
pub mod pool;
pub mod rng;
pub mod sampling;
pub mod special;

pub use descriptive::Summary;
pub use gmm::{Gmm, GmmComponent, GmmFitConfig};
pub use histogram::{Ecdf, Histogram, LogBins};
pub use pool::PoolCtx;
pub use rng::SeededRng;
