//! Special functions needed by the Gaussian machinery.

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation.
///
/// Maximum absolute error ≤ 1.5e-7, which is far below the tolerance of
/// anything in the bandwidth-modelling pipeline.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn standard_normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Numerically stable `ln(Σ exp(xᵢ))`.
///
/// Returns `-inf` for an empty slice, matching the sum-of-zero-terms
/// convention.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|x| (x - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            // The approximation is odd up to its own ~1e-7 accuracy (the
            // residual at x = 0 is the polynomial's truncation error).
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
            assert!(erf(x).abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for i in 1..30 {
            let z = i as f64 / 10.0;
            let s = standard_normal_cdf(z) + standard_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-9, "z={z}");
        }
    }

    #[test]
    fn normal_cdf_monotone() {
        let mut prev = standard_normal_cdf(-5.0);
        for i in -49..=50 {
            let cur = standard_normal_cdf(i as f64 / 10.0);
            assert!(cur >= prev - 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-8, 8].
        let n = 4000;
        let h = 16.0 / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let z = -8.0 + i as f64 * h;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * standard_normal_pdf(z)
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6, "{integral}");
    }

    #[test]
    fn log_sum_exp_matches_naive_and_is_stable() {
        let xs = [1.0f64, 2.0, 3.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
        // Stability: huge values must not overflow.
        let big = [1000.0, 1000.0];
        assert!((log_sum_exp(&big) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }
}
