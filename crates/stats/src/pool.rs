//! A scoped batch work pool for the finish stage.
//!
//! The streaming sweep ends with a fan-out of independent, deterministic
//! jobs: 24 measurement-figure finishes, 9 eval-figure finishes, and up to
//! `max_components` BIC candidate fits inside every `fit_auto`. This module
//! runs such a batch across a bounded set of scoped threads while letting a
//! job that forks subtasks ([`PoolCtx::fork_join`]) *help* execute queued
//! work while it waits — so nested fan-outs (figure finish → candidate
//! fits) share one set of threads instead of oversubscribing the machine,
//! and a pool can never deadlock on its own subtasks.
//!
//! Determinism: [`run`] returns results in task order, and `fork_join`
//! returns subtask results in subtask order, regardless of which thread
//! executed what. Jobs are expected to be pure functions of their inputs,
//! so a pool at any thread count — including the `threads <= 1` serial
//! path, which never spawns — produces byte-identical results.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A job submitted to [`run`]: receives a [`PoolCtx`] so it can fan out
/// nested subtasks onto the same pool.
pub type Task<'env, T> = Box<dyn FnOnce(&PoolCtx<'_, 'env>) -> T + Send + 'env>;

type Job<'env> = Box<dyn FnOnce(&PoolCtx<'_, 'env>) + Send + 'env>;

struct QueueState<'env> {
    jobs: VecDeque<Job<'env>>,
    shutdown: bool,
}

struct Shared<'env> {
    queue: Mutex<QueueState<'env>>,
    work_cv: Condvar,
}

impl<'env> Shared<'env> {
    fn lock(&self) -> MutexGuard<'_, QueueState<'env>> {
        // A poisoned queue means a job panicked; the panic is already
        // propagating via the scope join, so keep draining rather than
        // turning one panic into a deadlock.
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Join state for one fan-out: result slots plus a count of unfinished
/// subtasks, signalled on completion.
struct JoinState<T> {
    state: Mutex<(Vec<Option<T>>, usize)>,
    done_cv: Condvar,
}

/// Decrements the join counter even if the subtask panicked, so the
/// waiting parent always wakes up (and then surfaces the missing result as
/// its own panic instead of hanging the pool).
struct CompleteOnDrop<'a, T> {
    join: &'a JoinState<T>,
    index: usize,
    value: Option<T>,
}

impl<T> Drop for CompleteOnDrop<'_, T> {
    fn drop(&mut self) {
        let mut state = self
            .join
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.0[self.index] = self.value.take();
        state.1 -= 1;
        if state.1 == 0 {
            self.join.done_cv.notify_all();
        }
    }
}

/// Execution context handed to every pool job.
///
/// Outside a pool (or on the `threads <= 1` serial path) use
/// [`PoolCtx::serial`], whose [`fork_join`](PoolCtx::fork_join) runs
/// subtasks inline in order — same results, no threads.
pub struct PoolCtx<'pool, 'env> {
    shared: Option<&'pool Shared<'env>>,
}

impl<'pool, 'env> PoolCtx<'pool, 'env> {
    /// A context that executes everything inline on the calling thread.
    pub fn serial() -> Self {
        PoolCtx { shared: None }
    }

    /// Whether fan-outs through this context may run on other threads.
    pub fn is_parallel(&self) -> bool {
        self.shared.is_some()
    }

    /// Run `tasks` to completion and return their results in task order.
    ///
    /// On a pool, subtasks are pushed onto the shared queue and the caller
    /// *helps*: it executes queued jobs (its own subtasks or anyone
    /// else's) while waiting, and only sleeps when the queue is empty and
    /// some of its subtasks are still running on other workers.
    pub fn fork_join<T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        match self.shared {
            None => tasks.into_iter().map(|task| task()).collect(),
            Some(shared) => enqueue_and_help(
                shared,
                tasks
                    .into_iter()
                    .map(|task| -> Task<'env, T> { Box::new(move |_ctx| task()) })
                    .collect(),
            ),
        }
    }
}

/// Push `tasks` onto the pool queue, help drain the queue until every one
/// of them has completed, and return their results in task order.
fn enqueue_and_help<'env, T: Send + 'env>(
    shared: &Shared<'env>,
    tasks: Vec<Task<'env, T>>,
) -> Vec<T> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let join = Arc::new(JoinState {
        state: Mutex::new(((0..n).map(|_| None).collect(), n)),
        done_cv: Condvar::new(),
    });
    {
        let mut q = shared.lock();
        for (index, task) in tasks.into_iter().enumerate() {
            let join = Arc::clone(&join);
            q.jobs.push_back(Box::new(move |ctx| {
                let mut complete = CompleteOnDrop {
                    join: &join,
                    index,
                    value: None,
                };
                complete.value = Some(task(ctx));
            }));
        }
    }
    shared.work_cv.notify_all();
    let ctx = PoolCtx {
        shared: Some(shared),
    };
    loop {
        let job = shared.lock().jobs.pop_front();
        match job {
            Some(job) => job(&ctx),
            None => {
                let state = join
                    .state
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if state.1 == 0 {
                    break;
                }
                // Our remaining subtasks are running on other workers (the
                // queue was empty, and we enqueued them before helping), so
                // waiting on done_cv cannot deadlock.
                drop(join.done_cv.wait(state).unwrap_or_else(|p| p.into_inner()));
            }
        }
    }
    let mut state = join
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    state
        .0
        .iter_mut()
        .map(|slot| slot.take().expect("pool task panicked"))
        .collect()
}

fn worker_loop<'env>(shared: &Shared<'env>) {
    let ctx = PoolCtx {
        shared: Some(shared),
    };
    loop {
        let job = {
            let mut q = shared.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        match job {
            Some(job) => job(&ctx),
            None => return,
        }
    }
}

/// Tells idle workers to exit once the queue drains, even if the batch
/// owner is unwinding from a panic — otherwise the scope join would hang.
struct ShutdownOnDrop<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for ShutdownOnDrop<'_, '_> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_cv.notify_all();
    }
}

/// Run a batch of independent tasks across at most `threads` threads
/// (including the calling thread) and return their results in task order.
///
/// `threads <= 1` — or a batch of one — runs everything inline on the
/// calling thread with a serial [`PoolCtx`]; the results are identical.
pub fn run<'env, T: Send + 'env>(threads: usize, tasks: Vec<Task<'env, T>>) -> Vec<T> {
    if threads <= 1 || tasks.len() <= 1 {
        let ctx = PoolCtx::serial();
        return tasks.into_iter().map(|task| task(&ctx)).collect();
    }
    let shared = Shared {
        queue: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            shutdown: false,
        }),
        work_cv: Condvar::new(),
    };
    std::thread::scope(|scope| {
        let _shutdown = ShutdownOnDrop { shared: &shared };
        for _ in 0..threads - 1 {
            scope.spawn(|| worker_loop(&shared));
        }
        enqueue_and_help(&shared, tasks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        let tasks: Vec<Task<'_, usize>> = (0..32)
            .map(|i| -> Task<'_, usize> { Box::new(move |_ctx| i * i) })
            .collect();
        let got = run(4, tasks);
        let want: Vec<usize> = (0..32).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_matches_serial() {
        let work = |threads: usize| {
            let tasks: Vec<Task<'_, u64>> = (0..20u64)
                .map(|i| -> Task<'_, u64> {
                    Box::new(move |_ctx| (0..1000).map(|j| (i * 31 + j) % 97).sum())
                })
                .collect();
            run(threads, tasks)
        };
        assert_eq!(work(1), work(2));
        assert_eq!(work(1), work(8));
    }

    #[test]
    fn nested_fork_join_helps_while_waiting() {
        let tasks: Vec<Task<'_, u64>> = (0..8u64)
            .map(|i| -> Task<'_, u64> {
                Box::new(move |ctx| {
                    let subs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..5u64)
                        .map(|k| -> Box<dyn FnOnce() -> u64 + Send> {
                            Box::new(move || i * 100 + k)
                        })
                        .collect();
                    ctx.fork_join(subs).into_iter().sum()
                })
            })
            .collect();
        // 2 threads, 8 parents each forking 5 subtasks: parents must help
        // drain the queue or this would deadlock.
        let got = run(2, tasks);
        let want: Vec<u64> = (0..8u64)
            .map(|i| (0..5u64).map(|k| i * 100 + k).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn serial_ctx_runs_inline() {
        let ctx = PoolCtx::serial();
        assert!(!ctx.is_parallel());
        let subs: Vec<Box<dyn FnOnce() -> i32 + Send>> = (0..4)
            .map(|i| -> Box<dyn FnOnce() -> i32 + Send> { Box::new(move || i + 1) })
            .collect();
        assert_eq!(ctx.fork_join(subs), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let tasks: Vec<Task<'_, ()>> = Vec::new();
        assert!(run(4, tasks).is_empty());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let slice = &data[..];
        let tasks: Vec<Task<'_, u64>> = (0..4)
            .map(|i| -> Task<'_, u64> {
                Box::new(move |_ctx| slice.iter().skip(i).step_by(4).sum())
            })
            .collect();
        let parts = run(3, tasks);
        assert_eq!(parts.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
