//! Descriptive statistics used throughout the analysis pipeline.
//!
//! Every paper figure caption reports some combination of mean / median /
//! max; [`Summary`] computes those in one pass over a sample. The trimmed
//! mean implements the exact sample-filtering rules the commercial BTSes
//! use (§2 and §5.1): BTS-APP's "drop the 5 lowest and 2 highest of 20
//! groups" and Speedtest's "drop bottom 25% / top 10%".

/// One-pass summary of a sample: count, mean, standard deviation, median,
/// min and max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (interpolated).
    pub median: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample. Returns an all-zero summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            min: sorted[0],
            max: sorted[count - 1],
        }
    }
}

/// Arithmetic mean; 0 for empty input (the analysis code treats an empty
/// stratum as a zero bar, matching how the paper's plots omit empty bars).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; 0 for fewer than two observations.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Median of an unsorted sample.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile (0–100) of an unsorted sample, with linear interpolation
/// between order statistics. Returns 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of observations strictly below `threshold`.
pub fn fraction_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

/// Fraction of observations strictly above `threshold`.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

/// Mean after discarding the `low` smallest and `high` largest
/// observations. This is the exact shape of BTS-APP's estimator (§2):
/// 20 groups, drop 5 lowest + 2 highest, average the rest.
///
/// Returns `None` when the trim would consume the whole sample.
pub fn trimmed_mean(values: &[f64], low: usize, high: usize) -> Option<f64> {
    if low + high >= values.len() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let kept = &sorted[low..sorted.len() - high];
    Some(mean(kept))
}

/// Mean after discarding the bottom `low_frac` and top `high_frac`
/// *fractions* of the sample — Speedtest's "filter out the top 10% and
/// bottom 25%" rule (§5.1).
pub fn fraction_trimmed_mean(values: &[f64], low_frac: f64, high_frac: f64) -> Option<f64> {
    let n = values.len();
    let low = (n as f64 * low_frac).floor() as usize;
    let high = (n as f64 * high_frac).floor() as usize;
    trimmed_mean(values, low, high)
}

/// Pearson correlation coefficient; `None` if undefined (length mismatch,
/// fewer than two points, or zero variance on either side).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Relative deviation between two BTS results, the paper's accuracy metric
/// (§5.3): `|a - b| / max(a, b)`. Returns 0 when both are 0.
pub fn relative_deviation(a: f64, b: f64) -> f64 {
    let denom = a.max(b);
    if denom <= 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn median_even_length_interpolates() {
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 30.0);
    }

    #[test]
    fn percentile_interpolation() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_btsapp_rule() {
        // 20 groups, drop 5 lowest + 2 highest: keep indices 5..18.
        let groups: Vec<f64> = (1..=20).map(|g| g as f64).collect();
        let got = trimmed_mean(&groups, 5, 2).unwrap();
        let want = (6..=18).sum::<usize>() as f64 / 13.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_rejects_overtrim() {
        assert_eq!(trimmed_mean(&[1.0, 2.0], 1, 1), None);
    }

    #[test]
    fn fraction_trimmed_mean_speedtest_rule() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        // Drop bottom 25 and top 10 → keep 26..=90.
        let got = fraction_trimmed_mean(&v, 0.25, 0.10).unwrap();
        let want = (26..=90).sum::<usize>() as f64 / 65.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn fraction_thresholds() {
        let v = [1.0, 5.0, 9.0, 15.0];
        assert!((fraction_below(&v, 10.0) - 0.75).abs() < 1e-12);
        assert!((fraction_above(&v, 10.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_degenerate() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&xs, &[1.0]), None);
    }

    #[test]
    fn relative_deviation_matches_paper_formula() {
        assert!((relative_deviation(100.0, 95.0) - 0.05).abs() < 1e-12);
        assert_eq!(relative_deviation(0.0, 0.0), 0.0);
        // Symmetric.
        assert_eq!(
            relative_deviation(80.0, 100.0),
            relative_deviation(100.0, 80.0)
        );
    }
}
