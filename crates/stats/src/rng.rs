//! Deterministic random number generation.
//!
//! Every experiment in this repository takes an explicit `u64` seed so that
//! figures and tests are exactly reproducible. [`SeededRng`] wraps a
//! splitmix64-seeded xoshiro256++ generator implemented here rather than
//! relying on `StdRng`'s unspecified algorithm, which may change across
//! `rand` releases and silently alter every calibrated figure.

/// A small, fast, deterministic PRNG (xoshiro256++) with convenience
/// methods for the distributions the simulator needs.
///
/// The stream is a pure function of the seed: the same seed always yields
/// the same sequence, on every platform and every release of this crate.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
}

/// splitmix64 step, used to expand a single `u64` seed into the four words
/// of xoshiro state (the construction recommended by the xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Derive an independent child generator. Used to give each simulated
    /// entity (a link, a flow, a user) its own stream so that adding one
    /// entity does not perturb the draws of the others.
    pub fn fork(&mut self, tag: u64) -> Self {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(mixed)
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, using the top 53 bits for a full-precision f64.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. `lo` must be `<= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range: lo > hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Rejection-free multiply-shift; bias is < 2^-64 * n, negligible
        // for the population sizes used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "normal: negative std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal draw parameterised by the mean/σ of the underlying
    /// normal (i.e. `exp(N(mu, sigma))`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential draw with the given rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "exponential: non-positive rate");
        -self.uniform().max(f64::MIN_POSITIVE).ln() / lambda
    }

    /// Poisson draw (Knuth's method; adequate for the small means used by
    /// the workload generators).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            // Normal approximation for large means keeps this O(1).
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SeededRng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SeededRng::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(9);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SeededRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SeededRng::new(13);
        for target in [0.5, 4.0, 50.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(target) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() < target.max(1.0) * 0.05,
                "target {target} mean {mean}"
            );
        }
    }

    #[test]
    fn index_bounds_and_coverage() {
        let mut rng = SeededRng::new(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SeededRng::new(21);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(23);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(29);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
