//! Histograms, PDFs and empirical CDFs in the style of the paper's figures.
//!
//! The measurement figures come in two shapes: CDF plots with annotated
//! mean/median/max (Figs 4, 7, 13–15, 20, 22, 26) and PDF plots showing the
//! multi-modal structure (Figs 16, 18, 19). [`Ecdf`] and [`Histogram`]
//! produce exactly those series.

use crate::descriptive;

/// A fixed-width-bin histogram over `[lo, hi)`.
///
/// Out-of-range observations are clamped into the first/last bin so that a
/// histogram over e.g. `[0, 1000)` Mbps still accounts for the occasional
/// 1,032 Mbps outlier the paper reports.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Build a histogram directly from a sample.
    pub fn from_values(lo: f64, hi: f64, bins: usize, values: &[f64]) -> Self {
        let mut h = Self::new(lo, hi, bins);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = ((value - self.lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Centre x-coordinate of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Normalised density series `(bin_center, pdf)` such that
    /// `Σ pdf·width = 1`. Empty histogram yields all-zero densities.
    pub fn pdf(&self) -> Vec<(f64, f64)> {
        let width = self.bin_width();
        let norm = if self.total == 0 {
            0.0
        } else {
            1.0 / (self.total as f64 * width)
        };
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 * norm))
            .collect()
    }

    /// Probability mass per bin (sums to 1 for a non-empty histogram).
    pub fn pmf(&self) -> Vec<(f64, f64)> {
        let norm = if self.total == 0 {
            0.0
        } else {
            1.0 / self.total as f64
        };
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 * norm))
            .collect()
    }

    /// Rebuild a histogram from a previously captured count vector, e.g.
    /// when decoding accumulator state from a snapshot.
    ///
    /// # Panics
    /// Panics if `counts` is empty or `lo >= hi`.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        let total = counts.iter().sum();
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Raw per-bin counts, in bin order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram with the same shape into this one.
    ///
    /// Counts are exact integer sums, so merging is associative and
    /// commutative: any merge order yields the same histogram as observing
    /// the concatenated sample.
    ///
    /// # Panics
    /// Panics if the two histograms differ in range or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge histograms of different shape"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Indices of local maxima of the count series that exceed
    /// `min_fraction` of the total mass — a quick peak detector used to
    /// sanity-check GMM mode recovery against the raw data.
    pub fn peaks(&self, min_fraction: f64) -> Vec<usize> {
        let n = self.counts.len();
        let mut peaks = Vec::new();
        for i in 0..n {
            let c = self.counts[i];
            if (c as f64) < min_fraction * self.total as f64 {
                continue;
            }
            let left_ok = i == 0 || self.counts[i - 1] <= c;
            let right_ok = i == n - 1 || self.counts[i + 1] < c;
            if left_ok && right_ok {
                peaks.push(i);
            }
        }
        peaks
    }
}

/// Empirical CDF over a sample, with the annotation values the paper's CDF
/// figures carry (mean / median / max).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from an unsorted sample.
    ///
    /// # Panics
    /// Panics if the sample contains NaN.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value with CDF ≥ `q` (q in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        descriptive::percentile_sorted(&self.sorted, q.clamp(0.0, 1.0) * 100.0)
    }

    /// Mean of the underlying sample.
    pub fn mean(&self) -> f64 {
        descriptive::mean(&self.sorted)
    }

    /// Median of the underlying sample.
    pub fn median(&self) -> f64 {
        descriptive::percentile_sorted(&self.sorted, 50.0)
    }

    /// Maximum of the underlying sample (0 for empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Evenly spaced `(x, F(x))` series with `points` samples spanning the
    /// data range — what a plotting frontend would consume.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        if lo == hi {
            return vec![(lo, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup |F₁ - F₂|`, used by
    /// tests to check that generated populations match their target
    /// distributions in shape.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

/// A log-bucketed histogram carrying the sufficient statistics for binned
/// GMM fitting ([`crate::gmm::Gmm::fit_binned`]).
///
/// Bin edges are geometrically spaced over `(lo, hi)`: edge `i` sits at
/// `lo · r^i` with `r = (hi/lo)^(1/bins)`, so every bin has the same
/// *relative* width `r - 1`. An extra underflow bin (index 0) absorbs
/// values `<= lo` (including zero and negatives), and values `>= hi` clamp
/// into the last log bin. Each bin is represented by the geometric mean of
/// its edges, which bounds the representative-vs-sample relative error by
/// `sqrt(r) - 1` — about 0.9% at the default 512 bins over four decades.
///
/// Counts are `u64` and merge by exact integer addition, so `LogBins` is
/// order-invariant under merge: shard-parallel and distributed reductions
/// produce bit-identical state, which is what makes the binned fit
/// thread-count- and reduce-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct LogBins {
    lo: f64,
    hi: f64,
    /// `counts[0]` is the underflow bin; `counts[1..]` are the log bins.
    counts: Vec<u64>,
    total: u64,
}

/// Default number of log bins used by the analysis accumulators.
pub const DEFAULT_LOG_BINS: usize = 512;

impl LogBins {
    /// Create a log-bucketed histogram with `bins` geometric bins over
    /// `(lo, hi)` plus one underflow bin.
    ///
    /// # Panics
    /// Panics if `bins == 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "log histogram needs at least one bin");
        assert!(lo > 0.0, "log histogram needs a positive lower bound");
        assert!(lo < hi, "log histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins + 1],
            total: 0,
        }
    }

    /// The standard shape the analysis accumulators use for a figure whose
    /// rendered range tops out at `hi` Mbps: four decades of dynamic range
    /// (`lo = hi / 10⁴`) across [`DEFAULT_LOG_BINS`] bins.
    pub fn for_range(hi: f64) -> Self {
        Self::new(hi / 1e4, hi, DEFAULT_LOG_BINS)
    }

    /// Record one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len() - 1;
        let idx = if !(value > self.lo) {
            0
        } else {
            let frac = (value / self.lo).ln() / (self.hi / self.lo).ln();
            let i = (frac * bins as f64).floor().max(0.0) as usize;
            1 + i.min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of log bins (excluding the underflow bin).
    pub fn bins(&self) -> usize {
        self.counts.len() - 1
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-bin counts (underflow bin first), in bin order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Representative value for bin `i` of [`Self::counts`]: the geometric
    /// mean of the bin's edges, or `lo · r^(-1/2)` for the underflow bin.
    pub fn representative(&self, i: usize) -> f64 {
        let bins = (self.counts.len() - 1) as f64;
        let r = (self.hi / self.lo).powf(1.0 / bins);
        if i == 0 {
            self.lo / r.sqrt()
        } else {
            self.lo * r.powf(i as f64 - 0.5)
        }
    }

    /// The occupied bins as `(representative, count)` pairs in bin order —
    /// the weighted sample the binned EM iterates.
    pub fn weighted_points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.representative(i), c as f64))
            .collect()
    }

    /// Rebuild from a previously captured count vector (underflow bin
    /// first). Inverse of [`Self::counts`] given the same `lo`/`hi`.
    ///
    /// # Panics
    /// Panics if `counts` has fewer than two entries, `lo <= 0`, or
    /// `lo >= hi`.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(counts.len() >= 2, "log histogram needs at least one bin");
        assert!(lo > 0.0, "log histogram needs a positive lower bound");
        assert!(lo < hi, "log histogram range must be non-empty");
        let total = counts.iter().sum();
        Self {
            lo,
            hi,
            counts,
            total,
        }
    }

    /// Fold another log histogram with the same shape into this one.
    /// Exact integer addition: associative, commutative, order-invariant.
    ///
    /// # Panics
    /// Panics if the two histograms differ in range or bin count.
    pub fn merge(&mut self, other: &LogBins) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge log histograms of different shape"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5); // bin 0
        h.add(9.9); // bin 9
        h.add(-5.0); // clamped to bin 0
        h.add(50.0); // clamped to bin 9
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_values(0.0, 10.0, 20, &values);
        let integral: f64 = h.pdf().iter().map(|(_, d)| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = Histogram::from_values(0.0, 1.0, 4, &[0.1, 0.2, 0.6, 0.9]);
        let s: f64 = h.pmf().iter().map(|(_, p)| p).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peaks_finds_bimodal_structure() {
        // Two clear clusters around 2 and 8.
        let mut values = Vec::new();
        for i in 0..100 {
            values.push(2.0 + (i % 10) as f64 * 0.01);
            values.push(8.0 + (i % 10) as f64 * 0.01);
        }
        let h = Histogram::from_values(0.0, 10.0, 10, &values);
        let peaks = h.peaks(0.05);
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn empty_histogram_pdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.pdf().iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn ecdf_eval_step_behaviour() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert!((e.eval(2.0) - 0.5).abs() < 1e-12);
        assert!((e.eval(2.5) - 0.5).abs() < 1e-12);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_annotations() {
        let e = Ecdf::new(&[10.0, 20.0, 90.0]);
        assert!((e.mean() - 40.0).abs() < 1e-12);
        assert!((e.median() - 20.0).abs() < 1e-12);
        assert_eq!(e.max(), 90.0);
    }

    #[test]
    fn ecdf_quantile_roundtrip() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Ecdf::new(&values);
        assert!((e.quantile(0.5) - 50.5).abs() < 1e-9);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn ecdf_series_monotone() {
        let values: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.37).sin() * 50.0 + 60.0)
            .collect();
        let e = Ecdf::new(&values);
        let series = e.series(100);
        assert_eq!(series.len(), 100);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_concatenated_observe() {
        let all: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.773).sin() * 40.0 + 50.0)
            .collect();
        let whole = Histogram::from_values(0.0, 100.0, 25, &all);
        let mut left = Histogram::from_values(0.0, 100.0, 25, &all[..201]);
        let right = Histogram::from_values(0.0, 100.0, 25, &all[201..]);
        left.merge(&right);
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.total(), whole.total());
    }

    #[test]
    fn histogram_from_counts_roundtrips() {
        let h = Histogram::from_values(0.0, 10.0, 5, &[1.0, 3.0, 3.5, 9.0]);
        let back = Histogram::from_counts(0.0, 10.0, h.counts().to_vec());
        assert_eq!(back.counts(), h.counts());
        assert_eq!(back.total(), h.total());
        assert_eq!(back.bin_center(2), h.bin_center(2));
    }

    #[test]
    fn logbins_places_values_in_relative_buckets() {
        let mut lb = LogBins::new(0.1, 1000.0, 512);
        lb.add(0.0); // underflow
        lb.add(-3.0); // underflow
        lb.add(0.05); // underflow
        lb.add(50.0);
        lb.add(5000.0); // clamps into last bin
        assert_eq!(lb.counts()[0], 3);
        assert_eq!(lb.total(), 5);
        assert_eq!(lb.counts()[lb.bins()], 1);
        // The representative of an interior value's bin is within one
        // relative bin width of the value itself.
        let pts = lb.weighted_points();
        let (rep, _) = pts
            .iter()
            .find(|&&(x, _)| (x / 50.0 - 1.0).abs() < 0.02)
            .copied()
            .expect("50 Mbps bin present");
        assert!(rep > 0.0);
    }

    #[test]
    fn logbins_merge_is_order_invariant() {
        let vals: Vec<f64> = (0..400)
            .map(|i| 0.2 + (i as f64 * 0.37).cos().abs() * 400.0)
            .collect();
        let mut whole = LogBins::for_range(1000.0);
        for &v in &vals {
            whole.add(v);
        }
        let mut a = LogBins::for_range(1000.0);
        let mut b = LogBins::for_range(1000.0);
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn logbins_from_counts_roundtrips() {
        let mut lb = LogBins::for_range(500.0);
        for v in [0.0, 0.3, 12.0, 480.0, 9000.0] {
            lb.add(v);
        }
        let back = LogBins::from_counts(500.0 / 1e4, 500.0, lb.counts().to_vec());
        assert_eq!(back, lb);
    }

    #[test]
    fn ks_identical_zero_disjoint_one() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
        let c = Ecdf::new(&[100.0, 200.0]);
        assert_eq!(a.ks_statistic(&c), 1.0);
    }
}
