//! Weighted categorical sampling.
//!
//! The dataset generator constantly draws from weighted categories (which
//! ISP, which band, which city tier, which broadband plan…). The
//! [`WeightedIndex`] here uses the alias method so each draw is O(1), which
//! matters when generating millions of records.

use crate::rng::SeededRng;

/// O(1) weighted categorical sampler (Walker/Vose alias method).
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

/// Error building a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or the total was not positive-finite.
    Invalid,
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::Empty => write!(f, "no weights supplied"),
            WeightError::Invalid => {
                write!(f, "weights must be finite, non-negative, with positive sum")
            }
        }
    }
}

impl std::error::Error for WeightError {}

impl WeightedIndex {
    /// Build a sampler over the given (unnormalised) weights.
    pub fn new(weights: &[f64]) -> Result<Self, WeightError> {
        if weights.is_empty() {
            return Err(WeightError::Empty);
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| !w.is_finite() || w < 0.0)
        {
            return Err(WeightError::Invalid);
        }
        let n = weights.len();
        // Vose's alias construction.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled.clone();
        for (i, &p) in work.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Self {
            prob,
            alias,
            weights: weights.to_vec(),
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether there are zero categories (never true for a built sampler).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Normalised probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[i] / total
    }

    /// Draw one category index.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Convenience: draw one of `items` with the paired weights.
pub fn weighted_choice<'a, T>(
    rng: &mut SeededRng,
    items: &'a [T],
    weights: &[f64],
) -> Result<&'a T, WeightError> {
    if items.len() != weights.len() {
        return Err(WeightError::Invalid);
    }
    let idx = WeightedIndex::new(weights)?.sample(rng);
    Ok(&items[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(WeightedIndex::new(&[]).unwrap_err(), WeightError::Empty);
        assert_eq!(
            WeightedIndex::new(&[0.0, 0.0]).unwrap_err(),
            WeightError::Invalid
        );
        assert_eq!(
            WeightedIndex::new(&[1.0, -1.0]).unwrap_err(),
            WeightError::Invalid
        );
        assert_eq!(
            WeightedIndex::new(&[f64::NAN]).unwrap_err(),
            WeightError::Invalid
        );
    }

    #[test]
    fn zero_weight_never_sampled() {
        let w = WeightedIndex::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SeededRng::new(5);
        for _ in 0..10_000 {
            assert_ne!(w.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let w = WeightedIndex::new(&weights).unwrap();
        let mut rng = SeededRng::new(77);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - weights[i]).abs() < 0.005,
                "cat {i}: freq {freq} vs weight {}",
                weights[i]
            );
        }
    }

    #[test]
    fn single_category_always_zero() {
        let w = WeightedIndex::new(&[3.5]).unwrap();
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            assert_eq!(w.sample(&mut rng), 0);
        }
    }

    #[test]
    fn probability_is_normalised() {
        let w = WeightedIndex::new(&[2.0, 6.0]).unwrap();
        assert!((w.probability(0) - 0.25).abs() < 1e-12);
        assert!((w.probability(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_choice_length_mismatch() {
        let mut rng = SeededRng::new(2);
        let err = weighted_choice(&mut rng, &["a", "b"], &[1.0]).unwrap_err();
        assert_eq!(err, WeightError::Invalid);
    }
}
