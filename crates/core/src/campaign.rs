//! The evaluation campaign: plan → execute (§5.3, Figs 17–26).
//!
//! The evaluation half of the paper runs thousands of simulated trials
//! — single tests, back-to-back pairs, four-service test groups, TCP
//! ramp-up measurements, and design-ablation variants. This module
//! turns that into a three-stage pipeline:
//!
//! 1. **Plan** ([`CampaignPlan`]): enumerate [`TrialSpec`]s — the
//!    deduplicated union of every trial the requested figures need.
//!    Each spec owns a deterministic RNG stream derived from
//!    `(campaign seed, series, index)` by [`trial_seed`], so a trial's
//!    outcome depends only on its *identity*, never on its position in
//!    the plan or on which figures requested it. Shared work (the
//!    back-to-back BTS-APP references of Figs 20–22) therefore runs
//!    once and feeds every consumer byte-identically.
//! 2. **Execute** ([`run_campaign`]): a work-stealing thread pool runs
//!    the trials against per-scenario [`TestHarness`]es (scenarios are
//!    immutable, so one harness serves every worker) and assembles a
//!    columnar [`TrialPool`] in plan order — byte-identical for any
//!    thread count.
//! 3. **Reduce** (in `mbw-bench`): figure accumulators fold the shared
//!    pool into Figs 17–26 in one pass.
//!
//! The `trial_seed` scheme replaces the ad-hoc `seed.wrapping_add(i *
//! stride)` derivations the per-figure loops used: a splitmix64-style
//! bijective mixer guarantees distinct indices in a series can never
//! collide, while distinct series decorrelate fully instead of sharing
//! arithmetic progressions.

use crate::estimator::ConvergenceEstimator;
use crate::harness::TestHarness;
use crate::model::TechClass;
use crate::probe::{self, BtsKind, SwiftestConfig};
use crate::scenario::AccessScenario;
use mbw_congestion::{CcAlgorithm, FlowConfig, FlowSim};
use mbw_frame::{Codec, CodecError, Dec, Enc};
use mbw_netsim::{ConstantCapacity, PathConfig, PathModel, RampUpCapacity};
use mbw_stats::{Gmm, SeededRng};
use mbw_telemetry::trace::{self, ArgValue};
use mbw_telemetry::CampaignMetrics;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

/// Finalizer of the splitmix64 generator: a bijective mixer on `u64`.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// The seed of trial `index` within `series` of the campaign.
///
/// Bijective in `index` for a fixed `(campaign_seed, series)`: two
/// distinct indices in one series can never share a seed.
pub fn trial_seed(campaign_seed: u64, series: u64, index: u64) -> u64 {
    mix64(index ^ mix64(campaign_seed ^ mix64(series)))
}

/// Which access population a trial draws its link from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioId {
    /// The calibrated default scenario of one technology class.
    Tech(TechClass),
    /// The §7 mmWave 5G extension scenario.
    Mmwave,
}

impl ScenarioId {
    /// Every scenario the evaluation draws from.
    pub const ALL: [ScenarioId; 4] = [
        ScenarioId::Tech(TechClass::Lte),
        ScenarioId::Tech(TechClass::Nr),
        ScenarioId::Tech(TechClass::Wifi),
        ScenarioId::Mmwave,
    ];

    fn tag(self) -> u64 {
        match self {
            ScenarioId::Tech(TechClass::Lte) => 0,
            ScenarioId::Tech(TechClass::Nr) => 1,
            ScenarioId::Tech(TechClass::Wifi) => 2,
            ScenarioId::Mmwave => 3,
        }
    }

    /// Materialise the scenario.
    pub fn scenario(self) -> AccessScenario {
        match self {
            ScenarioId::Tech(t) => AccessScenario::default_for(t),
            ScenarioId::Mmwave => AccessScenario::mmwave(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::Tech(t) => t.name(),
            ScenarioId::Mmwave => "mmWave",
        }
    }
}

/// The ecosystem-profile dimension of a campaign plan.
///
/// The measurement half swaps whole
/// [`mbw_dataset::profile::EcosystemProfile`]s; the evaluation half
/// needs only what reaches a drawn path — the per-technology capacity
/// populations and the RTT regime — so a profile appears here as a set
/// of scale factors applied to the calibrated default scenarios.
///
/// Trial seeds are a pure function of the campaign seed and the trial's
/// identity ([`TrialSpec::seed`]) and do **not** include the profile:
/// running the same plan under two profiles reuses the exact same path
/// draws (common random numbers), so cross-ecosystem comparisons of
/// Figs 17–26 are paired, not independent. The neutral
/// [`ProfileDim::PAPER_CHINA`] leaves every scenario bit-identical to
/// the pre-profile pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileDim {
    /// Profile name (matches the `mbw-dataset` built-in names).
    pub name: &'static str,
    /// Capacity scale on the 4G population model.
    pub lte_scale: f64,
    /// Capacity scale on the sub-6 GHz 5G population model.
    pub nr_scale: f64,
    /// Capacity scale on the WiFi population model.
    pub wifi_scale: f64,
    /// Capacity scale on the §7 mmWave population model.
    pub mmwave_scale: f64,
    /// Scale on every scenario's RTT draw range.
    pub rtt_scale: f64,
}

impl ProfileDim {
    /// The paper's own ecosystem: the neutral dimension (all scales 1).
    pub const PAPER_CHINA: Self = Self {
        name: "paper-china",
        lte_scale: 1.0,
        nr_scale: 1.0,
        wifi_scale: 1.0,
        mmwave_scale: 1.0,
        rtt_scale: 1.0,
    };

    /// ERRANT-style European multi-operator RAN: solid LTE, early-stage
    /// NR, longer paths to the measurement servers.
    pub const EUROPE_RAN: Self = Self {
        name: "europe-ran",
        lte_scale: 0.85,
        nr_scale: 0.70,
        wifi_scale: 0.95,
        mmwave_scale: 0.90,
        rtt_scale: 1.25,
    };

    /// AmiGos-style developing-market network: low-band LTE, nascent
    /// 5G, DSL-class broadband, distant servers.
    pub const DEVELOPING_MARKET: Self = Self {
        name: "developing-market",
        lte_scale: 0.55,
        nr_scale: 0.35,
        wifi_scale: 0.60,
        mmwave_scale: 0.50,
        rtt_scale: 1.80,
    };

    /// mmWave-dense metropolitan deployment: wide contiguous spectrum
    /// everywhere and edge-class RTTs.
    pub const MMWAVE_METRO: Self = Self {
        name: "mmwave-metro",
        lte_scale: 1.10,
        nr_scale: 1.60,
        wifi_scale: 1.30,
        mmwave_scale: 1.40,
        rtt_scale: 0.70,
    };

    /// Every built-in profile dimension, paper first.
    pub const ALL: [Self; 4] = [
        Self::PAPER_CHINA,
        Self::EUROPE_RAN,
        Self::DEVELOPING_MARKET,
        Self::MMWAVE_METRO,
    ];

    /// Resolve a built-in dimension by name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name == name)
    }

    /// Whether this dimension changes nothing (every scale is 1).
    pub fn is_neutral(&self) -> bool {
        [
            self.lte_scale,
            self.nr_scale,
            self.wifi_scale,
            self.mmwave_scale,
            self.rtt_scale,
        ]
        .iter()
        .all(|&s| s == 1.0)
    }

    /// The capacity scale this dimension applies to one scenario.
    pub fn tech_scale(&self, id: ScenarioId) -> f64 {
        match id {
            ScenarioId::Tech(TechClass::Lte) => self.lte_scale,
            ScenarioId::Tech(TechClass::Nr) => self.nr_scale,
            ScenarioId::Tech(TechClass::Wifi) => self.wifi_scale,
            ScenarioId::Mmwave => self.mmwave_scale,
        }
    }

    /// Apply the dimension to a materialised scenario.
    ///
    /// A neutral dimension returns the scenario untouched — not merely
    /// rescaled by 1 — so the default campaign remains bit-identical to
    /// the pre-profile pipeline (`Gmm` reconstruction renormalises its
    /// weights, which could otherwise flip low bits).
    pub fn scale_scenario(&self, id: ScenarioId, mut scenario: AccessScenario) -> AccessScenario {
        if self.is_neutral() {
            return scenario;
        }
        let s = self.tech_scale(id);
        let triples: Vec<(f64, f64, f64)> = scenario
            .model
            .components()
            .iter()
            .map(|c| (c.weight, c.mean * s, c.std_dev * s))
            .collect();
        scenario.model = Gmm::from_triples(&triples).expect("scaled model valid");
        scenario.rtt_range = (
            scenario.rtt_range.0 * self.rtt_scale,
            scenario.rtt_range.1 * self.rtt_scale,
        );
        scenario
    }
}

impl Default for ProfileDim {
    fn default() -> Self {
        Self::PAPER_CHINA
    }
}

/// A Swiftest design variant (the DESIGN.md ablations).
///
/// [`VariantId::PaperDefault`] is the paper's configuration and is
/// *shared* by all three ablation tables — under structural seeding it
/// runs once per campaign no matter how many tables reference it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantId {
    /// GMM prior, 10-sample/3% convergence, modal escalation.
    PaperDefault,
    /// Single Gaussian at the population mean instead of the GMM.
    PopulationMean,
    /// No prior: start at 1 Mbps and grow (application slow start).
    BlindRampup,
    /// Looser convergence: 5-sample window, 5% tolerance.
    ConvergeLoose,
    /// Stricter convergence: 20-sample window, 1% tolerance.
    ConvergeStrict,
    /// Fixed ×1.25 growth instead of modal jumps.
    EscalateFixed,
}

/// One variant's resolved probing configuration.
#[derive(Debug, Clone)]
pub struct VariantSetup {
    /// The bandwidth prior handed to the prober.
    pub model: Gmm,
    /// Convergence window (samples).
    pub window: usize,
    /// Convergence tolerance (fraction).
    pub tolerance: f64,
    /// Prober configuration.
    pub config: SwiftestConfig,
}

impl VariantId {
    /// Every variant the ablation tables use.
    pub const ALL: [VariantId; 6] = [
        VariantId::PaperDefault,
        VariantId::PopulationMean,
        VariantId::BlindRampup,
        VariantId::ConvergeLoose,
        VariantId::ConvergeStrict,
        VariantId::EscalateFixed,
    ];

    fn tag(self) -> u64 {
        match self {
            VariantId::PaperDefault => 0,
            VariantId::PopulationMean => 1,
            VariantId::BlindRampup => 2,
            VariantId::ConvergeLoose => 3,
            VariantId::ConvergeStrict => 4,
            VariantId::EscalateFixed => 5,
        }
    }

    /// Canonical label (ablation tables may re-label the shared
    /// paper-default row per table).
    pub fn label(self) -> &'static str {
        match self {
            VariantId::PaperDefault => "paper-default",
            VariantId::PopulationMean => "population-mean",
            VariantId::BlindRampup => "blind-rampup",
            VariantId::ConvergeLoose => "w5-t5% (loose)",
            VariantId::ConvergeStrict => "w20-t1% (strict)",
            VariantId::EscalateFixed => "fixed-1.25x",
        }
    }

    /// Resolve the variant to a concrete probing setup. All variants
    /// ablate the 5G (NR) configuration, as in DESIGN.md.
    pub fn setup(self) -> VariantSetup {
        let full = TechClass::Nr.default_model();
        let default = SwiftestConfig::default();
        let (model, window, tolerance, config) = match self {
            VariantId::PaperDefault => (full, 10, 0.03, default),
            VariantId::PopulationMean => (
                Gmm::from_triples(&[(1.0, full.mean(), full.variance().sqrt())]).expect("valid"),
                10,
                0.03,
                default,
            ),
            VariantId::BlindRampup => (
                Gmm::from_triples(&[(1.0, 1.0, 0.2)]).expect("valid"),
                10,
                0.03,
                default,
            ),
            VariantId::ConvergeLoose => (full, 5, 0.05, default),
            VariantId::ConvergeStrict => (full, 20, 0.01, default),
            VariantId::EscalateFixed => (
                Gmm::from_triples(&[(1.0, full.dominant_mode(), 1.0)]).expect("valid"),
                10,
                0.03,
                SwiftestConfig {
                    beyond_mode_growth: 1.25,
                    ..SwiftestConfig::default()
                },
            ),
        };
        VariantSetup {
            model,
            window,
            tolerance,
            config,
        }
    }
}

fn bts_tag(kind: BtsKind) -> u64 {
    match kind {
        BtsKind::BtsApp => 0,
        BtsKind::Fast => 1,
        BtsKind::FastBts => 2,
        BtsKind::Swiftest => 3,
    }
}

/// What one trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialKind {
    /// One service on a freshly drawn link (1 outcome row).
    Single(BtsKind),
    /// A back-to-back pair on one drawn link, rows in argument order
    /// (2 outcome rows).
    Pair(BtsKind, BtsKind),
    /// The §5.3 benchmark-study group: all four services on one drawn
    /// link, rows `[BTS-APP, FAST, FastBTS, Swiftest]` (4 outcome
    /// rows).
    Group,
    /// A Fig 17 TCP ramp-up measurement: `(algorithm, bandwidth-bin
    /// index into [`BANDWIDTH_BINS`])` (1 outcome row; the ramp time
    /// lands in `duration_s`).
    Ramp(CcAlgorithm, u8),
    /// One Swiftest design-variant run (1 outcome row).
    Variant(VariantId),
}

impl TrialKind {
    /// Outcome rows this trial produces.
    pub fn outcomes(self) -> usize {
        match self {
            TrialKind::Single(_) | TrialKind::Ramp(..) | TrialKind::Variant(_) => 1,
            TrialKind::Pair(..) => 2,
            TrialKind::Group => 4,
        }
    }

    /// Telemetry label (one of
    /// [`mbw_telemetry::campaign::TRIAL_KIND_LABELS`]).
    pub fn label(self) -> &'static str {
        match self {
            TrialKind::Single(_) => "single",
            TrialKind::Pair(..) => "pair",
            TrialKind::Group => "group",
            TrialKind::Ramp(..) => "ramp",
            TrialKind::Variant(_) => "variant",
        }
    }

    /// The seed-series code. Ramp cells deliberately share one code:
    /// every `(bandwidth, algorithm)` cell then sees the *same* path
    /// draws (common random numbers), which is what makes Fig 17's
    /// cross-cell comparisons low-variance — the legacy sweep had the
    /// same property by reusing one stride sequence for all cells.
    fn seed_code(self) -> u64 {
        match self {
            TrialKind::Single(k) => 0x100 + bts_tag(k),
            TrialKind::Pair(a, b) => 0x200 + bts_tag(a) * 16 + bts_tag(b),
            TrialKind::Group => 0x300,
            TrialKind::Ramp(..) => 0x400,
            TrialKind::Variant(v) => 0x500 + v.tag(),
        }
    }
}

/// One planned trial: what to run, on which population, and which
/// index of its series' RNG stream to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrialSpec {
    /// What runs.
    pub kind: TrialKind,
    /// Which population the link is drawn from.
    pub scenario: ScenarioId,
    /// Position within the series (selects the RNG stream element).
    pub index: u32,
}

impl TrialSpec {
    /// The series this spec's RNG stream belongs to.
    pub fn series(&self) -> u64 {
        (self.kind.seed_code() << 8) | self.scenario.tag()
    }

    /// The trial's seed — a pure function of the campaign seed and the
    /// spec's identity, independent of plan composition.
    pub fn seed(&self, campaign_seed: u64) -> u64 {
        trial_seed(campaign_seed, self.series(), u64::from(self.index))
    }
}

fn bts_from_tag(tag: u8) -> Result<BtsKind, CodecError> {
    Ok(match tag {
        0 => BtsKind::BtsApp,
        1 => BtsKind::Fast,
        2 => BtsKind::FastBts,
        3 => BtsKind::Swiftest,
        _ => {
            return Err(CodecError::BadTag {
                what: "bts kind",
                tag: u64::from(tag),
            })
        }
    })
}

impl Codec for ScenarioId {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u8(self.tag() as u8);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        // `ALL` is in tag order, so the tag doubles as the index.
        let tag = dec.u8()?;
        ScenarioId::ALL
            .get(tag as usize)
            .copied()
            .ok_or(CodecError::BadTag {
                what: "scenario",
                tag: u64::from(tag),
            })
    }
}

impl Codec for VariantId {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u8(self.tag() as u8);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let tag = dec.u8()?;
        VariantId::ALL
            .get(tag as usize)
            .copied()
            .ok_or(CodecError::BadTag {
                what: "variant",
                tag: u64::from(tag),
            })
    }
}

impl Codec for TrialKind {
    fn encode(&self, enc: &mut Enc) {
        match *self {
            TrialKind::Single(k) => {
                enc.put_u8(0);
                enc.put_u8(bts_tag(k) as u8);
            }
            TrialKind::Pair(a, b) => {
                enc.put_u8(1);
                enc.put_u8(bts_tag(a) as u8);
                enc.put_u8(bts_tag(b) as u8);
            }
            TrialKind::Group => enc.put_u8(2),
            TrialKind::Ramp(alg, bin) => {
                enc.put_u8(3);
                let alg_tag = CcAlgorithm::ALL
                    .iter()
                    .position(|&a| a == alg)
                    .expect("algorithm in ALL");
                enc.put_u8(alg_tag as u8);
                enc.put_u8(bin);
            }
            TrialKind::Variant(v) => {
                enc.put_u8(4);
                v.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(TrialKind::Single(bts_from_tag(dec.u8()?)?)),
            1 => {
                let a = bts_from_tag(dec.u8()?)?;
                let b = bts_from_tag(dec.u8()?)?;
                Ok(TrialKind::Pair(a, b))
            }
            2 => Ok(TrialKind::Group),
            3 => {
                let alg_tag = dec.u8()?;
                let alg =
                    CcAlgorithm::ALL
                        .get(alg_tag as usize)
                        .copied()
                        .ok_or(CodecError::BadTag {
                            what: "congestion algorithm",
                            tag: u64::from(alg_tag),
                        })?;
                let bin = dec.u8()?;
                if usize::from(bin) >= BANDWIDTH_BINS.len() {
                    return Err(CodecError::BadTag {
                        what: "bandwidth bin",
                        tag: u64::from(bin),
                    });
                }
                Ok(TrialKind::Ramp(alg, bin))
            }
            4 => Ok(TrialKind::Variant(Codec::decode(dec)?)),
            tag => Err(CodecError::BadTag {
                what: "trial kind",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Codec for TrialSpec {
    fn encode(&self, enc: &mut Enc) {
        self.kind.encode(enc);
        self.scenario.encode(enc);
        enc.put_u32(self.index);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            kind: Codec::decode(dec)?,
            scenario: Codec::decode(dec)?,
            index: dec.u32()?,
        })
    }
}

/// Trial counts for [`CampaignPlan::evaluation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCounts {
    /// Back-to-back pairs per technology (Figs 20–22 + workload).
    pub tests: usize,
    /// Four-service test groups per technology (Figs 23–25).
    pub groups: usize,
    /// Paths per Fig 17 `(bandwidth, algorithm)` cell.
    pub ramp_paths: usize,
    /// Runs per ablation variant.
    pub ablation: usize,
    /// mmWave Swiftest runs (§7).
    pub mmwave: usize,
}

impl EvalCounts {
    /// Paper-scale counts (the `figures` binary's full mode).
    pub fn full() -> Self {
        Self {
            tests: 150,
            groups: 80,
            ramp_paths: 24,
            ablation: 60,
            mmwave: 80,
        }
    }

    /// Smoke-test counts (the `figures` binary's quick mode).
    pub fn quick() -> Self {
        Self {
            tests: 30,
            groups: 30,
            ramp_paths: 6,
            ablation: 25,
            mmwave: 30,
        }
    }

    /// Uniform sizing from one `--trials` knob: `n` per series, except
    /// ramp cells (18 of them; each path simulates up to 12 s of flow
    /// time) which get `n / 6`, floored at 4.
    pub fn uniform(n: usize) -> Self {
        Self {
            tests: n,
            groups: n,
            ramp_paths: (n / 6).max(4),
            ablation: n,
            mmwave: n,
        }
    }
}

/// The scenario tag ramp trials are planned under. Ramp trials draw
/// their own path parameters (they model wired-ish production-server
/// paths, not an access scenario), so this is a fixed convention that
/// keeps all ramp series in one seed stream.
pub const RAMP_SCENARIO: ScenarioId = ScenarioId::Tech(TechClass::Nr);

/// A deduplicated, ordered set of trials to execute.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    campaign_seed: u64,
    specs: Vec<TrialSpec>,
    seen: HashSet<TrialSpec>,
    profile: ProfileDim,
}

impl CampaignPlan {
    /// An empty plan under `campaign_seed` (paper-china profile).
    pub fn new(campaign_seed: u64) -> Self {
        Self {
            campaign_seed,
            specs: Vec::new(),
            seen: HashSet::new(),
            profile: ProfileDim::PAPER_CHINA,
        }
    }

    /// The campaign seed every trial seed derives from.
    pub fn campaign_seed(&self) -> u64 {
        self.campaign_seed
    }

    /// The plan's ecosystem-profile dimension.
    pub fn profile(&self) -> ProfileDim {
        self.profile
    }

    /// Run the plan's trials under a different ecosystem profile. Trial
    /// seeds are unchanged — the same paths are drawn, rescaled — so
    /// per-profile campaigns are CRN-paired (see [`ProfileDim`]).
    pub fn set_profile(&mut self, profile: ProfileDim) {
        self.profile = profile;
    }

    /// The planned trials, in insertion order.
    pub fn specs(&self) -> &[TrialSpec] {
        &self.specs
    }

    /// Number of planned trials.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan holds no trials.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Add one trial; returns `false` (and keeps the plan unchanged)
    /// if an identical spec is already planned.
    pub fn push(&mut self, spec: TrialSpec) -> bool {
        if self.seen.insert(spec) {
            self.specs.push(spec);
            true
        } else {
            false
        }
    }

    /// Add trials `0..n` of one series (deduplicated).
    pub fn push_series(&mut self, kind: TrialKind, scenario: ScenarioId, n: usize) {
        for index in 0..n {
            self.push(TrialSpec {
                kind,
                scenario,
                index: index as u32,
            });
        }
    }

    /// The full evaluation campaign: the union of every trial Figs
    /// 17–26, the ablation tables, and the §7 mmWave report need.
    pub fn evaluation(counts: &EvalCounts, campaign_seed: u64) -> Self {
        let mut plan = Self::new(campaign_seed);
        // Figs 20–22 share one back-to-back series per technology: the
        // BTS-APP reference runs once and feeds duration, data-usage,
        // and deviation figures alike.
        for tech in TechClass::ALL {
            plan.push_series(
                TrialKind::Pair(BtsKind::Swiftest, BtsKind::BtsApp),
                ScenarioId::Tech(tech),
                counts.tests,
            );
        }
        for tech in TechClass::ALL {
            plan.push_series(TrialKind::Group, ScenarioId::Tech(tech), counts.groups);
        }
        for alg in CcAlgorithm::ALL {
            for bin in 0..BANDWIDTH_BINS.len() {
                plan.push_series(
                    TrialKind::Ramp(alg, bin as u8),
                    RAMP_SCENARIO,
                    counts.ramp_paths,
                );
            }
        }
        for variant in VariantId::ALL {
            plan.push_series(
                TrialKind::Variant(variant),
                ScenarioId::Tech(TechClass::Nr),
                counts.ablation,
            );
        }
        plan.push_series(
            TrialKind::Single(BtsKind::Swiftest),
            ScenarioId::Mmwave,
            counts.mmwave,
        );
        plan
    }
}

/// One outcome row of an executed trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Probing time, seconds (for ramp trials: the ramp-up time).
    pub duration_s: f64,
    /// Server-selection (PING) overhead, seconds.
    pub ping_s: f64,
    /// Bytes pulled through the access link.
    pub data_bytes: f64,
    /// Reported bandwidth, Mbps.
    pub estimate_mbps: f64,
    /// The drawn link's nominal capacity, Mbps (for ramp trials: the
    /// bandwidth bin).
    pub truth_mbps: f64,
    /// Whether the run converged (for ramp trials: whether the flow
    /// reached 90% of nominal within the cap).
    pub complete: bool,
}

/// The most outcome rows any [`TrialKind`] produces (a [`TrialKind::
/// Group`]'s four services) — the size of the fixed per-worker scratch
/// buffer the executor writes rows into instead of allocating a `Vec`
/// per trial.
pub const MAX_TRIAL_ROWS: usize = 4;

/// Trials a worker claims per cursor bump (see
/// [`run_campaign_metered`]'s work-stealing loop).
const CLAIM_BATCH: usize = 4;

impl TrialOutcome {
    /// All-zero placeholder for fixed-size scratch buffers.
    const ZERO: TrialOutcome = TrialOutcome {
        duration_s: 0.0,
        ping_s: 0.0,
        data_bytes: 0.0,
        estimate_mbps: 0.0,
        truth_mbps: 0.0,
        complete: false,
    };

    /// Probing plus selection time — the user-visible test duration.
    pub fn total_s(&self) -> f64 {
        self.duration_s + self.ping_s
    }

    /// Accuracy against a reference estimate: `1 − deviation`.
    pub fn accuracy_vs(&self, reference_mbps: f64) -> f64 {
        1.0 - mbw_stats::descriptive::relative_deviation(self.estimate_mbps, reference_mbps)
    }
}

impl From<&crate::harness::TestOutcome> for TrialOutcome {
    fn from(o: &crate::harness::TestOutcome) -> Self {
        Self {
            duration_s: o.duration.as_secs_f64(),
            ping_s: o.ping_overhead.as_secs_f64(),
            data_bytes: o.data_bytes,
            estimate_mbps: o.estimate_mbps,
            truth_mbps: o.truth_mbps,
            complete: o.status.is_complete(),
        }
    }
}

/// Columnar outcomes of an executed campaign, in plan order.
///
/// Struct-of-arrays: one row per outcome, with `offsets` mapping trial
/// `i` to its row range (`offsets[i]..offsets[i + 1]`). Equality is
/// exact — the determinism tests compare whole pools byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPool {
    campaign_seed: u64,
    specs: Vec<TrialSpec>,
    offsets: Vec<u32>,
    duration_s: Vec<f64>,
    ping_s: Vec<f64>,
    data_bytes: Vec<f64>,
    estimate_mbps: Vec<f64>,
    truth_mbps: Vec<f64>,
    complete: Vec<bool>,
}

impl TrialPool {
    fn with_capacity(campaign_seed: u64, trials: usize, rows: usize) -> Self {
        Self {
            campaign_seed,
            specs: Vec::with_capacity(trials),
            offsets: {
                let mut o = Vec::with_capacity(trials + 1);
                o.push(0);
                o
            },
            duration_s: Vec::with_capacity(rows),
            ping_s: Vec::with_capacity(rows),
            data_bytes: Vec::with_capacity(rows),
            estimate_mbps: Vec::with_capacity(rows),
            truth_mbps: Vec::with_capacity(rows),
            complete: Vec::with_capacity(rows),
        }
    }

    fn push(&mut self, spec: TrialSpec, rows: &[TrialOutcome]) {
        self.specs.push(spec);
        for r in rows {
            self.duration_s.push(r.duration_s);
            self.ping_s.push(r.ping_s);
            self.data_bytes.push(r.data_bytes);
            self.estimate_mbps.push(r.estimate_mbps);
            self.truth_mbps.push(r.truth_mbps);
            self.complete.push(r.complete);
        }
        self.offsets.push(self.duration_s.len() as u32);
    }

    /// The campaign seed the pool was executed under.
    pub fn campaign_seed(&self) -> u64 {
        self.campaign_seed
    }

    /// Number of executed trials.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the pool holds no trials.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total outcome rows across all trials.
    pub fn outcome_rows(&self) -> usize {
        self.duration_s.len()
    }

    /// View of trial `i`.
    pub fn view(&self, i: usize) -> TrialView<'_> {
        assert!(i < self.specs.len(), "trial {i} out of range");
        TrialView {
            pool: self,
            trial: i,
        }
    }

    /// Iterate over all trials in plan order.
    pub fn iter(&self) -> impl Iterator<Item = TrialView<'_>> {
        (0..self.specs.len()).map(move |i| self.view(i))
    }

    /// Concatenate `other`'s trials after this pool's, in order — the
    /// reduce step of a distributed campaign. Because every trial's
    /// outcome is a pure function of `(campaign_seed, spec)`, appending
    /// the pools of a plan's contiguous slices in slice order rebuilds
    /// exactly the pool one [`run_campaign`] over the whole plan
    /// produces. Pools from different campaigns are rejected.
    pub fn append(&mut self, other: TrialPool) -> Result<(), CampaignMismatch> {
        if self.campaign_seed != other.campaign_seed {
            return Err(CampaignMismatch {
                ours: self.campaign_seed,
                theirs: other.campaign_seed,
            });
        }
        let base = self.duration_s.len() as u32;
        self.specs.extend(other.specs);
        self.offsets
            .extend(other.offsets.into_iter().skip(1).map(|o| base + o));
        self.duration_s.extend(other.duration_s);
        self.ping_s.extend(other.ping_s);
        self.data_bytes.extend(other.data_bytes);
        self.estimate_mbps.extend(other.estimate_mbps);
        self.truth_mbps.extend(other.truth_mbps);
        self.complete.extend(other.complete);
        Ok(())
    }
}

/// Two [`TrialPool`]s from different campaigns cannot be concatenated:
/// their trial outcomes were drawn from different seed streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignMismatch {
    /// The receiving pool's campaign seed.
    pub ours: u64,
    /// The appended pool's campaign seed.
    pub theirs: u64,
}

impl std::fmt::Display for CampaignMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign seed mismatch: pool executed under {:#x}, appended pool under {:#x}",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for CampaignMismatch {}

impl Codec for TrialPool {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u64(self.campaign_seed);
        self.specs.encode(enc);
        self.offsets.encode(enc);
        self.duration_s.encode(enc);
        self.ping_s.encode(enc);
        self.data_bytes.encode(enc);
        self.estimate_mbps.encode(enc);
        self.truth_mbps.encode(enc);
        self.complete.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let campaign_seed = dec.u64()?;
        let specs: Vec<TrialSpec> = Codec::decode(dec)?;
        let offsets: Vec<u32> = Codec::decode(dec)?;
        let duration_s: Vec<f64> = Codec::decode(dec)?;
        let ping_s: Vec<f64> = Codec::decode(dec)?;
        let data_bytes: Vec<f64> = Codec::decode(dec)?;
        let estimate_mbps: Vec<f64> = Codec::decode(dec)?;
        let truth_mbps: Vec<f64> = Codec::decode(dec)?;
        let complete: Vec<bool> = Codec::decode(dec)?;

        // Structural invariants the columnar views index by: offsets
        // start at 0, advance by exactly each trial's outcome count,
        // and every column covers the same row range.
        if offsets.len() != specs.len() + 1 || offsets.first() != Some(&0) {
            return Err(CodecError::BadLen {
                what: "trial pool offsets",
                len: offsets.len() as u64,
            });
        }
        for (i, spec) in specs.iter().enumerate() {
            let rows = offsets[i + 1].wrapping_sub(offsets[i]);
            if offsets[i + 1] < offsets[i] || rows as usize != spec.kind.outcomes() {
                return Err(CodecError::BadLen {
                    what: "trial outcome rows",
                    len: u64::from(rows),
                });
            }
        }
        let rows = offsets[specs.len()] as usize;
        for len in [
            duration_s.len(),
            ping_s.len(),
            data_bytes.len(),
            estimate_mbps.len(),
            truth_mbps.len(),
            complete.len(),
        ] {
            if len != rows {
                return Err(CodecError::BadLen {
                    what: "trial pool columns",
                    len: len as u64,
                });
            }
        }
        Ok(Self {
            campaign_seed,
            specs,
            offsets,
            duration_s,
            ping_s,
            data_bytes,
            estimate_mbps,
            truth_mbps,
            complete,
        })
    }
}

/// One trial's spec plus its outcome rows, borrowed from the pool.
#[derive(Debug, Clone, Copy)]
pub struct TrialView<'a> {
    pool: &'a TrialPool,
    trial: usize,
}

impl TrialView<'_> {
    /// The trial's spec.
    pub fn spec(&self) -> TrialSpec {
        self.pool.specs[self.trial]
    }

    /// Number of outcome rows.
    pub fn outcomes(&self) -> usize {
        (self.pool.offsets[self.trial + 1] - self.pool.offsets[self.trial]) as usize
    }

    /// Outcome row `k` (0-based within the trial).
    pub fn outcome(&self, k: usize) -> TrialOutcome {
        assert!(k < self.outcomes(), "outcome {k} out of range");
        let at = self.pool.offsets[self.trial] as usize + k;
        TrialOutcome {
            duration_s: self.pool.duration_s[at],
            ping_s: self.pool.ping_s[at],
            data_bytes: self.pool.data_bytes[at],
            estimate_mbps: self.pool.estimate_mbps[at],
            truth_mbps: self.pool.truth_mbps[at],
            complete: self.pool.complete[at],
        }
    }

    /// The only outcome of a single-outcome trial.
    pub fn solo(&self) -> TrialOutcome {
        debug_assert_eq!(self.outcomes(), 1);
        self.outcome(0)
    }
}

/// A figure was asked of a campaign that planned none of its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyCampaign;

impl std::fmt::Display for EmptyCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the campaign planned no trials for this figure")
    }
}

impl std::error::Error for EmptyCampaign {}

/// The Fig 17 x-axis bins (Mbps).
pub const BANDWIDTH_BINS: [f64; 6] = [100.0, 300.0, 500.0, 700.0, 900.0, 1100.0];

/// Cap on one ramp measurement, seconds of simulated flow time.
pub const RAMP_CAP_SECS: f64 = 12.0;

/// Time for one flow to first reach 90% of nominal on a drawn path;
/// `cap_secs` when it never does within the run (Fig 17's metric).
pub fn ramp_time(alg: CcAlgorithm, mbps: f64, seed: u64, cap_secs: f64) -> f64 {
    let mut rng = SeededRng::new(seed);
    // Cellular-test path: tens-of-ms RTT, spurious loss, radio ramp.
    let rtt = rng.uniform_range(0.025, 0.075);
    // Cellular link-layer retransmission hides most wireless corruption
    // from TCP; the residual spurious-loss rate is tiny but non-zero.
    let loss = 10f64.powf(rng.uniform_range(-6.0, -4.6));
    // The per-UE scheduler grant ramps in rate steps: reaching a 1 Gbps
    // grant takes longer than a 100 Mbps one (CQI/AMC adaptation + BSR
    // ramp), so the ramp duration scales sub-linearly with rate.
    let ramp = rng.uniform_range(0.5, 1.1) * (mbps / 300.0).powf(0.4);
    let capacity = RampUpCapacity::new(ConstantCapacity(mbps * 1e6), ramp, 0.15);
    let path = PathModel::new(PathConfig {
        capacity: Box::new(capacity),
        base_rtt: Duration::from_secs_f64(rtt),
        loss_prob: loss,
        buffer_bdp: 1.0,
        seed,
    });
    let trace = FlowSim::run(
        path,
        alg.build(),
        FlowConfig {
            max_duration: Duration::from_secs_f64(cap_secs),
            seed: seed ^ 0xF16,
            ..Default::default()
        },
    );
    trace
        .time_to_fraction(mbps * 1e6, 0.90)
        .map(|d| d.as_secs_f64())
        .unwrap_or(cap_secs)
}

/// Shared execution context: one immutable harness per scenario, used
/// concurrently by every worker.
struct ExecContext {
    harnesses: [TestHarness; 4],
}

impl ExecContext {
    fn new(profile: ProfileDim) -> Self {
        Self {
            harnesses: ScenarioId::ALL
                .map(|id| TestHarness::with_scenario(profile.scale_scenario(id, id.scenario()))),
        }
    }

    fn harness(&self, id: ScenarioId) -> &TestHarness {
        &self.harnesses[id.tag() as usize]
    }

    /// Execute one trial into a caller-owned scratch buffer, returning
    /// the number of rows written. The executor's hot path — no
    /// allocation per trial.
    fn execute_into(
        &self,
        spec: &TrialSpec,
        campaign_seed: u64,
        out: &mut [TrialOutcome; MAX_TRIAL_ROWS],
    ) -> usize {
        let seed = spec.seed(campaign_seed);
        match spec.kind {
            TrialKind::Single(kind) => {
                out[0] = (&self.harness(spec.scenario).run(kind, seed)).into();
                1
            }
            TrialKind::Pair(a, b) => {
                let pair = self.harness(spec.scenario).back_to_back(a, b, seed);
                out[0] = (&pair.first).into();
                out[1] = (&pair.second).into();
                2
            }
            TrialKind::Group => {
                let group = self.harness(spec.scenario).test_group(seed);
                for (slot, o) in out.iter_mut().zip(group.outcomes.iter()) {
                    *slot = o.into();
                }
                group.outcomes.len()
            }
            TrialKind::Ramp(alg, bin) => {
                let mbps = BANDWIDTH_BINS[bin as usize];
                let t = ramp_time(alg, mbps, seed, RAMP_CAP_SECS);
                out[0] = TrialOutcome {
                    duration_s: t,
                    ping_s: 0.0,
                    data_bytes: 0.0,
                    estimate_mbps: 0.0,
                    truth_mbps: mbps,
                    complete: t < RAMP_CAP_SECS,
                };
                1
            }
            TrialKind::Variant(variant) => {
                let setup = variant.setup();
                let drawn = self.harness(spec.scenario).scenario().draw(seed);
                let mut est = ConvergenceEstimator::new(setup.window, setup.tolerance, 0);
                // Same draw/run seed split as `TestHarness::run`.
                let r = probe::run_swiftest(
                    drawn.build(),
                    &setup.model,
                    &mut est,
                    &setup.config,
                    seed ^ 0x51AB,
                );
                out[0] = TrialOutcome {
                    duration_s: r.duration.as_secs_f64(),
                    ping_s: 0.0,
                    data_bytes: r.data_bytes,
                    estimate_mbps: r.estimate_mbps,
                    truth_mbps: drawn.truth_mbps,
                    complete: r.status.is_complete(),
                };
                1
            }
        }
    }
}

fn execute_one(
    ctx: &ExecContext,
    spec: &TrialSpec,
    campaign_seed: u64,
    metrics: Option<&CampaignMetrics>,
    out: &mut [TrialOutcome; MAX_TRIAL_ROWS],
) -> usize {
    let started = Instant::now();
    let rows = ctx.execute_into(spec, campaign_seed, out);
    if let Some(m) = metrics {
        m.observe_trial(spec.kind.label(), rows as u64, started.elapsed());
    }
    rows
}

/// Execute the plan on `threads` workers (≤ 1 means serial).
///
/// The pool is byte-identical for any thread count: each trial's seed
/// is a pure function of its spec, and the pool is assembled in plan
/// order regardless of completion order.
pub fn run_campaign(plan: &CampaignPlan, threads: usize) -> TrialPool {
    run_campaign_metered(plan, threads, None)
}

/// [`run_campaign`], reporting per-trial and whole-campaign telemetry.
pub fn run_campaign_metered(
    plan: &CampaignPlan,
    threads: usize,
    metrics: Option<&CampaignMetrics>,
) -> TrialPool {
    let started = Instant::now();
    let tracer = trace::active();
    let mut spans = tracer.local();
    let exec_span = spans.begin();
    let ctx = ExecContext::new(plan.profile());
    let n = plan.specs().len();
    let campaign_seed = plan.campaign_seed();
    let rows_total: usize = plan.specs().iter().map(|s| s.kind.outcomes()).sum();
    let mut pool = TrialPool::with_capacity(campaign_seed, n, rows_total);

    if threads <= 1 || n <= 1 {
        let batch_span = spans.begin();
        let mut out = [TrialOutcome::ZERO; MAX_TRIAL_ROWS];
        for spec in plan.specs() {
            let rows = execute_one(&ctx, spec, campaign_seed, metrics, &mut out);
            pool.push(*spec, &out[..rows]);
        }
        if batch_span.id != 0 {
            spans.end_with(
                batch_span,
                exec_span.id,
                "campaign.batch",
                "campaign",
                vec![("start", ArgValue::U64(0)), ("trials", ArgValue::from(n))],
            );
        }
    } else {
        // Work stealing via a shared cursor, CLAIM_BATCH trials per
        // claim: batching cuts cursor traffic (one contended RMW per
        // batch instead of per trial) while staying fine-grained enough
        // that long trials (10 s BTS-APP floods) can't stall a
        // statically striped shard. Each executed trial is a Copy
        // record in a worker-local vec — no per-trial heap allocation.
        type Executed = (u32, u8, [TrialOutcome; MAX_TRIAL_ROWS]);
        let workers = threads.min(n);
        let cursor = AtomicUsize::new(0);
        let mut locals: Vec<Option<Vec<Executed>>> = (0..workers).map(|_| None).collect();
        let (ctx_ref, cursor_ref, specs) = (&ctx, &cursor, plan.specs());
        // Spawned workers do not inherit the caller's trace scope; each
        // re-`scope`s the captured tracer and records one
        // `campaign.batch` span per claimed batch.
        let tracer_ref = &tracer;
        let exec_span_id = exec_span.id;
        crossbeam::thread::scope(|scope| {
            for slot in locals.iter_mut() {
                scope.spawn(move |_| {
                    trace::scope(tracer_ref, || {
                        let mut worker_spans = tracer_ref.local();
                        let mut mine: Vec<Executed> = Vec::with_capacity(n / workers + CLAIM_BATCH);
                        let mut out = [TrialOutcome::ZERO; MAX_TRIAL_ROWS];
                        loop {
                            let start = cursor_ref.fetch_add(CLAIM_BATCH, AtomicOrdering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + CLAIM_BATCH).min(n);
                            let batch_span = worker_spans.begin();
                            for (i, spec) in specs.iter().enumerate().take(end).skip(start) {
                                let rows =
                                    execute_one(ctx_ref, spec, campaign_seed, metrics, &mut out);
                                mine.push((i as u32, rows as u8, out));
                            }
                            if batch_span.id != 0 {
                                worker_spans.end_with(
                                    batch_span,
                                    exec_span_id,
                                    "campaign.batch",
                                    "campaign",
                                    vec![
                                        ("start", ArgValue::from(start)),
                                        ("trials", ArgValue::from(end - start)),
                                    ],
                                );
                            }
                        }
                        *slot = Some(mine);
                    });
                });
            }
        })
        .expect("campaign worker panicked");
        // Reassemble in plan order by scattering into a slot per trial
        // (O(n), no sort); the pool push below then walks the slots in
        // order, so the result is byte-identical to the serial path.
        let mut by_trial: Vec<Option<(u8, [TrialOutcome; MAX_TRIAL_ROWS])>> = vec![None; n];
        for local in locals {
            for (i, rows, outs) in local.expect("worker wrote its slot") {
                by_trial[i as usize] = Some((rows, outs));
            }
        }
        for (spec, entry) in plan.specs().iter().zip(by_trial) {
            let (rows, outs) = entry.expect("every trial executed");
            pool.push(*spec, &outs[..rows as usize]);
        }
    }

    if let Some(m) = metrics {
        m.observe_campaign(n as u64, started.elapsed());
    }
    if exec_span.id != 0 {
        spans.end_with(
            exec_span,
            0,
            "campaign.execute",
            "campaign",
            vec![
                ("trials", ArgValue::from(n)),
                ("threads", ArgValue::from(threads)),
            ],
        );
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny_counts() -> EvalCounts {
        EvalCounts {
            tests: 3,
            groups: 2,
            ramp_paths: 2,
            ablation: 2,
            mmwave: 2,
        }
    }

    #[test]
    fn evaluation_plan_has_unique_specs_and_seeds() {
        let plan = CampaignPlan::evaluation(&EvalCounts::quick(), 0xC0FFEE);
        let specs: HashSet<_> = plan.specs().iter().copied().collect();
        assert_eq!(specs.len(), plan.len());
        // Per-series uniqueness is guaranteed by bijectivity; across
        // series a collision would need a 64-bit birthday hit. Ramp
        // trials are excluded: their cells share one stream on purpose
        // (common random numbers across Fig 17 cells).
        let seeds: HashSet<_> = plan
            .specs()
            .iter()
            .filter(|s| !matches!(s.kind, TrialKind::Ramp(..)))
            .map(|s| s.seed(0xC0FFEE))
            .collect();
        let non_ramp = plan
            .specs()
            .iter()
            .filter(|s| !matches!(s.kind, TrialKind::Ramp(..)))
            .count();
        assert_eq!(seeds.len(), non_ramp);
    }

    #[test]
    fn neutral_profile_campaign_is_bit_identical_to_default() {
        let mut plan = CampaignPlan::evaluation(&tiny_counts(), 0x9A9A);
        let default_pool = run_campaign(&plan, 1);
        plan.set_profile(ProfileDim::PAPER_CHINA);
        let neutral_pool = run_campaign(&plan, 1);
        assert_eq!(default_pool.len(), neutral_pool.len());
        for (a, b) in default_pool.iter().zip(neutral_pool.iter()) {
            assert_eq!(a.spec(), b.spec());
            assert_eq!(a.outcomes(), b.outcomes());
            for k in 0..a.outcomes() {
                assert_eq!(a.outcome(k), b.outcome(k));
            }
        }
    }

    #[test]
    fn profiles_are_crn_paired_and_change_outcomes() {
        // Same plan, same trial seeds, different ecosystem: specs line
        // up one-to-one (common random numbers) while the measured
        // estimates shift with the scaled populations.
        let mut plan = CampaignPlan::evaluation(&tiny_counts(), 0x9B9B);
        let china = run_campaign(&plan, 1);
        plan.set_profile(ProfileDim::DEVELOPING_MARKET);
        assert_eq!(plan.profile().name, "developing-market");
        let developing = run_campaign(&plan, 1);

        assert_eq!(china.len(), developing.len());
        let mut shifted = 0usize;
        for (a, b) in china.iter().zip(developing.iter()) {
            assert_eq!(a.spec(), b.spec(), "CRN pairing broke: specs diverge");
            for k in 0..a.outcomes() {
                if a.outcome(k).estimate_mbps != b.outcome(k).estimate_mbps {
                    shifted += 1;
                }
            }
        }
        assert!(shifted > 0, "a 0.35-0.6x ecosystem moved no estimate");

        // The capacity populations themselves scale as configured.
        let id = ScenarioId::Tech(TechClass::Nr);
        let base = id.scenario();
        let scaled = ProfileDim::DEVELOPING_MARKET.scale_scenario(id, id.scenario());
        assert!((scaled.model.mean() / base.model.mean() - 0.35).abs() < 1e-9);
        assert!((scaled.rtt_range.1 / base.rtt_range.1 - 1.80).abs() < 1e-12);
    }

    #[test]
    fn profile_dims_resolve_by_name() {
        for dim in ProfileDim::ALL {
            assert_eq!(ProfileDim::by_name(dim.name), Some(dim));
        }
        assert_eq!(ProfileDim::by_name("atlantis"), None);
        assert!(ProfileDim::PAPER_CHINA.is_neutral());
        assert!(!ProfileDim::EUROPE_RAN.is_neutral());
        assert_eq!(ProfileDim::default(), ProfileDim::PAPER_CHINA);
    }

    #[test]
    fn pushing_a_series_twice_adds_nothing() {
        let mut plan = CampaignPlan::new(1);
        plan.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Lte), 5);
        let before = plan.len();
        plan.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Lte), 5);
        assert_eq!(plan.len(), before);
        // A longer re-push only appends the new tail.
        plan.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Lte), 7);
        assert_eq!(plan.len(), 7);
    }

    #[test]
    fn ramp_cells_share_their_seed_stream() {
        // Common random numbers across Fig 17 cells: same index, same
        // seed, whatever the (algorithm, bin).
        let a = TrialSpec {
            kind: TrialKind::Ramp(CcAlgorithm::Cubic, 0),
            scenario: RAMP_SCENARIO,
            index: 7,
        };
        let b = TrialSpec {
            kind: TrialKind::Ramp(CcAlgorithm::Bbr, 5),
            scenario: RAMP_SCENARIO,
            index: 7,
        };
        assert_eq!(a.seed(99), b.seed(99));
        assert_ne!(a.seed(99), a.seed(100));
    }

    #[test]
    fn trial_outcome_is_independent_of_plan_composition() {
        // The same spec must produce the same rows whether it runs in a
        // solo plan or inside the full evaluation union — the property
        // that makes fused and per-figure reductions agree.
        let seed = 0x5EED;
        let mut solo = CampaignPlan::new(seed);
        solo.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Wifi), 2);
        let solo_pool = run_campaign(&solo, 1);

        let union = CampaignPlan::evaluation(&tiny_counts(), seed);
        let union_pool = run_campaign(&union, 1);

        let spec = solo.specs()[1];
        let in_union = union_pool
            .iter()
            .find(|v| v.spec() == spec)
            .expect("union plan contains the group trial");
        let in_solo = solo_pool.view(1);
        assert_eq!(in_solo.outcomes(), in_union.outcomes());
        for k in 0..in_solo.outcomes() {
            assert_eq!(in_solo.outcome(k), in_union.outcome(k));
        }
    }

    #[test]
    fn pool_is_identical_for_any_thread_count() {
        let plan = CampaignPlan::evaluation(&tiny_counts(), 0xD0);
        let serial = run_campaign(&plan, 1);
        assert_eq!(serial.len(), plan.len());
        for threads in [2, 8] {
            let parallel = run_campaign(&plan, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn campaign_batches_are_traced_across_workers() {
        use mbw_telemetry::{Tracer, WallClock};
        use std::sync::Arc;

        let plan = CampaignPlan::evaluation(&tiny_counts(), 0xCA);
        let tracer = Tracer::new(Arc::new(WallClock::new()), 0xCA);
        let traced = trace::scope(&tracer, || run_campaign(&plan, 4));
        assert_eq!(traced, run_campaign(&plan, 4), "tracing changed the pool");

        let spans = tracer.spans();
        let exec: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "campaign.execute")
            .collect();
        assert_eq!(exec.len(), 1);
        let batches: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "campaign.batch")
            .collect();
        assert_eq!(batches.len(), plan.len().div_ceil(CLAIM_BATCH));
        let mut covered: usize = 0;
        for b in &batches {
            assert_eq!(b.parent, exec[0].id, "batch not parented to execute");
            let trials = b
                .args
                .iter()
                .find(|(k, _)| *k == "trials")
                .map(|(_, v)| match v {
                    ArgValue::U64(n) => *n as usize,
                    _ => 0,
                })
                .unwrap();
            covered += trials;
        }
        assert_eq!(covered, plan.len(), "batch spans cover every trial");
    }

    #[test]
    fn group_trials_produce_four_rows_pairs_two() {
        let mut plan = CampaignPlan::new(3);
        plan.push(TrialSpec {
            kind: TrialKind::Group,
            scenario: ScenarioId::Tech(TechClass::Lte),
            index: 0,
        });
        plan.push(TrialSpec {
            kind: TrialKind::Pair(BtsKind::Swiftest, BtsKind::BtsApp),
            scenario: ScenarioId::Tech(TechClass::Lte),
            index: 0,
        });
        let pool = run_campaign(&plan, 1);
        assert_eq!(pool.view(0).outcomes(), 4);
        assert_eq!(pool.view(1).outcomes(), 2);
        assert_eq!(pool.outcome_rows(), 6);
        // The pair's rows land in argument order: Swiftest converges in
        // about a second; BTS-APP floods for ten.
        let swift = pool.view(1).outcome(0);
        let bts = pool.view(1).outcome(1);
        assert!(swift.duration_s < 5.0, "{}", swift.duration_s);
        assert!(bts.duration_s > 9.0, "{}", bts.duration_s);
    }

    #[test]
    fn variant_trials_run_the_ablation_configs() {
        let mut plan = CampaignPlan::new(0xAB);
        for v in VariantId::ALL {
            plan.push_series(TrialKind::Variant(v), ScenarioId::Tech(TechClass::Nr), 1);
        }
        let pool = run_campaign(&plan, 1);
        for view in pool.iter() {
            let o = view.solo();
            assert!(o.estimate_mbps > 0.0, "{:?}", view.spec());
            assert!(o.truth_mbps > 0.0);
            assert_eq!(o.ping_s, 0.0);
        }
    }

    #[test]
    fn ramp_trials_report_bin_and_cap() {
        let mut plan = CampaignPlan::new(0x17);
        plan.push_series(TrialKind::Ramp(CcAlgorithm::Cubic, 3), RAMP_SCENARIO, 2);
        let pool = run_campaign(&plan, 1);
        for view in pool.iter() {
            let o = view.solo();
            assert_eq!(o.truth_mbps, BANDWIDTH_BINS[3]);
            assert!(o.duration_s > 0.0 && o.duration_s <= RAMP_CAP_SECS);
        }
    }

    #[test]
    fn metered_run_counts_trials_and_rows() {
        let registry = mbw_telemetry::Registry::new();
        let metrics = CampaignMetrics::register(&registry);
        let plan = CampaignPlan::evaluation(&tiny_counts(), 0x7E1);
        let pool = run_campaign_metered(&plan, 2, Some(&metrics));
        assert_eq!(metrics.trials_total(), plan.len() as u64);
        assert_eq!(metrics.outcomes_total(), pool.outcome_rows() as u64);
        let text = registry.render_prometheus();
        assert!(text.contains("campaign_trials_per_second"), "{text}");
    }

    #[test]
    fn empty_campaign_renders_a_message() {
        let text = EmptyCampaign.to_string();
        assert!(text.contains("no trials"));
    }

    #[test]
    fn sliced_sub_plans_append_to_the_full_pool() {
        // The distributed executor's core property: running contiguous
        // slices of a plan as independent sub-campaigns and appending
        // the pools in slice order equals one whole-plan run exactly
        // (structural seeds make outcomes position-independent).
        let plan = CampaignPlan::evaluation(&tiny_counts(), 0xFA57);
        let full = run_campaign(&plan, 2);
        for parts in [2usize, 3] {
            let mut merged: Option<TrialPool> = None;
            let per = plan.len().div_ceil(parts);
            for chunk in plan.specs().chunks(per) {
                let mut sub = CampaignPlan::new(plan.campaign_seed());
                for &spec in chunk {
                    assert!(sub.push(spec));
                }
                let pool = run_campaign(&sub, 2);
                merged = Some(match merged {
                    None => pool,
                    Some(mut m) => {
                        m.append(pool).expect("same campaign");
                        m
                    }
                });
            }
            assert_eq!(merged.unwrap(), full, "{parts}-way split diverged");
        }
    }

    #[test]
    fn append_rejects_a_foreign_campaign() {
        let mut plan = CampaignPlan::new(1);
        plan.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Lte), 1);
        let mut a = run_campaign(&plan, 1);
        let mut other = CampaignPlan::new(2);
        other.push_series(TrialKind::Group, ScenarioId::Tech(TechClass::Lte), 1);
        let b = run_campaign(&other, 1);
        let err = a.append(b).expect_err("different campaign seeds");
        assert_eq!(err, CampaignMismatch { ours: 1, theirs: 2 });
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn pool_codec_roundtrips_exactly() {
        let plan = CampaignPlan::evaluation(&tiny_counts(), 0x0EC0);
        let pool = run_campaign(&plan, 1);
        let bytes = pool.to_bytes();
        let back = TrialPool::from_bytes(&bytes).expect("roundtrip decodes");
        assert_eq!(back, pool);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn pool_decode_rejects_inconsistent_offsets() {
        // Offsets claiming rows that the columns do not hold.
        let mut enc = Enc::new();
        enc.put_u64(7);
        vec![TrialSpec {
            kind: TrialKind::Group,
            scenario: ScenarioId::Mmwave,
            index: 0,
        }]
        .encode(&mut enc);
        vec![0u32, 4].encode(&mut enc);
        for _ in 0..5 {
            Vec::<f64>::new().encode(&mut enc);
        }
        Vec::<bool>::new().encode(&mut enc);
        let err = TrialPool::from_bytes(&enc.into_bytes()).expect_err("columns too short");
        assert!(matches!(
            err,
            CodecError::BadLen {
                what: "trial pool columns",
                ..
            }
        ));

        // Offsets whose step disagrees with the trial kind.
        let mut enc = Enc::new();
        enc.put_u64(7);
        vec![TrialSpec {
            kind: TrialKind::Group,
            scenario: ScenarioId::Mmwave,
            index: 0,
        }]
        .encode(&mut enc);
        vec![0u32, 1].encode(&mut enc);
        for _ in 0..5 {
            vec![0.0f64].encode(&mut enc);
        }
        vec![true].encode(&mut enc);
        let err = TrialPool::from_bytes(&enc.into_bytes()).expect_err("group needs 4 rows");
        assert!(matches!(
            err,
            CodecError::BadLen {
                what: "trial outcome rows",
                ..
            }
        ));
    }

    #[test]
    fn spec_codec_roundtrips_every_kind() {
        let plan = CampaignPlan::evaluation(&EvalCounts::quick(), 3);
        for &spec in plan.specs() {
            let bytes = spec.to_bytes();
            assert_eq!(TrialSpec::from_bytes(&bytes).unwrap(), spec);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn distinct_indices_never_collide(
            campaign in any::<u64>(),
            series in any::<u64>(),
            a in any::<u32>(),
            b in any::<u32>(),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(
                trial_seed(campaign, series, u64::from(a)),
                trial_seed(campaign, series, u64::from(b))
            );
        }

        #[test]
        fn trial_seed_depends_on_every_component(
            campaign in any::<u64>(),
            series in any::<u64>(),
            index in any::<u32>(),
        ) {
            let base = trial_seed(campaign, series, u64::from(index));
            prop_assert_ne!(base, trial_seed(campaign ^ 1, series, u64::from(index)));
            prop_assert_ne!(base, trial_seed(campaign, series ^ 1, u64::from(index)));
        }

        #[test]
        fn pool_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = TrialPool::from_bytes(&bytes);
        }
    }
}
