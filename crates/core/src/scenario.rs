//! Access-link scenario generation.
//!
//! Each simulated test runs against a concrete path drawn from a
//! technology's population: a capacity from the multi-modal model, an
//! RTT, a wireless loss rate, and a fluctuation class. The class mix is
//! calibrated to §5.3's deviation findings: most links are stable
//! (back-to-back deviations under 5%), ~15% fluctuate heavily (the >10%
//! deviations), and ~1% are traffic-shaped with clear on/off patterns
//! (the >30% outliers).

use crate::model::TechClass;
use mbw_netsim::{
    CapacityProcess, ConstantCapacity, FaultPlan, FaultProfile, OuCapacity, PathConfig, PathModel,
    ShapedCapacity, SimTime,
};
use mbw_stats::{Gmm, SeededRng};
use std::time::Duration;

/// Horizon over which a drawn path's random fault plan is laid out. A
/// hair beyond Swiftest's 4.5 s cap so faults can land anywhere in a
/// test's lifetime.
const FAULT_HORIZON: Duration = Duration::from_secs(5);

/// How a drawn link's capacity behaves over a test's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FluctuationClass {
    /// Stable: small mean-reverting noise (σ ≈ 2%).
    Stable,
    /// Fluctuating: heavy noise (σ ≈ 12%) — §5.3's >10% deviation pairs.
    Fluctuating,
    /// Traffic-shaped: on/off pattern from a BS/AP shaper — the >30%
    /// outliers with "clear patterns".
    Shaped,
    /// Perfectly constant (unit tests and ablations).
    Constant,
}

/// A scenario: the population a test's path is drawn from.
#[derive(Debug, Clone)]
pub struct AccessScenario {
    /// Technology class (selects the default model and RTT range).
    pub tech: TechClass,
    /// Population bandwidth model (Mbps).
    pub model: Gmm,
    /// RTT draw range (log-uniform), seconds.
    pub rtt_range: (f64, f64),
    /// Wireless loss-probability draw range (log-uniform).
    pub loss_range: (f64, f64),
    /// Probability of each fluctuation class: `(stable, fluctuating,
    /// shaped)`; remainder is constant.
    pub class_mix: (f64, f64, f64),
    /// Probability that a drawn path carries a transient-fault episode
    /// mix (handover blackout, deep fade, burst loss, delay spike).
    /// Zero in the calibrated defaults; chaos suites raise it.
    pub fault_rate: f64,
}

impl AccessScenario {
    /// The calibrated default for a technology class. RTTs reflect the
    /// paper's China-mainland deployment (nearby servers, §2): WiFi
    /// lowest, cellular higher and more variable.
    pub fn default_for(tech: TechClass) -> Self {
        let (rtt_range, loss_range) = match tech {
            TechClass::Lte => ((0.020, 0.070), (2e-5, 4e-4)),
            TechClass::Nr => ((0.012, 0.040), (1e-5, 2e-4)),
            TechClass::Wifi => ((0.008, 0.030), (5e-6, 1e-4)),
        };
        Self {
            tech,
            model: tech.default_model(),
            rtt_range,
            loss_range,
            class_mix: (0.84, 0.15, 0.01),
            fault_rate: 0.0,
        }
    }

    /// The same scenario with a given transient-fault probability.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of range");
        self.fault_rate = rate;
        self
    }

    /// An mmWave 5G scenario (§7, "Global Applicability"): contiguous
    /// high-frequency spectrum gives multi-Gbps modes and very low RTTs,
    /// but the dense small-cell deployment makes heavy fluctuation (the
    /// blockage/beam-switching analogue of the sub-6 GHz level-5
    /// interference) far more common.
    pub fn mmwave() -> Self {
        Self {
            tech: TechClass::Nr,
            model: Gmm::from_triples(&[
                (0.35, 600.0, 150.0),
                (0.40, 1400.0, 300.0),
                (0.25, 2600.0, 500.0),
            ])
            .expect("static model valid"),
            rtt_range: (0.004, 0.015),
            loss_range: (1e-5, 5e-4),
            class_mix: (0.55, 0.42, 0.02),
            fault_rate: 0.0,
        }
    }

    /// Draw one concrete path (and its ground truth) from the scenario.
    pub fn draw(&self, seed: u64) -> DrawnPath {
        let mut rng = SeededRng::new(seed);
        // Truth: the nominal capacity the link would deliver to a
        // saturating long transfer.
        let truth_mbps = self.model.sample_at_least(&mut rng, 1.0);
        let rtt = log_uniform(&mut rng, self.rtt_range.0, self.rtt_range.1);
        let loss = log_uniform(&mut rng, self.loss_range.0, self.loss_range.1);

        let (s, f, sh) = self.class_mix;
        let u = rng.uniform();
        let class = if u < s {
            FluctuationClass::Stable
        } else if u < s + f {
            FluctuationClass::Fluctuating
        } else if u < s + f + sh {
            FluctuationClass::Shaped
        } else {
            FluctuationClass::Constant
        };
        // Drawn last so scenarios with fault_rate == 0 reproduce the
        // exact paths they drew before faults existed.
        let faults = if self.fault_rate > 0.0 && rng.chance(self.fault_rate) {
            FaultInjection::Seeded {
                seed: seed ^ 0xFA17,
            }
        } else {
            FaultInjection::None
        };
        DrawnPath {
            truth_mbps,
            rtt,
            loss,
            class,
            seed,
            faults,
        }
    }
}

/// Transient-fault injection mode of one drawn path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// Clean link: steady-state impairments only.
    None,
    /// A deterministic episode mix ([`FaultProfile::mobile`]) drawn from
    /// the contained seed over the test horizon.
    Seeded {
        /// Seed of the episode draw.
        seed: u64,
    },
    /// One scripted total outage — the worst single fault a radio
    /// handover produces, and the easiest to reason about in tests.
    Blackout {
        /// Outage start, milliseconds into the test.
        start_ms: u64,
        /// Outage length, milliseconds.
        duration_ms: u64,
    },
}

impl FaultInjection {
    /// Materialise the concrete fault plan this injection mode denotes.
    pub fn plan(self) -> FaultPlan {
        match self {
            FaultInjection::None => FaultPlan::none(),
            FaultInjection::Seeded { seed } => {
                FaultPlan::seeded_random(seed, FAULT_HORIZON, &FaultProfile::mobile())
            }
            FaultInjection::Blackout {
                start_ms,
                duration_ms,
            } => FaultPlan::blackout(
                SimTime::from_millis(start_ms),
                Duration::from_millis(duration_ms),
            ),
        }
    }
}

/// One concrete drawn path, materialisable into a [`PathModel`].
///
/// `build()` can be called repeatedly to get byte-identical paths — that
/// is how the harness runs back-to-back tests "on the same link".
#[derive(Debug, Clone, Copy)]
pub struct DrawnPath {
    /// Nominal capacity, Mbps — the ground truth a perfect test reports.
    pub truth_mbps: f64,
    /// Base RTT, seconds.
    pub rtt: f64,
    /// Wireless per-packet loss probability.
    pub loss: f64,
    /// Capacity dynamics class.
    pub class: FluctuationClass,
    /// Seed for the path's stochastic processes.
    pub seed: u64,
    /// Transient faults the path carries (none for clean links).
    pub faults: FaultInjection,
}

impl DrawnPath {
    /// Materialise the path. Each call returns an identical instance.
    pub fn build(&self) -> PathModel {
        let nominal_bps = self.truth_mbps * 1e6;
        let capacity: Box<dyn CapacityProcess> = match self.class {
            FluctuationClass::Constant => Box::new(ConstantCapacity(nominal_bps)),
            FluctuationClass::Stable => {
                Box::new(OuCapacity::new(nominal_bps, 0.8, 0.02, self.seed ^ 0xCAFE))
            }
            FluctuationClass::Fluctuating => {
                Box::new(OuCapacity::new(nominal_bps, 0.6, 0.12, self.seed ^ 0xCAFE))
            }
            FluctuationClass::Shaped => Box::new(ShapedCapacity::new(
                nominal_bps * 1.25,
                nominal_bps * 0.45,
                2.5,
                0.55,
            )),
        };
        PathModel::new(PathConfig {
            capacity,
            base_rtt: Duration::from_secs_f64(self.rtt),
            loss_prob: self.loss,
            buffer_bdp: 1.0,
            seed: self.seed ^ 0xBEEF,
        })
        .with_faults(self.faults.plan())
    }

    /// The same drawn link carrying a different fault injection — how
    /// chaos tests script an outage onto an otherwise-clean draw.
    pub fn with_faults(self, faults: FaultInjection) -> Self {
        Self { faults, ..self }
    }
}

fn log_uniform(rng: &mut SeededRng, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi >= lo);
    (rng.uniform_range(lo.ln(), hi.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbw_netsim::SimTime;

    #[test]
    fn draws_are_deterministic_per_seed() {
        let s = AccessScenario::default_for(TechClass::Nr);
        let a = s.draw(7);
        let b = s.draw(7);
        assert_eq!(a.truth_mbps, b.truth_mbps);
        assert_eq!(a.rtt, b.rtt);
        assert_eq!(a.class, b.class);
    }

    #[test]
    fn rtt_and_loss_stay_in_range() {
        for tech in TechClass::ALL {
            let s = AccessScenario::default_for(tech);
            for seed in 0..200 {
                let d = s.draw(seed);
                assert!(
                    d.rtt >= s.rtt_range.0 && d.rtt <= s.rtt_range.1,
                    "{tech}: {}",
                    d.rtt
                );
                assert!(d.loss >= s.loss_range.0 && d.loss <= s.loss_range.1);
                assert!(d.truth_mbps >= 1.0);
            }
        }
    }

    #[test]
    fn class_mix_frequencies() {
        let s = AccessScenario::default_for(TechClass::Wifi);
        let mut stable = 0;
        let mut fluct = 0;
        let mut shaped = 0;
        let n = 5000;
        for seed in 0..n {
            match s.draw(seed).class {
                FluctuationClass::Stable => stable += 1,
                FluctuationClass::Fluctuating => fluct += 1,
                FluctuationClass::Shaped => shaped += 1,
                FluctuationClass::Constant => {}
            }
        }
        assert!((stable as f64 / n as f64 - 0.84).abs() < 0.03);
        assert!((fluct as f64 / n as f64 - 0.15).abs() < 0.03);
        assert!(shaped > 0);
    }

    #[test]
    fn build_is_reproducible() {
        let s = AccessScenario::default_for(TechClass::Lte);
        let d = s.draw(99);
        let mut p1 = d.build();
        let mut p2 = d.build();
        for i in 0..50 {
            let t = SimTime::from_millis(i * 100);
            assert_eq!(p1.capacity_bps(t), p2.capacity_bps(t));
        }
    }

    #[test]
    fn stable_paths_hold_capacity_within_a_few_percent() {
        let s = AccessScenario::default_for(TechClass::Wifi);
        // Find a stable draw.
        let d = (0..100)
            .map(|seed| s.draw(seed))
            .find(|d| d.class == FluctuationClass::Stable)
            .expect("stable draws are 84% of the mix");
        let mut p = d.build();
        let nominal = d.truth_mbps * 1e6;
        for i in 0..100 {
            let cap = p.capacity_bps(SimTime::from_millis(i * 50));
            assert!(
                (cap / nominal - 1.0).abs() < 0.12,
                "cap {} vs {}",
                cap,
                nominal
            );
        }
    }

    #[test]
    fn mmwave_scenario_reaches_multi_gbps_with_heavy_fluctuation() {
        let s = AccessScenario::mmwave();
        let mut fast = 0;
        let mut fluctuating = 0;
        for seed in 0..400 {
            let d = s.draw(seed);
            if d.truth_mbps > 2000.0 {
                fast += 1;
            }
            if d.class == FluctuationClass::Fluctuating {
                fluctuating += 1;
            }
            assert!(d.rtt <= 0.015, "mmWave RTT {}", d.rtt);
        }
        assert!(fast > 40, "multi-Gbps draws: {fast}");
        // Blockage-dominated: fluctuation is ~3x more common than in the
        // sub-6 GHz default (42% vs 15%).
        assert!((fluctuating as f64 / 400.0 - 0.42).abs() < 0.08);
    }

    #[test]
    fn swiftest_handles_mmwave_links() {
        // The probing logic needs no change for mmWave — the model's
        // modes just sit higher (§7's applicability claim).
        let s = AccessScenario::mmwave();
        let mut est = crate::estimator::ConvergenceEstimator::swiftest();
        let drawn = (0..50)
            .map(|i| s.draw(i))
            .find(|d| d.class == FluctuationClass::Stable && d.truth_mbps > 1000.0)
            .expect("stable multi-Gbps draw");
        let r = crate::probe::run_swiftest(
            drawn.build(),
            &s.model,
            &mut est,
            &crate::probe::SwiftestConfig::default(),
            9,
        );
        let dev = (r.estimate_mbps - drawn.truth_mbps).abs() / drawn.truth_mbps;
        assert!(
            dev < 0.08,
            "estimate {} vs truth {}",
            r.estimate_mbps,
            drawn.truth_mbps
        );
        assert!(r.duration < std::time::Duration::from_secs(3));
    }

    #[test]
    fn fault_rate_controls_fault_frequency() {
        let s = AccessScenario::default_for(TechClass::Lte).with_fault_rate(0.5);
        let n = 2000;
        let faulted = (0..n)
            .filter(|&seed| s.draw(seed).faults != FaultInjection::None)
            .count();
        assert!(
            (faulted as f64 / n as f64 - 0.5).abs() < 0.05,
            "faulted {faulted}/{n}"
        );
        // Zero-rate scenarios never fault.
        let clean = AccessScenario::default_for(TechClass::Lte);
        assert!((0..200).all(|seed| clean.draw(seed).faults == FaultInjection::None));
    }

    #[test]
    fn fault_draw_does_not_perturb_the_path_draw() {
        // The fault decision is drawn last, so the same seed yields the
        // same link whether or not the scenario injects faults.
        let clean = AccessScenario::default_for(TechClass::Nr);
        let chaotic = clean.clone().with_fault_rate(1.0);
        for seed in 0..50 {
            let a = clean.draw(seed);
            let b = chaotic.draw(seed);
            assert_eq!(a.truth_mbps, b.truth_mbps);
            assert_eq!(a.rtt, b.rtt);
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.class, b.class);
            assert_ne!(b.faults, FaultInjection::None);
        }
    }

    #[test]
    fn scripted_blackout_kills_capacity_inside_the_window() {
        let s = AccessScenario::default_for(TechClass::Wifi);
        let d = s.draw(3).with_faults(FaultInjection::Blackout {
            start_ms: 500,
            duration_ms: 300,
        });
        let mut p = d.build();
        assert_eq!(p.capacity_bps(SimTime::from_millis(600)), 0.0);
        assert!(p.capacity_bps(SimTime::from_millis(100)) > 0.0);
        assert!(p.capacity_bps(SimTime::from_millis(900)) > 0.0);
    }

    #[test]
    fn seeded_fault_plans_are_reproducible_across_builds() {
        let s = AccessScenario::default_for(TechClass::Lte).with_fault_rate(1.0);
        let d = s.draw(12);
        let p1 = d.build();
        let p2 = d.build();
        assert_eq!(p1.faults(), p2.faults());
        assert!(!p1.faults().is_empty());
    }

    #[test]
    fn shaped_paths_alternate() {
        let d = DrawnPath {
            truth_mbps: 100.0,
            rtt: 0.02,
            loss: 0.0,
            class: FluctuationClass::Shaped,
            seed: 1,
            faults: FaultInjection::None,
        };
        let mut p = d.build();
        let caps: Vec<f64> = (0..100)
            .map(|i| p.capacity_bps(SimTime::from_millis(i * 100)))
            .collect();
        let hi = caps.iter().cloned().fold(0.0, f64::max);
        let lo = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(hi / lo > 2.0, "{lo}..{hi}");
    }
}
