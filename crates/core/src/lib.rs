#![warn(missing_docs)]
//! Swiftest: ultra-fast, ultra-light bandwidth testing — plus the
//! baselines it is evaluated against.
//!
//! This crate is the paper's primary system contribution (§5). It
//! implements four bandwidth testing services over the simulated network
//! substrate (`mbw-netsim` + `mbw-congestion`):
//!
//! - **BTS-APP** (§2) — the production Speedtest-like service: TCP
//!   flooding for a fixed 10 seconds, progressive connection addition at
//!   bandwidth thresholds, and the 20-group / drop-5-low-2-high trimmed
//!   estimator. Its results serve as the approximate ground truth in the
//!   paper's evaluation.
//! - **FAST** (§5.1) — Netflix's fast.com logic: TCP flooding that stops
//!   once the last samples converge within 3%.
//! - **FastBTS** (§5.1) — crucial-interval-based estimation: the densest
//!   sample interval wins; fast but prone to premature convergence.
//! - **Swiftest** (§5.1–5.3) — the paper's design: a UDP probing protocol
//!   whose *initial* data rate is the most probable mode of the access
//!   technology's multi-modal Gaussian bandwidth model, escalating to the
//!   next most probable larger mode until the link saturates, and
//!   stopping when ten consecutive 50 ms samples agree within 3%.
//!
//! Modules:
//!
//! - [`estimator`] — the four bandwidth-estimation algorithms behind the
//!   services, as pluggable [`estimator::BandwidthEstimator`]s.
//! - [`model`] — the per-technology bandwidth models (multi-modal GMMs)
//!   Swiftest probes from, and the default calibrated instances.
//! - [`outcome`] — the Complete / Degraded / Failed completion taxonomy
//!   every probe result and harness outcome carries.
//! - [`scenario`] — access-link scenario generation: drawing a concrete
//!   simulated path (capacity, RTT, loss, fluctuation class) per test.
//! - [`probe`] — the probers: TCP flooding (with progressive connection
//!   addition) and Swiftest's paced UDP prober.
//! - [`server`] — test-server pool, PING-based selection.
//! - [`harness`] — one-call test execution, back-to-back comparisons,
//!   and four-service test groups, producing the duration / data-usage
//!   / accuracy numbers of Figs 20–25.
//! - [`campaign`] — the evaluation campaign pipeline: plan the
//!   deduplicated trial union of Figs 17–26 with structural per-trial
//!   RNG streams, execute it on a work-stealing thread pool, and hand
//!   the columnar outcome pool to the figure reducers.

pub mod campaign;
pub mod estimator;
pub mod harness;
pub mod model;
pub mod outcome;
pub mod probe;
pub mod scenario;
pub mod server;
pub mod tcp_variant;

pub use campaign::{
    run_campaign, run_campaign_metered, trial_seed, CampaignMismatch, CampaignPlan, EmptyCampaign,
    EvalCounts, ProfileDim, ScenarioId, TrialKind, TrialOutcome, TrialPool, TrialSpec, TrialView,
    VariantId,
};
pub use estimator::{
    BandwidthEstimator, ConvergenceEstimator, CrucialIntervalEstimator, EstimatorDecision,
    GroupedTrimmedMean, SpeedtestTrim,
};
pub use harness::{BackToBack, TestGroup, TestHarness, TestOutcome};
pub use model::TechClass;
pub use outcome::{DegradeReason, FailReason, TestStatus};
pub use probe::{BtsKind, FloodingConfig, SwiftestConfig};
pub use scenario::{AccessScenario, DrawnPath, FaultInjection, FluctuationClass};
pub use server::{ServerPool, TestServer};
pub use tcp_variant::{run_swiftest_tcp, ModelGuidedCc};

/// Sample interval used by every BTS client in the paper (50 ms).
pub const SAMPLE_INTERVAL_MS: u64 = 50;
