//! Bandwidth probers: TCP flooding and Swiftest's paced UDP probing.
//!
//! A prober owns the traffic pattern; the estimator (see
//! [`crate::estimator`]) owns the stop rule and the final number. The
//! flooding prober reproduces BTS-APP/Speedtest behaviour over the
//! round-based TCP simulation; the Swiftest prober implements §5.1's
//! model-guided UDP pacing over the fluid path.

use crate::estimator::{BandwidthEstimator, EstimatorDecision};
use crate::outcome::{DegradeReason, FailReason, TestStatus};
use mbw_congestion::{CcAlgorithm, MultiFlowConfig, MultiFlowSim};
use mbw_netsim::{PathModel, SimTime};
use mbw_stats::Gmm;
use mbw_telemetry::{ProbeTimeline, TimelineEvent};
use std::time::Duration;

/// Which bandwidth testing service a run emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BtsKind {
    /// The production BTS-APP (Speedtest-like, §2).
    BtsApp,
    /// Netflix FAST (§5.1).
    Fast,
    /// FastBTS (§5.1).
    FastBts,
    /// The paper's system (§5).
    Swiftest,
}

impl BtsKind {
    /// All four services.
    pub const ALL: [BtsKind; 4] = [
        BtsKind::BtsApp,
        BtsKind::Fast,
        BtsKind::FastBts,
        BtsKind::Swiftest,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BtsKind::BtsApp => "BTS-APP",
            BtsKind::Fast => "FAST",
            BtsKind::FastBts => "FastBTS",
            BtsKind::Swiftest => "Swiftest",
        }
    }
}

impl std::fmt::Display for BtsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Raw result of one probing run (before server-selection overhead).
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Probing wall time.
    pub duration: Duration,
    /// Bytes the client pulled through the access link (its data usage).
    pub data_bytes: f64,
    /// The estimator's final number, Mbps.
    pub estimate_mbps: f64,
    /// The 50 ms samples the client saw.
    pub samples: Vec<f64>,
    /// How the run completed (converged / partial / nothing usable).
    pub status: TestStatus,
    /// The full per-event record of the run, stamped in virtual time —
    /// deterministic (byte-identical JSON) for a fixed seed.
    pub timeline: ProbeTimeline,
}

/// Configuration of the TCP flooding prober.
#[derive(Debug, Clone)]
pub struct FloodingConfig {
    /// Hard stop (10 s for BTS-APP; FAST/FastBTS rely on their
    /// estimators but carry a safety cap).
    pub max_duration: Duration,
    /// Bandwidth thresholds (Mbps) at which another connection is added
    /// (§2: "25 Mbps, 35 Mbps, and so on, following Speedtest's design").
    pub thresholds: Vec<f64>,
    /// Congestion control of the server-side TCP stacks.
    pub cc: CcAlgorithm,
    /// Upper bound on parallel connections.
    pub max_connections: usize,
}

impl FloodingConfig {
    /// BTS-APP's configuration.
    pub fn bts_app() -> Self {
        Self {
            max_duration: Duration::from_secs(10),
            thresholds: speedtest_thresholds(),
            cc: CcAlgorithm::Cubic,
            max_connections: 8,
        }
    }

    /// FAST's configuration (converges via its estimator; 20 s cap).
    pub fn fast() -> Self {
        Self {
            max_duration: Duration::from_secs(20),
            ..Self::bts_app()
        }
    }

    /// FastBTS's configuration (30 s cap, rarely reached).
    pub fn fastbts() -> Self {
        Self {
            max_duration: Duration::from_secs(30),
            ..Self::bts_app()
        }
    }
}

/// Speedtest's connection-addition ladder: 25, 35, then ~1.35× growth.
pub fn speedtest_thresholds() -> Vec<f64> {
    let mut t = vec![25.0, 35.0];
    while *t.last().expect("non-empty") < 1200.0 {
        let next = t.last().unwrap() * 1.35;
        t.push(next);
    }
    t
}

/// Run a TCP flooding test: flood through `MultiFlowSim`, push each
/// complete 50 ms sample into `estimator`, add connections at the
/// configured thresholds, stop when the estimator converges or the cap
/// fires.
pub fn run_flooding(
    path: PathModel,
    estimator: &mut dyn BandwidthEstimator,
    config: &FloodingConfig,
    seed: u64,
) -> ProbeResult {
    let mut sim = MultiFlowSim::new(
        path,
        MultiFlowConfig {
            sample_interval: Duration::from_millis(50),
            seed,
        },
    );
    sim.add_flow(config.cc);

    let mut timeline = ProbeTimeline::new();
    timeline.annotate("prober", "flooding");
    timeline.annotate("estimator", estimator.name());
    timeline.record_phase(0, "probe");

    let mut pushed = 0usize;
    let mut next_threshold = 0usize;
    let mut samples = Vec::new();
    let mut final_estimate = None;
    let mut end = config.max_duration;

    'outer: while sim.now() < config.max_duration {
        sim.step_round();
        let all = sim.samples();
        while pushed < all.len() {
            let s = all[pushed];
            pushed += 1;
            let mbps = s.bps / 1e6;
            samples.push(mbps);
            let at_ns = s.at.as_nanos() as u64;
            timeline.record_sample(at_ns, mbps);
            // Progressive connection addition (§2).
            while next_threshold < config.thresholds.len()
                && mbps >= config.thresholds[next_threshold]
            {
                next_threshold += 1;
                if sim.flow_count() < config.max_connections {
                    sim.add_flow(config.cc);
                    timeline.record_phase(at_ns, &format!("flows={}", sim.flow_count()));
                }
            }
            match estimator.push(mbps) {
                EstimatorDecision::Continue => {}
                EstimatorDecision::Done(v) => {
                    final_estimate = Some(v);
                    end = s.at;
                    timeline.record(at_ns, TimelineEvent::Converged { estimate_mbps: v });
                    break 'outer;
                }
            }
        }
    }

    let (_, delivered, _) = sim.totals();
    let estimate = final_estimate
        .or_else(|| estimator.finalize())
        .unwrap_or(0.0);
    let status = if estimate <= 0.0 || samples.is_empty() {
        TestStatus::Failed(FailReason::NoData)
    } else if final_estimate.is_some() {
        TestStatus::Complete
    } else {
        // The cap fired before the stop rule; the finalize() fallback is
        // an estimate over whatever was observed.
        TestStatus::Degraded(DegradeReason::Convergence)
    };
    let duration = end.min(sim.now());
    timeline.finish(duration.as_nanos() as u64, estimate, &status.to_string());
    ProbeResult {
        duration,
        data_bytes: delivered,
        estimate_mbps: estimate,
        samples,
        status,
        timeline,
    }
}

/// Configuration of Swiftest's UDP prober.
#[derive(Debug, Clone, Copy)]
pub struct SwiftestConfig {
    /// Hard cap (the paper's worst observed test was 4.49 s).
    pub max_duration: Duration,
    /// A sample at or above `saturation_margin × probing rate` means the
    /// link is *not* saturated — escalate.
    pub saturation_margin: f64,
    /// Multiplicative rate growth once above the model's largest mode.
    pub beyond_mode_growth: f64,
}

impl Default for SwiftestConfig {
    fn default() -> Self {
        Self {
            max_duration: Duration::from_millis(4500),
            saturation_margin: 0.96,
            beyond_mode_growth: 1.5,
        }
    }
}

/// Run a Swiftest UDP test (§5.1):
///
/// 1. start pacing at the model's most probable mode;
/// 2. after each 50 ms sample, escalate to the most probable larger mode
///    (or grow multiplicatively past the largest) while unsaturated;
/// 3. stop when the estimator converges (ten samples within 3%).
pub fn run_swiftest(
    mut path: PathModel,
    model: &Gmm,
    estimator: &mut dyn BandwidthEstimator,
    config: &SwiftestConfig,
    _seed: u64,
) -> ProbeResult {
    let step = Duration::from_millis(50);
    // Initial control handshake: one RTT before data flows.
    let handshake = path.base_rtt();
    let mut t = SimTime::ZERO + handshake;
    let mut rate_mbps = model.dominant_mode().max(1.0);
    let mut data_bytes = 0.0;
    let mut samples = Vec::new();
    let mut estimate = None;
    let mut gap_windows = 0usize;
    let deadline = SimTime::ZERO + config.max_duration;

    let mut timeline = ProbeTimeline::new();
    timeline.annotate("prober", "swiftest-udp");
    timeline.annotate("estimator", estimator.name());
    timeline.record_phase(t.as_nanos(), "probe");
    timeline.record_rate(t.as_nanos(), rate_mbps);

    while t < deadline {
        let window_start = t;
        let fs = path.integrate_paced(t, step, step, rate_mbps * 1e6);
        t += step;
        let delivered: f64 = fs.iter().map(|s| s.delivered_bytes).sum();
        // Data usage: bytes that reach the client. Overshoot beyond the
        // bottleneck is dropped upstream of the metered access link, so
        // it does not bill the user (which is how the paper's 32 MB per
        // 5G test comes out of a ~1 s test at ~300 Mbps).
        data_bytes += delivered;
        let mbps = delivered * 8.0 / step.as_secs_f64() / 1e6;
        samples.push(mbps);
        timeline.record_chunk(window_start.as_nanos(), delivered as u64);
        timeline.record_sample(t.as_nanos(), mbps);

        if delivered <= 0.0 {
            // Delivery gap (link blackout): feeding the zero into the
            // estimator would converge it toward a bandwidth the link
            // does not have. Count the gap and keep probing so the test
            // resumes when the radio comes back.
            gap_windows += 1;
            timeline.record(t.as_nanos(), TimelineEvent::Stall);
            continue;
        }

        match estimator.push(mbps) {
            EstimatorDecision::Done(v) => {
                estimate = Some(v);
                timeline.record(t.as_nanos(), TimelineEvent::Converged { estimate_mbps: v });
                break;
            }
            EstimatorDecision::Continue => {}
        }
        // Saturation check (§5.1): the latest sample *not* falling below
        // the probing rate means there is headroom — tune the rate to
        // the most probable larger modal bandwidth.
        if mbps >= rate_mbps * config.saturation_margin {
            rate_mbps = model
                .next_larger_mode(rate_mbps)
                .unwrap_or(rate_mbps * config.beyond_mode_growth);
            timeline.record_rate(t.as_nanos(), rate_mbps);
        }
    }

    let estimate_mbps = estimate.or_else(|| estimator.finalize()).unwrap_or(0.0);
    let status = if estimate_mbps <= 0.0 {
        TestStatus::Failed(FailReason::NoData)
    } else if gap_windows > 0 {
        TestStatus::Degraded(DegradeReason::Blackout)
    } else if estimate.is_none() {
        TestStatus::Degraded(DegradeReason::Convergence)
    } else {
        TestStatus::Complete
    };
    let duration = t.saturating_since(SimTime::ZERO);
    timeline.finish(
        duration.as_nanos() as u64,
        estimate_mbps,
        &status.to_string(),
    );
    ProbeResult {
        duration,
        data_bytes,
        estimate_mbps,
        samples,
        status,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{ConvergenceEstimator, CrucialIntervalEstimator, GroupedTrimmedMean};
    use crate::model::TechClass;
    use mbw_netsim::PathConfig;

    fn flat_path(mbps: f64, rtt_ms: u64) -> PathModel {
        PathModel::new(PathConfig::constant(
            mbps * 1e6,
            Duration::from_millis(rtt_ms),
        ))
    }

    #[test]
    fn thresholds_start_as_the_paper_says() {
        let t = speedtest_thresholds();
        assert_eq!(t[0], 25.0);
        assert_eq!(t[1], 35.0);
        assert!(t.len() > 8);
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn bts_app_runs_the_full_ten_seconds() {
        let mut est = GroupedTrimmedMean::bts_app();
        let r = run_flooding(
            flat_path(100.0, 25),
            &mut est,
            &FloodingConfig::bts_app(),
            1,
        );
        // 200 samples × 50 ms = 10 s.
        assert!(
            r.duration >= Duration::from_millis(9_900),
            "{:?}",
            r.duration
        );
        assert!(
            (r.estimate_mbps - 100.0).abs() < 8.0,
            "estimate {}",
            r.estimate_mbps
        );
        assert!(r.samples.len() >= 200);
        // Data usage ≈ 10 s at ~100 Mbps ≈ 125 MB (ramp loses a little).
        assert!(
            r.data_bytes > 80e6 && r.data_bytes < 130e6,
            "{}",
            r.data_bytes
        );
    }

    #[test]
    fn fast_converges_before_its_cap_on_a_stable_path() {
        let mut est = ConvergenceEstimator::fast();
        let r = run_flooding(flat_path(100.0, 25), &mut est, &FloodingConfig::fast(), 2);
        assert!(r.duration < Duration::from_secs(20));
        assert!(r.estimate_mbps > 60.0, "estimate {}", r.estimate_mbps);
    }

    #[test]
    fn fastbts_is_quick_but_can_lowball() {
        let mut est = CrucialIntervalEstimator::fastbts();
        let r = run_flooding(
            flat_path(300.0, 30),
            &mut est,
            &FloodingConfig::fastbts(),
            3,
        );
        assert!(r.duration < Duration::from_secs(10), "{:?}", r.duration);
        assert!(r.estimate_mbps > 0.0);
    }

    #[test]
    fn flooding_adds_connections_past_thresholds() {
        // On a fast path the first samples exceed 25/35 Mbps quickly, so
        // multiple connections must have been spawned; their aggregate
        // saturates the link faster than a single Cubic flow would.
        let mut est = GroupedTrimmedMean::bts_app();
        let r = run_flooding(
            flat_path(500.0, 25),
            &mut est,
            &FloodingConfig::bts_app(),
            4,
        );
        assert!(
            (r.estimate_mbps - 500.0).abs() < 50.0,
            "estimate {}",
            r.estimate_mbps
        );
    }

    #[test]
    fn swiftest_converges_fast_on_a_flat_path() {
        let model = TechClass::Nr.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            flat_path(300.0, 20),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            5,
        );
        assert!(
            r.duration < Duration::from_millis(2_000),
            "duration {:?}",
            r.duration
        );
        assert!(
            (r.estimate_mbps - 300.0).abs() < 15.0,
            "estimate {}",
            r.estimate_mbps
        );
        // Data usage around rate × duration: tens of MB at most.
        assert!(r.data_bytes < 100e6, "{}", r.data_bytes);
    }

    #[test]
    fn swiftest_escalates_above_the_largest_mode() {
        let model = Gmm::from_triples(&[(0.7, 50.0, 10.0), (0.3, 100.0, 20.0)]).unwrap();
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            flat_path(400.0, 20),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            6,
        );
        assert!(
            (r.estimate_mbps - 400.0).abs() < 30.0,
            "estimate {}",
            r.estimate_mbps
        );
    }

    #[test]
    fn swiftest_does_not_overshoot_below_the_first_mode() {
        // Link slower than the dominant mode: the first sample already
        // shows saturation; the test settles at the true rate.
        let model = TechClass::Nr.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            flat_path(50.0, 20),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            7,
        );
        assert!(
            (r.estimate_mbps - 50.0).abs() < 5.0,
            "estimate {}",
            r.estimate_mbps
        );
        assert!(r.duration < Duration::from_millis(1_500));
    }

    #[test]
    fn swiftest_uses_an_order_of_magnitude_less_data_than_flooding() {
        let model = TechClass::Nr.default_model();
        let mut se = ConvergenceEstimator::swiftest();
        let swift = run_swiftest(
            flat_path(300.0, 20),
            &model,
            &mut se,
            &SwiftestConfig::default(),
            8,
        );
        let mut be = GroupedTrimmedMean::bts_app();
        let bts = run_flooding(flat_path(300.0, 20), &mut be, &FloodingConfig::bts_app(), 8);
        assert!(
            bts.data_bytes / swift.data_bytes > 5.0,
            "flooding {} vs swiftest {}",
            bts.data_bytes,
            swift.data_bytes
        );
    }

    #[test]
    fn swiftest_survives_a_mid_test_blackout() {
        use mbw_netsim::FaultPlan;
        let model = TechClass::Wifi.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        let path = flat_path(80.0, 20).with_faults(FaultPlan::blackout(
            SimTime::from_millis(200),
            Duration::from_millis(400),
        ));
        let r = run_swiftest(path, &model, &mut est, &SwiftestConfig::default(), 11);
        // Bounded, degraded, and not wildly mis-estimated: the zero
        // windows must not drag the estimate toward zero.
        assert!(
            r.duration <= Duration::from_millis(4_600),
            "{:?}",
            r.duration
        );
        assert!(r.status.is_degraded(), "status {:?}", r.status);
        assert!(
            (r.estimate_mbps - 80.0).abs() < 12.0,
            "estimate {}",
            r.estimate_mbps
        );
    }

    #[test]
    fn swiftest_fails_cleanly_when_the_link_never_comes_up() {
        use mbw_netsim::FaultPlan;
        let model = TechClass::Wifi.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        // Blackout covering the whole test horizon.
        let path = flat_path(80.0, 20)
            .with_faults(FaultPlan::blackout(SimTime::ZERO, Duration::from_secs(10)));
        let r = run_swiftest(path, &model, &mut est, &SwiftestConfig::default(), 12);
        assert!(
            r.duration <= Duration::from_millis(4_600),
            "{:?}",
            r.duration
        );
        assert!(r.status.is_failed(), "status {:?}", r.status);
        assert_eq!(r.estimate_mbps, 0.0);
    }

    #[test]
    fn clean_runs_report_complete() {
        let model = TechClass::Nr.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            flat_path(300.0, 20),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            13,
        );
        assert!(r.status.is_complete(), "status {:?}", r.status);
    }

    #[test]
    fn probe_durations_respect_caps() {
        let model = TechClass::Wifi.default_model();
        // A wildly fluctuating path may never converge; the cap must hold.
        let mut path_cfg = PathConfig::constant(80e6, Duration::from_millis(20));
        path_cfg.capacity =
            Box::new(mbw_netsim::OuCapacity::new(80e6, 0.5, 0.5, 42).with_bounds(0.2, 1.8));
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            PathModel::new(path_cfg),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            9,
        );
        assert!(
            r.duration <= Duration::from_millis(4_600),
            "{:?}",
            r.duration
        );
        assert!(r.estimate_mbps > 0.0, "finalize fallback fires");
    }
}
