//! One-call test execution and back-to-back comparisons.
//!
//! The harness glues scenario → server selection → prober → estimator
//! into the paper's evaluation protocol (§5.3): draw an access link,
//! run one (or two back-to-back) BTS tests on it, and report duration,
//! data usage, and accuracy against BTS-APP's result (the approximate
//! ground truth).

use crate::estimator::{ConvergenceEstimator, CrucialIntervalEstimator, GroupedTrimmedMean};
use crate::model::TechClass;
use crate::outcome::TestStatus;
use crate::probe::{self, BtsKind, FloodingConfig, SwiftestConfig};
use crate::scenario::{AccessScenario, DrawnPath};
use crate::server::ServerPool;
use mbw_stats::{descriptive, SeededRng};
use mbw_telemetry::ProbeTimeline;
use std::time::Duration;

/// The outcome of one simulated bandwidth test.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Which service ran.
    pub kind: BtsKind,
    /// Technology class of the access link.
    pub tech: TechClass,
    /// Probing time (excluding server selection).
    pub duration: Duration,
    /// Server-selection (PING) overhead.
    pub ping_overhead: Duration,
    /// Bytes pulled through the access link.
    pub data_bytes: f64,
    /// The reported bandwidth, Mbps.
    pub estimate_mbps: f64,
    /// The drawn link's nominal capacity, Mbps.
    pub truth_mbps: f64,
    /// How the test completed (converged / partial / nothing usable).
    pub status: TestStatus,
    /// The prober's per-event record, annotated with the run's kind,
    /// technology, and seed. Deterministic for a fixed seed.
    pub timeline: ProbeTimeline,
}

impl TestOutcome {
    /// Probing plus selection time — the user-visible test duration.
    pub fn total_duration(&self) -> Duration {
        self.duration + self.ping_overhead
    }

    /// Relative deviation from another outcome's estimate (the paper's
    /// §5.3 metric).
    pub fn deviation_from(&self, other: &TestOutcome) -> f64 {
        descriptive::relative_deviation(self.estimate_mbps, other.estimate_mbps)
    }

    /// Accuracy against a reference estimate: `1 − deviation`.
    pub fn accuracy_vs(&self, reference_mbps: f64) -> f64 {
        1.0 - descriptive::relative_deviation(self.estimate_mbps, reference_mbps)
    }
}

/// A back-to-back test pair on the same drawn link (§5.3's evaluation
/// protocol, with a one-second cooldown between runs).
#[derive(Debug, Clone)]
pub struct BackToBack {
    /// First service's outcome.
    pub first: TestOutcome,
    /// Second service's outcome.
    pub second: TestOutcome,
}

impl BackToBack {
    /// Relative deviation between the two results.
    pub fn deviation(&self) -> f64 {
        self.first.deviation_from(&self.second)
    }
}

/// A §5.3 benchmark-study test group: all four services run on the
/// same drawn link, BTS-APP first as the accuracy reference.
#[derive(Debug, Clone)]
pub struct TestGroup {
    /// Outcomes in [`BtsKind::ALL`] order:
    /// `[BTS-APP, FAST, FastBTS, Swiftest]`.
    pub outcomes: [TestOutcome; 4],
}

impl TestGroup {
    /// The BTS-APP reference outcome.
    pub fn reference(&self) -> &TestOutcome {
        &self.outcomes[0]
    }

    /// The three contenders (FAST, FastBTS, Swiftest).
    pub fn contenders(&self) -> &[TestOutcome] {
        &self.outcomes[1..]
    }
}

/// Test harness for one technology class.
pub struct TestHarness {
    scenario: AccessScenario,
    bts_pool: ServerPool,
    swiftest_pool: ServerPool,
}

impl TestHarness {
    /// Harness with the default calibrated scenario and the paper's two
    /// server fleets.
    pub fn new(tech: TechClass) -> Self {
        Self::with_scenario(AccessScenario::default_for(tech))
    }

    /// Harness over a custom scenario.
    pub fn with_scenario(scenario: AccessScenario) -> Self {
        Self {
            scenario,
            bts_pool: ServerPool::bts_app_production(0xB75),
            swiftest_pool: ServerPool::swiftest_budget(20, 100.0, 0x5F7),
        }
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &AccessScenario {
        &self.scenario
    }

    /// Run one test on a freshly drawn link.
    pub fn run(&self, kind: BtsKind, seed: u64) -> TestOutcome {
        let drawn = self.scenario.draw(seed);
        self.run_on(kind, &drawn, seed ^ 0x51AB)
    }

    /// Run one test on an explicit drawn link.
    pub fn run_on(&self, kind: BtsKind, drawn: &DrawnPath, run_seed: u64) -> TestOutcome {
        let mut rng = SeededRng::new(run_seed);
        let client_domain = rng.index(crate::server::IXP_DOMAINS) as u8;

        // Server selection: BTS-APP pings 5 of 352; Swiftest pings all
        // of its 10-per-test candidates (§2, §5.3).
        let (pool, k) = match kind {
            BtsKind::Swiftest => (&self.swiftest_pool, 10),
            _ => (&self.bts_pool, 5),
        };
        let (_idx, _rtt, ping_overhead) = pool.ping_select(client_domain, k, &mut rng);

        let path = drawn.build();
        let result = match kind {
            BtsKind::BtsApp => {
                let mut est = GroupedTrimmedMean::bts_app();
                probe::run_flooding(path, &mut est, &FloodingConfig::bts_app(), run_seed)
            }
            BtsKind::Fast => {
                let mut est = ConvergenceEstimator::fast();
                probe::run_flooding(path, &mut est, &FloodingConfig::fast(), run_seed)
            }
            BtsKind::FastBts => {
                let mut est = CrucialIntervalEstimator::fastbts();
                probe::run_flooding(path, &mut est, &FloodingConfig::fastbts(), run_seed)
            }
            BtsKind::Swiftest => {
                let mut est = ConvergenceEstimator::swiftest();
                probe::run_swiftest(
                    path,
                    &self.scenario.model,
                    &mut est,
                    &SwiftestConfig::default(),
                    run_seed,
                )
            }
        };

        let mut timeline = result.timeline;
        timeline.annotate("kind", kind.name());
        timeline.annotate("tech", self.scenario.tech.name());
        timeline.annotate("run_seed", &run_seed.to_string());
        timeline.annotate("truth_mbps", &format!("{}", drawn.truth_mbps));

        TestOutcome {
            kind,
            tech: self.scenario.tech,
            duration: result.duration,
            ping_overhead,
            data_bytes: result.data_bytes,
            estimate_mbps: result.estimate_mbps,
            truth_mbps: drawn.truth_mbps,
            status: result.status,
            timeline,
        }
    }

    /// Run a back-to-back pair on the same drawn link, in randomised
    /// order with distinct run seeds (the cooldown means the two runs
    /// see independently evolving — but statistically identical —
    /// capacity noise).
    pub fn back_to_back(&self, a: BtsKind, b: BtsKind, seed: u64) -> BackToBack {
        let drawn = self.scenario.draw(seed);
        let mut rng = SeededRng::new(seed ^ 0x0DD);
        let flip = rng.chance(0.5);
        let (first_kind, second_kind) = if flip { (b, a) } else { (a, b) };
        // Distinct run seeds: the second run starts after a cooldown, so
        // its noise process is a different draw on the same link.
        let mut first = self.run_on(first_kind, &drawn, seed ^ 0xF157);
        let mut second = self.run_on(
            second_kind,
            &DrawnPath {
                seed: drawn.seed ^ 0x2ED,
                ..drawn
            },
            seed ^ 0x5EC,
        );
        if first.kind != a {
            std::mem::swap(&mut first, &mut second);
        }
        BackToBack { first, second }
    }

    /// Run the full benchmark-study group (§5.3): BTS-APP as the
    /// reference plus the three contenders, all on one drawn link with
    /// distinct run seeds.
    pub fn test_group(&self, seed: u64) -> TestGroup {
        let drawn = self.scenario.draw(seed);
        let reference = self.run_on(BtsKind::BtsApp, &drawn, seed ^ 0x0EF);
        let mut k = 0u64;
        let [fast, fastbts, swiftest] =
            [BtsKind::Fast, BtsKind::FastBts, BtsKind::Swiftest].map(|kind| {
                let o = self.run_on(kind, &drawn, seed ^ (0xA11 + k));
                k += 1;
                o
            });
        TestGroup {
            outcomes: [reference, fast, fastbts, swiftest],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swiftest_is_fast_and_light_across_technologies() {
        for tech in TechClass::ALL {
            let h = TestHarness::new(tech);
            let mut durations = Vec::new();
            let mut usage = Vec::new();
            for seed in 0..30 {
                let o = h.run(BtsKind::Swiftest, seed);
                durations.push(o.duration.as_secs_f64());
                usage.push(o.data_bytes);
                assert!(o.total_duration() < Duration::from_secs(5));
            }
            let mean_dur = descriptive::mean(&durations);
            assert!(
                (0.4..=2.0).contains(&mean_dur),
                "{tech}: mean duration {mean_dur}"
            );
            // §5.3: even 5G tests average ~32 MB.
            assert!(
                descriptive::mean(&usage) < 80e6,
                "{tech}: usage {}",
                descriptive::mean(&usage)
            );
        }
    }

    #[test]
    fn bts_app_takes_ten_seconds() {
        let h = TestHarness::new(TechClass::Wifi);
        let o = h.run(BtsKind::BtsApp, 42);
        assert!(o.duration >= Duration::from_millis(9_900));
        assert!(o.estimate_mbps > 0.0);
    }

    #[test]
    fn swiftest_tracks_bts_app_closely_on_average() {
        let h = TestHarness::new(TechClass::Wifi);
        let mut devs = Vec::new();
        for seed in 0..40 {
            let pair = h.back_to_back(BtsKind::Swiftest, BtsKind::BtsApp, seed);
            devs.push(pair.deviation());
        }
        let mean_dev = descriptive::mean(&devs);
        // §5.3: average deviation ≈ 5%; give head-room for small n.
        assert!(mean_dev < 0.12, "mean deviation {mean_dev}");
    }

    #[test]
    fn back_to_back_randomises_order_but_reports_in_argument_order() {
        let h = TestHarness::new(TechClass::Lte);
        for seed in 0..10 {
            let pair = h.back_to_back(BtsKind::Swiftest, BtsKind::BtsApp, seed);
            assert_eq!(pair.first.kind, BtsKind::Swiftest);
            assert_eq!(pair.second.kind, BtsKind::BtsApp);
            assert_eq!(pair.first.truth_mbps, pair.second.truth_mbps);
        }
    }

    #[test]
    fn data_usage_ratio_matches_the_paper_scale() {
        // §5.3 / Fig 21: BTS-APP uses ~8–9× the data of Swiftest.
        let h = TestHarness::new(TechClass::Nr);
        let mut ratio = Vec::new();
        for seed in 0..20 {
            let pair = h.back_to_back(BtsKind::BtsApp, BtsKind::Swiftest, seed);
            if pair.second.data_bytes > 0.0 {
                ratio.push(pair.first.data_bytes / pair.second.data_bytes);
            }
        }
        let mean_ratio = descriptive::mean(&ratio);
        assert!(mean_ratio > 4.0, "ratio {mean_ratio}");
    }

    #[test]
    fn outcome_metrics() {
        let o = TestOutcome {
            kind: BtsKind::Swiftest,
            tech: TechClass::Wifi,
            duration: Duration::from_millis(900),
            ping_overhead: Duration::from_millis(200),
            data_bytes: 1e7,
            estimate_mbps: 95.0,
            truth_mbps: 100.0,
            status: TestStatus::Complete,
            timeline: ProbeTimeline::new(),
        };
        assert_eq!(o.total_duration(), Duration::from_millis(1100));
        assert!((o.accuracy_vs(100.0) - 0.95).abs() < 1e-9);
        assert!(o.status.is_complete());
    }

    #[test]
    fn runs_are_deterministic() {
        let h = TestHarness::new(TechClass::Nr);
        let a = h.run(BtsKind::Swiftest, 7);
        let b = h.run(BtsKind::Swiftest, 7);
        assert_eq!(a.estimate_mbps, b.estimate_mbps);
        assert_eq!(a.duration, b.duration);
    }

    #[test]
    fn timelines_are_byte_identical_for_a_fixed_seed() {
        let h = TestHarness::new(TechClass::Nr);
        let a = h.run(BtsKind::Swiftest, 7);
        let b = h.run(BtsKind::Swiftest, 7);
        let ja = a.timeline.to_json();
        assert_eq!(ja, b.timeline.to_json());
        // The timeline carries the run's identity and real content.
        assert_eq!(
            a.timeline.meta().get("kind").map(String::as_str),
            Some("Swiftest")
        );
        assert!(!a.timeline.trajectory().is_empty());
        assert!(a.timeline.summary().is_some());
        // A different seed tells a different story.
        let c = h.run(BtsKind::Swiftest, 8);
        assert_ne!(ja, c.timeline.to_json());
    }

    #[test]
    fn flooding_runs_carry_timelines_too() {
        let h = TestHarness::new(TechClass::Wifi);
        let o = h.run(BtsKind::BtsApp, 3);
        assert_eq!(
            o.timeline.meta().get("prober").map(String::as_str),
            Some("flooding")
        );
        // 10 s at 50 ms sampling: the trajectory is the full sample set.
        assert!(o.timeline.trajectory().len() >= 200);
    }
}
