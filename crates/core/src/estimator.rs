//! Bandwidth-estimation algorithms.
//!
//! Every BTS collects a stream of 50 ms throughput samples and must turn
//! them into one number while deciding when to stop. The four algorithms
//! in the paper differ exactly there (§2, §5.1):
//!
//! | service | stop rule | estimate |
//! |---|---|---|
//! | BTS-APP | fixed duration (200 samples) | 20 groups of 10; drop 5 lowest + 2 highest group means; average |
//! | Speedtest | fixed duration | drop bottom 25% / top 10% of samples; average |
//! | FAST | last 10 samples within 3% | mean of those samples |
//! | FastBTS | crucial interval stable | mean of densest sample interval |
//! | Swiftest | last 10 samples within 3% | mean of those samples |

use mbw_stats::descriptive;

/// Whether a test should keep probing after a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorDecision {
    /// Keep collecting samples.
    Continue,
    /// The estimator has converged on a final result (Mbps).
    Done(f64),
}

/// Streaming bandwidth estimator fed one 50 ms sample at a time.
pub trait BandwidthEstimator {
    /// Digest one sample (Mbps); may declare the test finished.
    fn push(&mut self, sample_mbps: f64) -> EstimatorDecision;

    /// Best-effort result if the test is stopped right now (e.g. the
    /// probing deadline fired). `None` when no samples have arrived.
    fn finalize(&self) -> Option<f64>;

    /// Samples consumed so far.
    fn len(&self) -> usize;

    /// True when no samples have arrived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// BTS-APP's estimator (§2): collect `groups × group_size` samples,
/// average each group, discard the `drop_low` lowest and `drop_high`
/// highest group means, and average the rest. The paper's production
/// parameters (matching Speedtest) are 20 × 10, drop 5 + 2.
#[derive(Debug, Clone)]
pub struct GroupedTrimmedMean {
    samples: Vec<f64>,
    groups: usize,
    group_size: usize,
    drop_low: usize,
    drop_high: usize,
}

impl GroupedTrimmedMean {
    /// The production BTS-APP configuration: 200 samples in 20 groups,
    /// drop 5 lowest and 2 highest group means.
    pub fn bts_app() -> Self {
        Self::new(20, 10, 5, 2)
    }

    /// Custom grouping (for ablations).
    ///
    /// # Panics
    /// Panics if the trim would discard every group.
    pub fn new(groups: usize, group_size: usize, drop_low: usize, drop_high: usize) -> Self {
        assert!(groups > 0 && group_size > 0);
        assert!(drop_low + drop_high < groups, "trim discards all groups");
        Self {
            samples: Vec::new(),
            groups,
            group_size,
            drop_low,
            drop_high,
        }
    }

    /// Total samples this estimator wants.
    pub fn target_samples(&self) -> usize {
        self.groups * self.group_size
    }

    fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let means: Vec<f64> = self
            .samples
            .chunks(self.group_size)
            .map(descriptive::mean)
            .collect();
        // With a full run there are exactly `groups` means; a truncated
        // run trims proportionally fewer.
        let scale = means.len() as f64 / self.groups as f64;
        let low = (self.drop_low as f64 * scale).floor() as usize;
        let high = (self.drop_high as f64 * scale).floor() as usize;
        descriptive::trimmed_mean(&means, low, high).or_else(|| Some(descriptive::mean(&means)))
    }
}

impl BandwidthEstimator for GroupedTrimmedMean {
    fn push(&mut self, sample_mbps: f64) -> EstimatorDecision {
        self.samples.push(sample_mbps);
        if self.samples.len() >= self.target_samples() {
            EstimatorDecision::Done(self.estimate().expect("samples present"))
        } else {
            EstimatorDecision::Continue
        }
    }

    fn finalize(&self) -> Option<f64> {
        self.estimate()
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn name(&self) -> &'static str {
        "grouped-trimmed-mean"
    }
}

/// Speedtest's static filter (§5.1): run for a fixed number of samples,
/// "filter out the top 10% and bottom 25% bandwidth samples, and then
/// average the remaining ones".
#[derive(Debug, Clone)]
pub struct SpeedtestTrim {
    samples: Vec<f64>,
    target: usize,
}

impl SpeedtestTrim {
    /// Speedtest's 15-second test at 50 ms sampling = 300 samples.
    pub fn speedtest() -> Self {
        Self::new(300)
    }

    /// Custom duration (in samples).
    ///
    /// # Panics
    /// Panics if `target` is zero.
    pub fn new(target: usize) -> Self {
        assert!(target > 0);
        Self {
            samples: Vec::new(),
            target,
        }
    }
}

impl BandwidthEstimator for SpeedtestTrim {
    fn push(&mut self, sample_mbps: f64) -> EstimatorDecision {
        self.samples.push(sample_mbps);
        if self.samples.len() >= self.target {
            EstimatorDecision::Done(self.finalize().expect("samples present"))
        } else {
            EstimatorDecision::Continue
        }
    }

    fn finalize(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        descriptive::fraction_trimmed_mean(&self.samples, 0.25, 0.10)
            .or_else(|| Some(descriptive::mean(&self.samples)))
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn name(&self) -> &'static str {
        "speedtest-trim"
    }
}

/// FAST's and Swiftest's stop rule (§5.1): the test ends when the last
/// `window` samples differ by no more than `tolerance` (max−min relative
/// to max); the result is their mean.
#[derive(Debug, Clone)]
pub struct ConvergenceEstimator {
    samples: Vec<f64>,
    window: usize,
    tolerance: f64,
    /// Samples to ignore at the start (FAST discards the first moments
    /// of slow start; Swiftest needs no warm-up).
    warmup: usize,
}

impl ConvergenceEstimator {
    /// The Swiftest configuration: 10-sample window, 3% tolerance,
    /// no warm-up.
    pub fn swiftest() -> Self {
        Self::new(10, 0.03, 0)
    }

    /// The FAST configuration: same convergence rule over TCP samples,
    /// but with a substantial warm-up — fast.com discards the early
    /// slow-start-dominated seconds before it starts judging stability,
    /// which is why its TCP tests run much longer than Swiftest (§5.3:
    /// 13.5 s average).
    pub fn fast() -> Self {
        Self::new(10, 0.03, 40)
    }

    /// Custom window/tolerance (ablations).
    ///
    /// # Panics
    /// Panics on a zero window or non-positive tolerance.
    pub fn new(window: usize, tolerance: f64, warmup: usize) -> Self {
        assert!(window >= 2, "need at least two samples to compare");
        assert!(tolerance > 0.0);
        Self {
            samples: Vec::new(),
            window,
            tolerance,
            warmup,
        }
    }

    fn tail(&self) -> Option<&[f64]> {
        let usable = self.samples.len().saturating_sub(self.warmup);
        if usable < self.window {
            return None;
        }
        Some(&self.samples[self.samples.len() - self.window..])
    }
}

impl BandwidthEstimator for ConvergenceEstimator {
    fn push(&mut self, sample_mbps: f64) -> EstimatorDecision {
        self.samples.push(sample_mbps);
        if let Some(tail) = self.tail() {
            let max = tail.iter().cloned().fold(0.0, f64::max);
            let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            if max > 0.0 && (max - min) / max <= self.tolerance {
                return EstimatorDecision::Done(descriptive::mean(tail));
            }
        }
        EstimatorDecision::Continue
    }

    fn finalize(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let tail = &self.samples[n.saturating_sub(self.window)..];
        Some(descriptive::mean(tail))
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn name(&self) -> &'static str {
        "convergence"
    }
}

/// FastBTS's crucial-interval estimator (§5.1): among all intervals of
/// sorted samples, pick the one maximising *density × quantity*; the
/// estimate is the mean of the samples inside. The test stops once the
/// crucial interval's mean is stable — which is exactly how it converges
/// prematurely while TCP is still ramping (the densest cluster sits at a
/// low rate during slow start).
#[derive(Debug, Clone)]
pub struct CrucialIntervalEstimator {
    samples: Vec<f64>,
    /// Require at least this many samples before evaluating.
    min_samples: usize,
    /// Stability: consecutive crucial-interval means within this ratio.
    stability: f64,
    /// How many consecutive stable evaluations end the test.
    stable_needed: u32,
    stable_count: u32,
    last_mean: Option<f64>,
}

impl CrucialIntervalEstimator {
    /// FastBTS-like defaults. The real system bootstraps its interval
    /// across connections before trusting it; the evidence floor here
    /// (24 samples ≈ 1.2 s) plays that role.
    pub fn fastbts() -> Self {
        Self {
            samples: Vec::new(),
            min_samples: 24,
            stability: 0.05,
            stable_needed: 5,
            stable_count: 0,
            last_mean: None,
        }
    }

    /// The crucial interval over the current samples:
    /// `(low, high, mean)`. Exposed for tests and diagnostics.
    pub fn crucial_interval(&self) -> Option<(f64, f64, f64)> {
        if self.samples.len() < 4 {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        // Evaluate every window containing at least a quarter of the
        // samples; score = count² / (width + ε) = density × quantity.
        let min_count = (n / 4).max(2);
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in (i + min_count - 1)..n {
                let count = j - i + 1;
                let width = sorted[j] - sorted[i];
                let score = (count * count) as f64 / (width + 1.0);
                if best.map_or(true, |(_, _, s)| score > s) {
                    best = Some((i, j, score));
                }
            }
        }
        best.map(|(i, j, _)| {
            let slice = &sorted[i..=j];
            (sorted[i], sorted[j], descriptive::mean(slice))
        })
    }
}

impl BandwidthEstimator for CrucialIntervalEstimator {
    fn push(&mut self, sample_mbps: f64) -> EstimatorDecision {
        self.samples.push(sample_mbps);
        if self.samples.len() < self.min_samples {
            return EstimatorDecision::Continue;
        }
        let (_, _, mean) = self.crucial_interval().expect("enough samples");
        if let Some(prev) = self.last_mean {
            let drift = (mean - prev).abs() / prev.max(f64::MIN_POSITIVE);
            if drift <= self.stability {
                self.stable_count += 1;
                if self.stable_count >= self.stable_needed {
                    self.last_mean = Some(mean);
                    return EstimatorDecision::Done(mean);
                }
            } else {
                self.stable_count = 0;
            }
        }
        self.last_mean = Some(mean);
        EstimatorDecision::Continue
    }

    fn finalize(&self) -> Option<f64> {
        self.crucial_interval().map(|(_, _, m)| m).or_else(|| {
            if self.samples.is_empty() {
                None
            } else {
                Some(descriptive::mean(&self.samples))
            }
        })
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn name(&self) -> &'static str {
        "crucial-interval"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(est: &mut dyn BandwidthEstimator, samples: &[f64]) -> Option<f64> {
        for &s in samples {
            if let EstimatorDecision::Done(v) = est.push(s) {
                return Some(v);
            }
        }
        None
    }

    #[test]
    fn grouped_trimmed_mean_drops_slow_start_groups() {
        let mut est = GroupedTrimmedMean::bts_app();
        // 200 samples: first 50 ramping (slow start), rest at 100 Mbps.
        let mut samples: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        samples.extend(std::iter::repeat(100.0).take(150));
        let result = feed(&mut est, &samples).expect("200 samples complete the test");
        // The 5 lowest groups (the ramp) are discarded; result ≈ 100.
        assert!((result - 100.0).abs() < 3.0, "{result}");
    }

    #[test]
    fn grouped_runs_exactly_200_samples() {
        let mut est = GroupedTrimmedMean::bts_app();
        for i in 0..199 {
            assert_eq!(est.push(50.0), EstimatorDecision::Continue, "sample {i}");
        }
        assert!(matches!(est.push(50.0), EstimatorDecision::Done(_)));
    }

    #[test]
    fn grouped_finalize_handles_truncated_runs() {
        let mut est = GroupedTrimmedMean::bts_app();
        assert_eq!(est.finalize(), None);
        for _ in 0..35 {
            est.push(80.0);
        }
        let v = est.finalize().expect("partial estimate");
        assert!((v - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "trim discards all groups")]
    fn grouped_rejects_full_trim() {
        GroupedTrimmedMean::new(5, 10, 3, 2);
    }

    #[test]
    fn speedtest_trim_filters_bottom_quarter_and_top_tenth() {
        let mut est = SpeedtestTrim::new(100);
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let v = feed(&mut est, &samples).expect("fixed duration completes");
        // Keep 26..=90 → mean 58.
        assert!((v - 58.0).abs() < 1e-9, "{v}");
        assert_eq!(est.len(), 100);
    }

    #[test]
    fn speedtest_trim_discards_slow_start_noise() {
        let mut est = SpeedtestTrim::new(100);
        let mut samples: Vec<f64> = (0..25).map(|i| 4.0 * i as f64).collect(); // ramp
        samples.extend(std::iter::repeat(100.0).take(75));
        let v = feed(&mut est, &samples).unwrap();
        assert!((v - 100.0).abs() < 2.0, "{v}");
    }

    #[test]
    fn convergence_stops_on_stable_tail() {
        let mut est = ConvergenceEstimator::swiftest();
        let mut samples: Vec<f64> = vec![10.0, 40.0, 80.0, 120.0, 160.0];
        samples.extend(std::iter::repeat(200.0).take(10));
        let v = feed(&mut est, &samples).expect("converges");
        assert!((v - 200.0).abs() < 1e-9);
        assert_eq!(est.len(), 15);
    }

    #[test]
    fn convergence_tolerates_3_percent() {
        let mut est = ConvergenceEstimator::swiftest();
        // Samples alternating within 3%: 100 and 102.9.
        let samples: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 100.0 } else { 102.9 })
            .collect();
        let v = feed(&mut est, &samples).expect("3% band converges");
        assert!((v - 101.45).abs() < 0.1);
    }

    #[test]
    fn convergence_rejects_4_percent_band() {
        let mut est = ConvergenceEstimator::swiftest();
        let samples: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 100.0 } else { 104.2 })
            .collect();
        assert_eq!(feed(&mut est, &samples), None);
    }

    #[test]
    fn fast_warmup_defers_convergence() {
        // Identical inputs: the warm-up variant needs more samples.
        let samples = vec![100.0; 14];
        let mut swift = ConvergenceEstimator::swiftest();
        let mut fast = ConvergenceEstimator::fast();
        let mut swift_done = None;
        let mut fast_done = None;
        for (i, &s) in samples.iter().enumerate() {
            if swift_done.is_none() {
                if let EstimatorDecision::Done(_) = swift.push(s) {
                    swift_done = Some(i);
                }
            }
            if fast_done.is_none() {
                if let EstimatorDecision::Done(_) = fast.push(s) {
                    fast_done = Some(i);
                }
            }
        }
        assert!(swift_done.unwrap() < fast_done.unwrap_or(usize::MAX));
    }

    #[test]
    fn convergence_finalize_uses_tail_mean() {
        let mut est = ConvergenceEstimator::swiftest();
        for s in [1.0, 2.0, 300.0, 300.0, 300.0] {
            est.push(s);
        }
        // Tail of ≤10 samples: mean of all five.
        let v = est.finalize().unwrap();
        assert!((v - 180.6).abs() < 0.1);
    }

    #[test]
    fn crucial_interval_finds_dense_cluster() {
        let mut est = CrucialIntervalEstimator::fastbts();
        // Sparse ramp + dense cluster at ~95–105.
        for s in [5.0, 20.0, 40.0, 60.0, 80.0] {
            est.push(s);
        }
        for i in 0..20 {
            est.push(95.0 + (i % 5) as f64 * 2.5);
        }
        let (lo, hi, mean) = est.crucial_interval().unwrap();
        assert!(lo >= 90.0, "lo {lo}");
        assert!(hi <= 110.0, "hi {hi}");
        assert!((mean - 100.0).abs() < 6.0, "mean {mean}");
    }

    #[test]
    fn crucial_interval_converges_prematurely_on_plateaued_ramp() {
        // A slow-start plateau at 60 followed by the true rate 200: the
        // estimator locks onto the 60-cluster — the §5.3 failure mode.
        let mut est = CrucialIntervalEstimator::fastbts();
        let mut samples: Vec<f64> = vec![5.0, 10.0, 20.0, 40.0];
        samples.extend(std::iter::repeat(60.0).take(30));
        samples.extend(std::iter::repeat(200.0).take(30));
        let v = feed(&mut est, &samples).expect("stops early");
        assert!(v < 80.0, "underestimates: {v}");
        assert!(est.len() <= 40, "stopped before the 200s took over");
    }

    #[test]
    fn all_estimators_report_names_and_counts() {
        let mut ests: Vec<Box<dyn BandwidthEstimator>> = vec![
            Box::new(GroupedTrimmedMean::bts_app()),
            Box::new(ConvergenceEstimator::swiftest()),
            Box::new(CrucialIntervalEstimator::fastbts()),
        ];
        for est in &mut ests {
            assert!(est.is_empty());
            est.push(10.0);
            assert_eq!(est.len(), 1);
            assert!(!est.name().is_empty());
        }
    }
}
