//! Test-server pool and PING-based server selection.
//!
//! BTS-APP operates 352 servers (1–10 Gbps, 62 of them ISP-provided and
//! especially close to the backbone IXPs) and PINGs 5 geographically
//! nearby ones per test; Swiftest runs 20 budget 100 Mbps servers spread
//! over the eight China-mainland IXP domains and PINGs all of them
//! (§2, §5.2, §5.3).

use mbw_stats::SeededRng;
use std::time::Duration;

/// Number of core IXP domains in mainland China (§5.2: Beijing,
/// Shanghai, Guangzhou, Nanjing, Shenyang, Wuhan, Chengdu, Xi'an).
pub const IXP_DOMAINS: usize = 8;

/// One test server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestServer {
    /// Stable identifier.
    pub id: u32,
    /// IXP domain the server lives in (0–7).
    pub domain: u8,
    /// Egress bandwidth, bits/second.
    pub uplink_bps: f64,
    /// Intra-domain base RTT to a client in the same domain.
    pub base_rtt: Duration,
}

/// A pool of test servers.
#[derive(Debug, Clone)]
pub struct ServerPool {
    servers: Vec<TestServer>,
}

/// Extra RTT per hop between IXP domains.
const INTER_DOMAIN_RTT_MS: f64 = 8.0;

impl ServerPool {
    /// Build a pool from explicit servers.
    pub fn new(servers: Vec<TestServer>) -> Self {
        assert!(!servers.is_empty(), "pool must have servers");
        Self { servers }
    }

    /// BTS-APP's production-like pool: 352 servers, 1–10 Gbps, 62 of
    /// them ISP-backed with very low base RTT (§2).
    pub fn bts_app_production(seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut servers = Vec::with_capacity(352);
        for id in 0..352u32 {
            let isp_backed = id < 62;
            let uplink_gbps = if isp_backed {
                rng.uniform_range(5.0, 10.0)
            } else {
                rng.uniform_range(1.0, 5.0)
            };
            let base_ms = if isp_backed {
                rng.uniform_range(2.0, 6.0)
            } else {
                rng.uniform_range(5.0, 15.0)
            };
            servers.push(TestServer {
                id,
                domain: (id as usize % IXP_DOMAINS) as u8,
                uplink_bps: uplink_gbps * 1e9,
                base_rtt: Duration::from_secs_f64(base_ms / 1e3),
            });
        }
        Self::new(servers)
    }

    /// Swiftest's budget pool: `count` servers of `mbps` each, placed
    /// evenly across the IXP domains, as close to the core IXPs as the
    /// VM market allows (§5.2).
    pub fn swiftest_budget(count: usize, mbps: f64, seed: u64) -> Self {
        assert!(count > 0);
        let mut rng = SeededRng::new(seed);
        let servers = (0..count as u32)
            .map(|id| TestServer {
                id,
                domain: (id as usize % IXP_DOMAINS) as u8,
                uplink_bps: mbps * 1e6,
                base_rtt: Duration::from_secs_f64(rng.uniform_range(3.0, 10.0) / 1e3),
            })
            .collect();
        Self::new(servers)
    }

    /// All servers.
    pub fn servers(&self) -> &[TestServer] {
        &self.servers
    }

    /// Total pool egress capacity, bits/second.
    pub fn total_uplink_bps(&self) -> f64 {
        self.servers.iter().map(|s| s.uplink_bps).sum()
    }

    /// RTT between a client in `client_domain` and a server, including
    /// inter-domain distance and measurement jitter.
    pub fn rtt_to(&self, server: &TestServer, client_domain: u8, rng: &mut SeededRng) -> Duration {
        let hops = domain_distance(client_domain, server.domain) as f64;
        let jitter = rng.uniform_range(0.0, 2.0);
        Duration::from_secs_f64(
            server.base_rtt.as_secs_f64() + (hops * INTER_DOMAIN_RTT_MS + jitter) / 1e3,
        )
    }

    /// PING-based selection (§2): probe `k` candidate servers nearest to
    /// the client's domain (by id-ordering within domain distance) and
    /// return `(chosen index, chosen RTT, selection overhead)`.
    ///
    /// PINGs run concurrently, so the overhead is one worst-case PING
    /// round plus client-side processing — the ~0.2 s the paper charges
    /// Swiftest for PINGing all 10 of its servers (§5.3).
    pub fn ping_select(
        &self,
        client_domain: u8,
        k: usize,
        rng: &mut SeededRng,
    ) -> (usize, Duration, Duration) {
        let k = k.min(self.servers.len());
        // Candidates: servers sorted by domain distance (the "geographic
        // proximity by IP address" heuristic).
        let mut order: Vec<usize> = (0..self.servers.len()).collect();
        order.sort_by_key(|&i| {
            (
                domain_distance(client_domain, self.servers[i].domain),
                self.servers[i].id,
            )
        });
        let mut best: Option<(usize, Duration)> = None;
        let mut worst_ping = Duration::ZERO;
        for &i in order.iter().take(k) {
            let rtt = self.rtt_to(&self.servers[i], client_domain, rng);
            worst_ping = worst_ping.max(rtt);
            if best.map_or(true, |(_, b)| rtt < b) {
                best = Some((i, rtt));
            }
        }
        let (idx, rtt) = best.expect("k >= 1");
        // Overhead: concurrent PING round + ~150 ms client bookkeeping.
        let overhead = worst_ping + Duration::from_millis(150);
        (idx, rtt, overhead)
    }
}

fn domain_distance(a: u8, b: u8) -> u8 {
    // Domains sit on a logical ring of IXPs; distance is ring distance.
    let d = (a as i16 - b as i16).unsigned_abs() as u8;
    d.min(IXP_DOMAINS as u8 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_pool_shape() {
        let pool = ServerPool::bts_app_production(1);
        assert_eq!(pool.servers().len(), 352);
        let fast = pool
            .servers()
            .iter()
            .filter(|s| s.uplink_bps >= 5e9)
            .count();
        assert!(fast >= 62, "ISP-backed servers present");
        // Total capacity in the hundreds of Gbps–Tbps range.
        assert!(pool.total_uplink_bps() > 352.0 * 1e9);
    }

    #[test]
    fn budget_pool_matches_paper_deployment() {
        let pool = ServerPool::swiftest_budget(20, 100.0, 2);
        assert_eq!(pool.servers().len(), 20);
        assert!(
            (pool.total_uplink_bps() - 2e9).abs() < 1.0,
            "20 × 100 Mbps = 2 Gbps"
        );
        // Evenly spread: at most ⌈20/8⌉ per domain.
        for d in 0..IXP_DOMAINS as u8 {
            let n = pool.servers().iter().filter(|s| s.domain == d).count();
            assert!(n <= 3, "domain {d} has {n}");
        }
    }

    #[test]
    fn ping_select_prefers_same_domain() {
        let pool = ServerPool::bts_app_production(3);
        let mut rng = SeededRng::new(4);
        let (idx, rtt, overhead) = pool.ping_select(2, 5, &mut rng);
        assert_eq!(pool.servers()[idx].domain, 2, "nearest domain wins");
        assert!(rtt < Duration::from_millis(30));
        assert!(overhead >= Duration::from_millis(150));
        assert!(overhead < Duration::from_millis(400));
    }

    #[test]
    fn ping_select_handles_k_larger_than_pool() {
        let pool = ServerPool::swiftest_budget(3, 100.0, 5);
        let mut rng = SeededRng::new(6);
        let (idx, _, _) = pool.ping_select(0, 10, &mut rng);
        assert!(idx < 3);
    }

    #[test]
    fn domain_distance_is_ring_metric() {
        assert_eq!(domain_distance(0, 0), 0);
        assert_eq!(domain_distance(0, 4), 4);
        assert_eq!(domain_distance(0, 7), 1);
        assert_eq!(domain_distance(6, 1), 3);
    }

    #[test]
    #[should_panic(expected = "pool must have servers")]
    fn empty_pool_rejected() {
        ServerPool::new(vec![]);
    }
}
