//! The TCP-based Swiftest variant (§7, "Design Choices of Swiftest").
//!
//! The paper notes that UDP "is just one of the feasible design
//! choices, and similar benefits can also be achieved by not giving up
//! TCP: we can customize the TCP congestion control algorithm to
//! realize in part the data-driven bandwidth probing mechanism, while
//! retaining TCP's fairness properties". This module is that variant:
//! a congestion controller that
//!
//! 1. **jump-starts** at the model's most probable modal bandwidth
//!    instead of slow-starting from 10 segments,
//! 2. **escalates** its pacing target to the next most probable larger
//!    mode while the delivery rate keeps up (the same rule as the UDP
//!    prober), and
//! 3. **remains TCP**: on loss it backs off multiplicatively and lets
//!    the ACK clock cap its window, so it cannot starve a competing
//!    flow the way an open-loop UDP blast could.
//!
//! The paper chose UDP because this approach "involves heavy
//! modifications to the congestion control of TCP"; here the kernel is
//! ours, so the modification is a module.

use crate::estimator::{BandwidthEstimator, ConvergenceEstimator, EstimatorDecision};
use crate::outcome::{DegradeReason, FailReason, TestStatus};
use crate::probe::{ProbeResult, SwiftestConfig};
use mbw_congestion::{CongestionControl, MultiFlowConfig, MultiFlowSim, RoundInput, MSS};
use mbw_netsim::PathModel;
use mbw_stats::{Gmm, SeededRng};
use std::time::Duration;

/// Model-guided TCP congestion control.
#[derive(Debug, Clone)]
pub struct ModelGuidedCc {
    /// The technology's bandwidth model (Mbps modes).
    model: Gmm,
    /// Current pacing target, segments/second.
    target_pps: f64,
    /// Congestion window, segments.
    cwnd: f64,
    /// Saturation margin: delivery ≥ margin × target means "not
    /// saturated, escalate".
    margin: f64,
    /// Growth factor past the largest mode.
    beyond_growth: f64,
    /// Smoothed delivery rate, segments/second.
    delivered_ewma: f64,
}

fn mbps_to_pps(mbps: f64) -> f64 {
    mbps * 1e6 / (8.0 * MSS)
}

fn pps_to_mbps(pps: f64) -> f64 {
    pps * 8.0 * MSS / 1e6
}

impl ModelGuidedCc {
    /// Start at the model's most probable mode.
    pub fn new(model: Gmm, config: &SwiftestConfig) -> Self {
        let start = model.dominant_mode().max(1.0);
        Self {
            target_pps: mbps_to_pps(start),
            cwnd: 10.0,
            margin: config.saturation_margin,
            beyond_growth: config.beyond_mode_growth,
            model,
            delivered_ewma: 0.0,
        }
    }

    /// Current pacing target in Mbps (diagnostics).
    pub fn target_mbps(&self) -> f64 {
        pps_to_mbps(self.target_pps)
    }
}

impl CongestionControl for ModelGuidedCc {
    fn window_pkts(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate_pps(&self) -> Option<f64> {
        Some(self.target_pps)
    }

    fn on_round(&mut self, input: &RoundInput, _rng: &mut SeededRng) {
        let rtt = input.rtt.as_secs_f64().max(1e-6);
        self.delivered_ewma = if self.delivered_ewma == 0.0 {
            input.delivery_rate_pps
        } else {
            0.7 * self.delivered_ewma + 0.3 * input.delivery_rate_pps
        };

        if input.saw_loss() {
            // TCP-friendliness: multiplicative decrease toward what the
            // path proved it can deliver.
            self.target_pps = (self.target_pps * 0.85)
                .max(self.delivered_ewma * 0.9)
                .max(mbps_to_pps(1.0));
        } else if input.delivery_rate_pps >= self.target_pps * self.margin {
            // Not saturated: escalate to the next most probable larger
            // modal bandwidth, exactly like the UDP prober.
            let current_mbps = pps_to_mbps(self.target_pps);
            let next = self
                .model
                .next_larger_mode(current_mbps)
                .unwrap_or(current_mbps * self.beyond_growth);
            self.target_pps = mbps_to_pps(next);
        } else {
            // Saturated: track the link (the UDP variant holds its rate;
            // holding *above* capacity would keep the queue full, so the
            // TCP variant trails the measured rate slightly high to keep
            // probing pressure without standing loss).
            self.target_pps = (self.delivered_ewma * 1.05).max(mbps_to_pps(1.0));
        }
        // Window: two BDPs at the pacing target keeps the pacer, not the
        // window, in control, while still bounding inflight like TCP.
        self.cwnd = (2.0 * self.target_pps * rtt).max(10.0);
    }

    fn in_slow_start(&self) -> bool {
        false // jump-start: there is no slow-start phase at all
    }

    fn name(&self) -> &'static str {
        "Swiftest-TCP"
    }
}

/// Run the TCP-variant Swiftest test over a simulated path.
pub fn run_swiftest_tcp(
    path: PathModel,
    model: &Gmm,
    estimator: &mut dyn BandwidthEstimator,
    config: &SwiftestConfig,
    seed: u64,
) -> ProbeResult {
    let mut sim = MultiFlowSim::new(
        path,
        MultiFlowConfig {
            sample_interval: Duration::from_millis(50),
            seed,
        },
    );
    sim.add_flow_boxed(Box::new(ModelGuidedCc::new(model.clone(), config)));

    let mut timeline = mbw_telemetry::ProbeTimeline::new();
    timeline.annotate("prober", "swiftest-tcp");
    timeline.annotate("estimator", estimator.name());
    timeline.record_phase(0, "probe");

    let mut pushed = 0usize;
    let mut samples = Vec::new();
    let mut estimate = None;
    let mut end = config.max_duration;

    'outer: while sim.now() < config.max_duration {
        sim.step_round();
        let all = sim.samples();
        while pushed < all.len() {
            let s = all[pushed];
            pushed += 1;
            let mbps = s.bps / 1e6;
            samples.push(mbps);
            timeline.record_sample(s.at.as_nanos() as u64, mbps);
            if let EstimatorDecision::Done(v) = estimator.push(mbps) {
                estimate = Some(v);
                end = s.at;
                timeline.record(
                    s.at.as_nanos() as u64,
                    mbw_telemetry::TimelineEvent::Converged { estimate_mbps: v },
                );
                break 'outer;
            }
        }
    }
    let (_, delivered, _) = sim.totals();
    let estimate_mbps = estimate.or_else(|| estimator.finalize()).unwrap_or(0.0);
    let status = if estimate_mbps <= 0.0 || samples.is_empty() {
        TestStatus::Failed(FailReason::NoData)
    } else if estimate.is_some() {
        TestStatus::Complete
    } else {
        TestStatus::Degraded(DegradeReason::Convergence)
    };
    let duration = end.min(sim.now());
    timeline.finish(
        duration.as_nanos() as u64,
        estimate_mbps,
        &status.to_string(),
    );
    ProbeResult {
        duration,
        data_bytes: delivered,
        estimate_mbps,
        samples,
        status,
        timeline,
    }
}

/// Convenience: run with the standard Swiftest estimator.
pub fn run_swiftest_tcp_default(path: PathModel, model: &Gmm, seed: u64) -> ProbeResult {
    let mut est = ConvergenceEstimator::swiftest();
    run_swiftest_tcp(path, model, &mut est, &SwiftestConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::GroupedTrimmedMean;
    use crate::model::TechClass;
    use crate::probe::{run_flooding, FloodingConfig};
    use mbw_netsim::PathConfig;

    fn flat_path(mbps: f64, rtt_ms: u64) -> PathModel {
        PathModel::new(PathConfig::constant(
            mbps * 1e6,
            Duration::from_millis(rtt_ms),
        ))
    }

    #[test]
    fn jump_start_skips_slow_start() {
        let model = TechClass::Nr.default_model();
        let cc = ModelGuidedCc::new(model.clone(), &SwiftestConfig::default());
        assert!(!cc.in_slow_start());
        assert!((cc.target_mbps() - model.dominant_mode()).abs() < 1e-9);
    }

    #[test]
    fn tcp_variant_converges_fast_and_accurately() {
        let model = TechClass::Nr.default_model();
        let r = run_swiftest_tcp_default(flat_path(300.0, 20), &model, 1);
        assert!(
            r.duration < Duration::from_millis(2_500),
            "duration {:?}",
            r.duration
        );
        assert!(
            (r.estimate_mbps - 300.0).abs() < 20.0,
            "estimate {}",
            r.estimate_mbps
        );
    }

    #[test]
    fn tcp_variant_is_much_faster_than_cubic_flooding() {
        let model = TechClass::Nr.default_model();
        let tcp_swift = run_swiftest_tcp_default(flat_path(400.0, 30), &model, 2);
        let mut est = GroupedTrimmedMean::bts_app();
        let flooding = run_flooding(
            flat_path(400.0, 30),
            &mut est,
            &FloodingConfig::bts_app(),
            2,
        );
        assert!(tcp_swift.duration < flooding.duration / 3);
        assert!(tcp_swift.data_bytes < flooding.data_bytes / 3.0);
    }

    #[test]
    fn escalates_through_modes_to_reach_fast_links() {
        let model = Gmm::from_triples(&[(0.7, 50.0, 8.0), (0.3, 150.0, 20.0)]).unwrap();
        let r = run_swiftest_tcp_default(flat_path(600.0, 20), &model, 3);
        assert!(
            (r.estimate_mbps - 600.0).abs() < 60.0,
            "estimate {}",
            r.estimate_mbps
        );
    }

    #[test]
    fn backs_off_on_loss_like_tcp() {
        let model = TechClass::Nr.default_model();
        let mut cc = ModelGuidedCc::new(model, &SwiftestConfig::default());
        let mut rng = SeededRng::new(1);
        // Feed a saturated round first so the EWMA has signal.
        let clean = RoundInput {
            now: Duration::from_millis(50),
            rtt: Duration::from_millis(25),
            min_rtt: Duration::from_millis(25),
            delivered_pkts: 500.0,
            lost_pkts: 0.0,
            delivery_rate_pps: 8_000.0,
        };
        cc.on_round(&clean, &mut rng);
        let before = cc.target_mbps();
        let lossy = RoundInput {
            lost_pkts: 5.0,
            ..clean
        };
        cc.on_round(&lossy, &mut rng);
        assert!(
            cc.target_mbps() < before,
            "{} !< {before}",
            cc.target_mbps()
        );
    }

    #[test]
    fn stays_below_capacity_when_saturated() {
        // After saturation the pacing target tracks the delivered rate
        // instead of holding an over-capacity blast.
        let model = TechClass::Nr.default_model();
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest_tcp(
            flat_path(80.0, 25),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            4,
        );
        assert!(
            (r.estimate_mbps - 80.0).abs() < 8.0,
            "estimate {}",
            r.estimate_mbps
        );
        // Goodput samples never exceed the link.
        for &s in &r.samples {
            assert!(s <= 80.0 * 1.02, "sample {s}");
        }
    }

    #[test]
    fn matches_udp_variant_within_a_few_percent() {
        let model = TechClass::Nr.default_model();
        let scenario = crate::scenario::AccessScenario::default_for(TechClass::Nr);
        let mut devs = Vec::new();
        for seed in 0..20u64 {
            let drawn = scenario.draw(seed * 11 + 5);
            let tcp = run_swiftest_tcp_default(drawn.build(), &model, seed);
            let mut est = ConvergenceEstimator::swiftest();
            let udp = crate::probe::run_swiftest(
                drawn.build(),
                &model,
                &mut est,
                &SwiftestConfig::default(),
                seed,
            );
            if tcp.estimate_mbps > 0.0 && udp.estimate_mbps > 0.0 {
                devs.push(mbw_stats::descriptive::relative_deviation(
                    tcp.estimate_mbps,
                    udp.estimate_mbps,
                ));
            }
        }
        let mean_dev = mbw_stats::descriptive::mean(&devs);
        assert!(mean_dev < 0.10, "UDP vs TCP variant deviation {mean_dev}");
    }
}
