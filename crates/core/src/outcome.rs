//! Test completion taxonomy.
//!
//! A crowdsourced bandwidth test over a real radio does not simply
//! succeed or fail: handover blackouts, server stalls, and deadline
//! expiry all yield *partial* measurements that are still worth
//! reporting — with a confidence flag — rather than discarding. The
//! [`TestStatus`] carried by every probe result and harness outcome
//! records which of those happened, so the analysis pipeline can
//! report failure and degradation rates alongside the estimates.

/// Why a test's estimate is only partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// Delivery gaps (link blackout windows) interrupted probing; the
    /// estimate is built from the samples outside the gaps.
    Blackout,
    /// The deadline fired before the estimator's stop rule was met; the
    /// fallback (finalize) estimate was used.
    Convergence,
    /// The server stopped responding mid-test; the estimate covers only
    /// the samples received before the stall.
    Stall,
    /// The client failed over to a backup server mid-measurement, so the
    /// estimate mixes observations against two servers.
    ServerSwitch,
}

/// Why a test produced no usable estimate at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailReason {
    /// Nothing was delivered for the whole test window.
    NoData,
    /// No test server was reachable during selection.
    NoServer,
    /// A transport error aborted the test.
    Transport,
}

/// Completion status of one bandwidth test.
///
/// `Complete` means the estimator's own stop rule fired on an
/// uninterrupted sample stream. `Degraded` means an estimate exists but
/// with reduced confidence. `Failed` means the reported estimate (if
/// any) should not be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TestStatus {
    /// The test ran to convergence without interference.
    #[default]
    Complete,
    /// A partial estimate with reduced confidence.
    Degraded(DegradeReason),
    /// No usable estimate.
    Failed(FailReason),
}

impl TestStatus {
    /// Whether the test converged cleanly.
    pub fn is_complete(self) -> bool {
        matches!(self, TestStatus::Complete)
    }

    /// Whether the test produced a reduced-confidence estimate.
    pub fn is_degraded(self) -> bool {
        matches!(self, TestStatus::Degraded(_))
    }

    /// Whether the test produced nothing usable.
    pub fn is_failed(self) -> bool {
        matches!(self, TestStatus::Failed(_))
    }

    /// Whether the estimate may be consumed (complete or degraded).
    pub fn is_usable(self) -> bool {
        !self.is_failed()
    }

    /// Coarse label: `"complete"`, `"degraded"`, or `"failed"`.
    pub fn label(self) -> &'static str {
        match self {
            TestStatus::Complete => "complete",
            TestStatus::Degraded(_) => "degraded",
            TestStatus::Failed(_) => "failed",
        }
    }
}

impl std::fmt::Display for TestStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestStatus::Complete => f.write_str("complete"),
            TestStatus::Degraded(r) => write!(f, "degraded ({r:?})"),
            TestStatus::Failed(r) => write!(f, "failed ({r:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_partition_the_states() {
        let c = TestStatus::Complete;
        let d = TestStatus::Degraded(DegradeReason::Blackout);
        let f = TestStatus::Failed(FailReason::NoData);
        assert!(c.is_complete() && c.is_usable() && !c.is_degraded() && !c.is_failed());
        assert!(d.is_degraded() && d.is_usable() && !d.is_complete());
        assert!(f.is_failed() && !f.is_usable());
    }

    #[test]
    fn labels_are_coarse() {
        assert_eq!(TestStatus::Complete.label(), "complete");
        assert_eq!(
            TestStatus::Degraded(DegradeReason::Stall).label(),
            "degraded"
        );
        assert_eq!(TestStatus::Failed(FailReason::NoServer).label(), "failed");
        assert_eq!(TestStatus::default(), TestStatus::Complete);
    }

    #[test]
    fn display_names_the_reason() {
        let s = format!("{}", TestStatus::Degraded(DegradeReason::ServerSwitch));
        assert!(s.contains("degraded") && s.contains("ServerSwitch"));
    }
}
