//! Per-technology bandwidth models.
//!
//! Swiftest's probing is "data-driven" (§5.1): it loads a multi-modal
//! Gaussian model of the client's access technology, fitted periodically
//! from recent measurement data, and probes at the modal bandwidths.
//! This module defines the technology classes and the default calibrated
//! models (the same shapes `mbw-dataset` generates and Figs 16/18/19
//! exhibit). Production deployments refresh these with
//! [`mbw_stats::Gmm::fit_auto`] over fresh samples.

use mbw_stats::Gmm;

/// Access-technology class, as coarse as the model selection needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechClass {
    /// 4G LTE.
    Lte,
    /// 5G NR.
    Nr,
    /// WiFi (any generation).
    Wifi,
}

impl TechClass {
    /// All classes in the order the paper's evaluation plots them.
    pub const ALL: [TechClass; 3] = [TechClass::Lte, TechClass::Nr, TechClass::Wifi];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TechClass::Lte => "4G",
            TechClass::Nr => "5G",
            TechClass::Wifi => "WiFi",
        }
    }

    /// The default calibrated population model (Mbps), matching the
    /// paper's Figs 18 (4G), 19 (5G) and 16 (WiFi, pooled across
    /// standards — dominated by the broadband-plan modes).
    pub fn default_model(self) -> Gmm {
        let triples: &[(f64, f64, f64)] = match self {
            // Fig 18: heavy low-rate mass, a mid mode, and the
            // LTE-Advanced tail.
            TechClass::Lte => &[
                (0.30, 8.0, 4.0),
                (0.45, 35.0, 16.0),
                (0.18, 90.0, 35.0),
                (0.07, 400.0, 95.0),
            ],
            // Fig 19: thin-refarmed-band mode near 100, main modes near
            // 280 and 420.
            TechClass::Nr => &[
                (0.14, 105.0, 30.0),
                (0.50, 280.0, 65.0),
                (0.36, 430.0, 95.0),
            ],
            // Fig 16-style plan modes at 100/300/500, plus the 2.4 GHz
            // WiFi-4 mass at ~40.
            TechClass::Wifi => &[
                (0.40, 40.0, 18.0),
                (0.30, 100.0, 25.0),
                (0.20, 300.0, 55.0),
                (0.10, 500.0, 80.0),
            ],
        };
        Gmm::from_triples(triples).expect("static models are valid")
    }
}

impl std::fmt::Display for TechClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_are_multimodal() {
        for tech in TechClass::ALL {
            let m = tech.default_model();
            assert!(m.k() >= 3, "{tech}: k = {}", m.k());
            // Modes strictly increasing and positive.
            let modes = m.modes();
            assert!(modes[0] > 0.0);
            for w in modes.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn model_means_match_population_scale() {
        // 4G mean ~53, 5G ~303, WiFi ~137 (§3).
        let lte = TechClass::Lte.default_model().mean();
        assert!((lte - 53.0).abs() < 15.0, "4G {lte}");
        let nr = TechClass::Nr.default_model().mean();
        assert!((nr - 303.0).abs() < 40.0, "5G {nr}");
        let wifi = TechClass::Wifi.default_model().mean();
        assert!((wifi - 137.0).abs() < 30.0, "WiFi {wifi}");
    }

    #[test]
    fn probing_ladder_is_usable() {
        for tech in TechClass::ALL {
            let m = tech.default_model();
            let start = m.dominant_mode();
            assert!(start > 0.0);
            // Escalation terminates.
            let mut rate = start;
            let mut steps = 0;
            while let Some(next) = m.next_larger_mode(rate) {
                assert!(next > rate);
                rate = next;
                steps += 1;
                assert!(steps < 10);
            }
        }
    }
}
