//! Property tests over the congestion-control models and the flow
//! simulator: invariants that must hold for any path configuration.

use mobile_bandwidth::congestion::{CcAlgorithm, FlowConfig, FlowSim};
use mobile_bandwidth::netsim::{PathConfig, PathModel};
use proptest::prelude::*;
use std::time::Duration;

fn run(
    alg: CcAlgorithm,
    mbps: f64,
    rtt_ms: u64,
    loss: f64,
    seed: u64,
) -> mobile_bandwidth::congestion::FlowTrace {
    let mut cfg = PathConfig::constant(mbps * 1e6, Duration::from_millis(rtt_ms));
    cfg.loss_prob = loss;
    cfg.seed = seed;
    FlowSim::run(
        PathModel::new(cfg),
        alg.build(),
        FlowConfig {
            max_duration: Duration::from_secs(8),
            seed: seed ^ 0xCC,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn goodput_never_exceeds_capacity(
        mbps in 10.0f64..800.0,
        rtt_ms in 10u64..120,
        loss in 0.0f64..0.01,
        seed in 0u64..500,
    ) {
        for alg in CcAlgorithm::ALL {
            let trace = run(alg, mbps, rtt_ms, loss, seed);
            for s in &trace.samples {
                prop_assert!(
                    s.bps <= mbps * 1e6 * 1.02,
                    "{alg}: {:.1} Mbps sample on a {mbps:.1} Mbps link",
                    s.bps / 1e6
                );
            }
            prop_assert!(trace.bytes_delivered <= trace.bytes_sent + 1.0);
        }
    }

    #[test]
    fn clean_paths_deliver_meaningful_goodput(
        mbps in 20.0f64..400.0,
        rtt_ms in 10u64..80,
        seed in 0u64..200,
    ) {
        // Per-algorithm floors: Cubic can spend 10+ seconds crawling up
        // the cubic polynomial after a spurious HyStart exit (the Fig 17
        // pathology — on a 380 Mbps × 38 ms path its worst case is ~10%
        // of capacity by 8 s), Reno halves once and climbs linearly, BBR
        // has no such pathology and must be near capacity.
        for (alg, floor) in [
            (CcAlgorithm::Cubic, 0.04),
            (CcAlgorithm::Reno, 0.25),
            (CcAlgorithm::Bbr, 0.70),
        ] {
            let trace = run(alg, mbps, rtt_ms, 0.0, seed);
            let late = trace.mean_bps_after(Duration::from_secs(5));
            prop_assert!(
                late > mbps * 1e6 * floor,
                "{alg}: only {:.1} of {mbps:.1} Mbps late in the flow",
                late / 1e6
            );
        }
    }

    #[test]
    fn loss_free_runs_report_no_loss_rounds(
        mbps in 20.0f64..200.0,
        rtt_ms in 10u64..60,
        seed in 0u64..100,
    ) {
        // BBR and Reno/Cubic may overflow the buffer during ramp-up, so
        // only the post-ramp claim is universal: with zero wireless loss
        // the only losses are congestion losses, bounded by the ramp.
        for alg in CcAlgorithm::ALL {
            let trace = run(alg, mbps, rtt_ms, 0.0, seed);
            prop_assert!(
                trace.loss_rounds < 40,
                "{alg}: {} loss rounds on a clean path",
                trace.loss_rounds
            );
        }
    }

    #[test]
    fn slow_start_exit_happens_on_every_run(
        mbps in 30.0f64..500.0,
        rtt_ms in 10u64..80,
        seed in 0u64..100,
    ) {
        for alg in CcAlgorithm::ALL {
            let trace = run(alg, mbps, rtt_ms, 0.0, seed);
            prop_assert!(
                trace.slow_start_exit.is_some(),
                "{alg} never left slow start in 8 s"
            );
        }
    }
}
