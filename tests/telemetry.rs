//! Cross-crate observability: harness runs produce deterministic probe
//! timelines, and simulator counters land in a registry that renders
//! valid Prometheus text.

use mobile_bandwidth::core::{BtsKind, TechClass, TestHarness};
use mobile_bandwidth::netsim::{Link, LinkConfig, SimTime};
use mobile_bandwidth::telemetry::Registry;

#[test]
fn fixed_seed_harness_timelines_serialise_byte_identically() {
    for tech in TechClass::ALL {
        let h = TestHarness::new(tech);
        let a = h.run(BtsKind::Swiftest, 1234).timeline.to_json();
        let b = h.run(BtsKind::Swiftest, 1234).timeline.to_json();
        assert_eq!(a, b, "{}: timeline JSON not reproducible", tech.name());
        assert!(
            a.contains("\"kind\":\"sample\""),
            "{}: no samples recorded",
            tech.name()
        );
        assert!(
            a.contains("\"summary\""),
            "{}: timeline never finished",
            tech.name()
        );
    }
}

#[test]
fn timeline_meta_identifies_the_run() {
    let h = TestHarness::new(TechClass::Lte);
    let o = h.run(BtsKind::Swiftest, 9);
    let meta = o.timeline.meta();
    assert_eq!(meta.get("kind").map(String::as_str), Some("Swiftest"));
    assert_eq!(meta.get("tech").map(String::as_str), Some("4G"));
    assert_eq!(meta.get("prober").map(String::as_str), Some("swiftest-udp"));
    assert!(meta.contains_key("run_seed") && meta.contains_key("truth_mbps"));
}

#[test]
fn simulator_counters_render_as_prometheus_text() {
    let registry = Registry::new();
    let mut link = Link::new(LinkConfig {
        rate_bps: 100e6,
        ..Default::default()
    });
    for i in 0..50 {
        link.send(SimTime::from_millis(i * 10), 1500);
    }
    link.stats().publish_to(&registry, "downlink");
    let text = registry.render_prometheus();
    assert!(
        text.contains("# TYPE netsim_link_delivered_packets gauge"),
        "{text}"
    );
    assert!(text.contains("{link=\"downlink\"}"), "{text}");
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        assert_eq!(line.split(' ').count(), 2, "bad exposition line {line:?}");
    }
}
