//! Cross-crate wire integration: the dataset-fitted model driving a
//! *real* UDP test over localhost, and protocol behaviour under load.

use mobile_bandwidth::stats::Gmm;
use mobile_bandwidth::wire::client::spawn_local_fleet;
use mobile_bandwidth::wire::server::{ServerConfig, UdpTestServer};
use mobile_bandwidth::wire::{SwiftestClient, WireTestConfig};
use std::time::Duration;

/// A modal ladder like a fitted model would produce, scaled down so
/// loopback pacing is robust in CI.
fn ladder() -> Gmm {
    Gmm::from_triples(&[(0.55, 8.0, 1.5), (0.30, 24.0, 4.0), (0.15, 48.0, 6.0)])
        .expect("valid model")
}

#[tokio::test(flavor = "multi_thread")]
async fn wire_test_measures_emulated_link_within_tolerance() {
    let cap_bps = 16_000_000u64;
    let (servers, addrs) = spawn_local_fleet(3, Some(cap_bps)).await.expect("fleet");
    let client = SwiftestClient::new(ladder(), WireTestConfig::default());
    let report = client.measure(&addrs).await.expect("test runs");
    assert!(
        (report.estimate_mbps - 16.0).abs() < 5.0,
        "estimate {:.1} Mbps",
        report.estimate_mbps
    );
    assert!(report.duration < Duration::from_secs(5));
    assert!(!report.samples.is_empty());
    for s in servers {
        s.shutdown().await;
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn two_sequential_tests_agree() {
    // The wire analogue of the paper's back-to-back protocol: the same
    // emulated link measured twice should deviate little.
    let cap_bps = 12_000_000u64;
    let (servers, addrs) = spawn_local_fleet(2, Some(cap_bps)).await.expect("fleet");
    let client = SwiftestClient::new(ladder(), WireTestConfig::default());
    let a = client.measure(&addrs).await.expect("first test");
    tokio::time::sleep(Duration::from_millis(200)).await;
    let b = client.measure(&addrs).await.expect("second test");
    let dev = (a.estimate_mbps - b.estimate_mbps).abs() / a.estimate_mbps.max(b.estimate_mbps);
    assert!(
        dev < 0.25,
        "deviation {dev:.2} ({} vs {})",
        a.estimate_mbps,
        b.estimate_mbps
    );
    for s in servers {
        s.shutdown().await;
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn metrics_scrape_during_a_live_test_shows_the_session() {
    use std::io::{Read as _, Write as _};
    let server = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..Default::default()
    })
    .await
    .expect("server");
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics listener");

    // Run the test in the background and scrape mid-flight.
    let probe = tokio::spawn(async move {
        let client = SwiftestClient::new(ladder(), WireTestConfig::default());
        client.measure(&[addr]).await
    });
    // 300 ms in: convergence needs ten 50 ms samples, so the session is
    // necessarily still live when the scrape lands.
    tokio::time::sleep(Duration::from_millis(300)).await;
    let body = tokio::task::spawn_blocking(move || {
        let mut s = std::net::TcpStream::connect(metrics_addr).expect("connect scraper");
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send request");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    })
    .await
    .expect("join scraper");
    let report = probe.await.expect("join probe").expect("test runs");
    assert!(report.estimate_mbps > 1.0);

    // Valid Prometheus text exposition, captured while the session was
    // live: content type, HELP/TYPE comments, `name value` samples.
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("text/plain; version=0.0.4"), "{body}");
    let text = body.split("\r\n\r\n").nth(1).expect("response body");
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        assert_eq!(line.split(' ').count(), 2, "bad exposition line {line:?}");
    }
    let value = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.split(' ').next() == Some(name))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
    };
    assert!(value("swiftest_server_sessions_started_total") >= 1.0);
    assert!(value("swiftest_server_sessions_active") >= 1.0);
    assert!(value("swiftest_server_tx_bytes_total") > 0.0);
    assert!(value("swiftest_server_rx_datagrams_total") > 0.0);
    server.shutdown().await;
}

#[tokio::test(flavor = "multi_thread")]
async fn concurrent_clients_share_one_server() {
    let (servers, addrs) = spawn_local_fleet(1, Some(30_000_000)).await.expect("fleet");
    let addr = addrs[0];
    let mut handles = Vec::new();
    for _ in 0..3 {
        let addrs = vec![addr];
        handles.push(tokio::spawn(async move {
            let client = SwiftestClient::new(ladder(), WireTestConfig::default());
            client.measure(&addrs).await
        }));
    }
    for h in handles {
        let report = h.await.expect("join").expect("test runs");
        assert!(report.estimate_mbps > 1.0);
    }
    for s in servers {
        s.shutdown().await;
    }
}
