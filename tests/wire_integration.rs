//! Cross-crate wire integration: the dataset-fitted model driving a
//! *real* UDP test over localhost, and protocol behaviour under load.

use mobile_bandwidth::stats::Gmm;
use mobile_bandwidth::wire::client::spawn_local_fleet;
use mobile_bandwidth::wire::{SwiftestClient, WireTestConfig};
use std::time::Duration;

/// A modal ladder like a fitted model would produce, scaled down so
/// loopback pacing is robust in CI.
fn ladder() -> Gmm {
    Gmm::from_triples(&[(0.55, 8.0, 1.5), (0.30, 24.0, 4.0), (0.15, 48.0, 6.0)])
        .expect("valid model")
}

#[tokio::test(flavor = "multi_thread")]
async fn wire_test_measures_emulated_link_within_tolerance() {
    let cap_bps = 16_000_000u64;
    let (servers, addrs) = spawn_local_fleet(3, Some(cap_bps)).await.expect("fleet");
    let client = SwiftestClient::new(ladder(), WireTestConfig::default());
    let report = client.measure(&addrs).await.expect("test runs");
    assert!(
        (report.estimate_mbps - 16.0).abs() < 5.0,
        "estimate {:.1} Mbps",
        report.estimate_mbps
    );
    assert!(report.duration < Duration::from_secs(5));
    assert!(!report.samples.is_empty());
    for s in servers {
        s.shutdown().await;
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn two_sequential_tests_agree() {
    // The wire analogue of the paper's back-to-back protocol: the same
    // emulated link measured twice should deviate little.
    let cap_bps = 12_000_000u64;
    let (servers, addrs) = spawn_local_fleet(2, Some(cap_bps)).await.expect("fleet");
    let client = SwiftestClient::new(ladder(), WireTestConfig::default());
    let a = client.measure(&addrs).await.expect("first test");
    tokio::time::sleep(Duration::from_millis(200)).await;
    let b = client.measure(&addrs).await.expect("second test");
    let dev = (a.estimate_mbps - b.estimate_mbps).abs() / a.estimate_mbps.max(b.estimate_mbps);
    assert!(dev < 0.25, "deviation {dev:.2} ({} vs {})", a.estimate_mbps, b.estimate_mbps);
    for s in servers {
        s.shutdown().await;
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn concurrent_clients_share_one_server() {
    let (servers, addrs) = spawn_local_fleet(1, Some(30_000_000)).await.expect("fleet");
    let addr = addrs[0];
    let mut handles = Vec::new();
    for _ in 0..3 {
        let addrs = vec![addr];
        handles.push(tokio::spawn(async move {
            let client = SwiftestClient::new(ladder(), WireTestConfig::default());
            client.measure(&addrs).await
        }));
    }
    for h in handles {
        let report = h.await.expect("join").expect("test runs");
        assert!(report.estimate_mbps > 1.0);
    }
    for s in servers {
        s.shutdown().await;
    }
}
