//! Cross-validation of the two network-model layers.
//!
//! The BTS layer runs on the *fluid* path model (`integrate_paced`,
//! round-based flows); the packet-level [`Link`] is the ground-truth
//! primitive. These tests check the two agree where their domains
//! overlap, which is what licenses using the cheap fluid model for the
//! evaluation figures.

use mobile_bandwidth::netsim::{Link, LinkConfig, PathConfig, PathModel, SimTime, TokenBucket};
use std::time::Duration;

/// Send a paced stream through the packet-level link and measure
/// delivered goodput.
fn packet_level_goodput(rate_bps: f64, cap_bps: f64, secs: f64, loss: f64, seed: u64) -> f64 {
    let mut link = Link::new(LinkConfig {
        rate_bps: cap_bps,
        propagation: Duration::from_millis(5),
        queue_limit_bytes: 256 * 1024,
        loss_prob: loss,
        seed,
    });
    let mut pacer = TokenBucket::new(rate_bps, 3_000.0);
    let pkt = 1500u64;
    let mut t = SimTime::ZERO;
    let end = SimTime::from_secs_f64(secs);
    while t < end {
        t = pacer.consume_paced(t, pkt as f64);
        if t >= end {
            break;
        }
        link.send(t, pkt);
    }
    link.stats().delivered_bytes as f64 * 8.0 / secs
}

/// The fluid model's answer to the same question.
fn fluid_goodput(rate_bps: f64, cap_bps: f64, secs: f64, loss: f64) -> f64 {
    let mut cfg = PathConfig::constant(cap_bps, Duration::from_millis(10));
    cfg.loss_prob = loss;
    let mut path = PathModel::new(cfg);
    let samples = path.integrate_paced(
        SimTime::ZERO,
        Duration::from_secs_f64(secs),
        Duration::from_millis(50),
        rate_bps,
    );
    samples.iter().map(|s| s.delivered_bytes).sum::<f64>() * 8.0 / secs
}

#[test]
fn fluid_and_packet_models_agree_below_capacity() {
    for &(rate, cap) in &[(20e6, 100e6), (50e6, 100e6), (90e6, 100e6)] {
        let pkt = packet_level_goodput(rate, cap, 5.0, 0.0, 1);
        let fluid = fluid_goodput(rate, cap, 5.0, 0.0);
        let diff = (pkt - fluid).abs() / fluid;
        assert!(diff < 0.03, "rate {rate}: packet {pkt} vs fluid {fluid}");
    }
}

#[test]
fn fluid_and_packet_models_agree_at_saturation() {
    // Offered 200 Mbps into a 100 Mbps link: both models should deliver
    // ~100 Mbps (packet model loses a little to queue-drop granularity).
    let pkt = packet_level_goodput(200e6, 100e6, 5.0, 0.0, 2);
    let fluid = fluid_goodput(200e6, 100e6, 5.0, 0.0);
    assert!((fluid - 100e6).abs() / 100e6 < 0.01, "fluid {fluid}");
    assert!((pkt - 100e6).abs() / 100e6 < 0.05, "packet {pkt}");
}

#[test]
fn loss_discounts_both_models_equally() {
    let loss = 0.02;
    let pkt = packet_level_goodput(50e6, 100e6, 5.0, loss, 3);
    let fluid = fluid_goodput(50e6, 100e6, 5.0, loss);
    let diff = (pkt - fluid).abs() / fluid;
    assert!(diff < 0.04, "packet {pkt} vs fluid {fluid}");
}

#[test]
fn packet_model_shows_queueing_delay_the_fluid_model_abstracts() {
    // At saturation the drop-tail queue fills: the packet model must
    // report a standing queueing delay close to the configured limit.
    let mut link = Link::new(LinkConfig {
        rate_bps: 50e6,
        propagation: Duration::ZERO,
        queue_limit_bytes: 64 * 1024,
        loss_prob: 0.0,
        seed: 4,
    });
    let mut t = SimTime::ZERO;
    for _ in 0..10_000 {
        link.send(t, 1500);
        t = t + Duration::from_micros(100); // 120 Mbps offered
    }
    let delay = link.queueing_delay(t);
    let expected = 64.0 * 1024.0 * 8.0 / 50e6; // ≈ 10.5 ms
    assert!(
        (delay.as_secs_f64() - expected).abs() < expected * 0.25,
        "queueing delay {delay:?} vs expected {expected}s"
    );
}
