//! Chaos suite: fault injection against both the simulated harness and
//! the real-socket wire stack.
//!
//! Five fault classes, each exercised end to end:
//!
//! 1. **Blackout** — `FaultPlan`/`FaultInjection` windows in the
//!    simulator; `FaultyLink::set_blackout` on real sockets.
//! 2. **Burst loss** — `FaultKind::BurstLoss` windows in the simulator;
//!    a lossy `FaultyLink` on real sockets.
//! 3. **Server stall** — `StallServer`, the fleet member that answers
//!    PINGs but never paces a byte.
//! 4. **Malformed datagrams** — garbage, truncated, and oversized frames
//!    blasted at a serving `UdpTestServer` mid-test.
//! 5. **Server restart mid-session** — the serving instance dies hard
//!    and comes back on the same address with the same results log; the
//!    client rides failover onto the restarted server, and the log ends
//!    with exactly one complete record for the completed test.
//!
//! Every test is deadline-bounded (nothing may hang), nothing may panic,
//! and the simulated campaigns are bit-deterministic under a fixed seed.

use mobile_bandwidth::core::estimator::ConvergenceEstimator;
use mobile_bandwidth::core::probe::{run_swiftest, SwiftestConfig};
use mobile_bandwidth::core::{AccessScenario, FaultInjection, FluctuationClass, TechClass};
use mobile_bandwidth::netsim::{FaultKind, FaultPlan, FaultWindow, PathConfig, PathModel, SimTime};
use mobile_bandwidth::stats::Gmm;
use mobile_bandwidth::wire::{
    AdmissionConfig, FaultyLink, FaultyLinkConfig, ResultsLog, ServerConfig, SessionAuth,
    StallServer, SwiftestClient, TenantConfig, UdpTestServer, WireTestConfig,
};
use std::sync::OnceLock;
use std::time::Duration;

/// Hard ceiling on one simulated Swiftest run (the 4.5 s cap + slack).
const SIM_DEADLINE: Duration = Duration::from_millis(4_600);
/// Hard ceiling on one real-socket test, selection included.
const WIRE_DEADLINE: Duration = Duration::from_secs(8);

/// Serialises the loopback bulk-traffic tests so their pacing does not
/// contend (the test harness runs this binary's tests in parallel).
fn net_lock() -> &'static tokio::sync::Mutex<()> {
    static LOCK: OnceLock<tokio::sync::Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| tokio::sync::Mutex::new(()))
}

fn flat_path(mbps: f64, rtt_ms: u64) -> PathModel {
    PathModel::new(PathConfig::constant(
        mbps * 1e6,
        Duration::from_millis(rtt_ms),
    ))
}

/// Low modal ladder (8 → 24 → 48 Mbps) so loopback pacing is reliable.
fn wire_model() -> Gmm {
    Gmm::from_triples(&[(0.55, 8.0, 1.5), (0.30, 24.0, 4.0), (0.15, 48.0, 6.0)])
        .expect("valid model")
}

// ---------------------------------------------------------------------
// Fault class 1: blackout, simulated.
// ---------------------------------------------------------------------

#[test]
fn sim_mid_test_blackout_terminates_degraded_within_deadline() {
    let scenario = AccessScenario::default_for(TechClass::Wifi);
    let drawn = (0..100)
        .map(|seed| scenario.draw(seed))
        .find(|d| d.class == FluctuationClass::Stable)
        .expect("stable draws dominate the mix")
        .with_faults(FaultInjection::Blackout {
            start_ms: 300,
            duration_ms: 500,
        });
    let mut est = ConvergenceEstimator::swiftest();
    let r = run_swiftest(
        drawn.build(),
        &scenario.model,
        &mut est,
        &SwiftestConfig::default(),
        1,
    );
    assert!(
        r.duration <= SIM_DEADLINE,
        "blackout run overran: {:?}",
        r.duration
    );
    assert!(r.status.is_degraded(), "status {:?}", r.status);
    // The partial estimate must not be wildly off: zero windows are
    // excluded from convergence, so the estimate tracks the live phases.
    let dev = (r.estimate_mbps - drawn.truth_mbps).abs() / drawn.truth_mbps;
    assert!(
        dev < 0.3,
        "estimate {:.1} vs truth {:.1}",
        r.estimate_mbps,
        drawn.truth_mbps
    );
}

// ---------------------------------------------------------------------
// Fault class 2: burst loss (and friends), simulated.
// ---------------------------------------------------------------------

#[test]
fn sim_burst_loss_keeps_the_estimate_usable() {
    let model = TechClass::Wifi.default_model();
    let path = flat_path(100.0, 20).with_faults(FaultPlan::scripted(vec![FaultWindow {
        start: SimTime::from_millis(300),
        duration: Duration::from_millis(400),
        kind: FaultKind::BurstLoss { loss_prob: 0.25 },
    }]));
    let mut est = ConvergenceEstimator::swiftest();
    let r = run_swiftest(path, &model, &mut est, &SwiftestConfig::default(), 2);
    assert!(r.duration <= SIM_DEADLINE, "{:?}", r.duration);
    assert!(r.status.is_usable(), "status {:?}", r.status);
    assert!(
        (r.estimate_mbps - 100.0).abs() < 25.0,
        "estimate {:.1}",
        r.estimate_mbps
    );
}

#[test]
fn sim_capacity_collapse_recovers() {
    let model = TechClass::Wifi.default_model();
    // 300 ms = six sample windows, too few for the stop rule to converge
    // *inside* the collapse — the estimate must reflect the recovery.
    let path = flat_path(80.0, 20).with_faults(FaultPlan::scripted(vec![FaultWindow {
        start: SimTime::from_millis(400),
        duration: Duration::from_millis(300),
        kind: FaultKind::CapacityCollapse { factor: 0.25 },
    }]));
    let mut est = ConvergenceEstimator::swiftest();
    let r = run_swiftest(path, &model, &mut est, &SwiftestConfig::default(), 3);
    assert!(r.duration <= SIM_DEADLINE, "{:?}", r.duration);
    assert!(r.status.is_usable(), "status {:?}", r.status);
    assert!(
        (r.estimate_mbps - 80.0).abs() < 20.0,
        "estimate {:.1}",
        r.estimate_mbps
    );
}

// ---------------------------------------------------------------------
// Seeded chaos campaign: mixed fault episodes, deterministic.
// ---------------------------------------------------------------------

#[test]
fn sim_chaos_campaign_is_bounded_and_deterministic() {
    let scenario = AccessScenario::default_for(TechClass::Nr).with_fault_rate(1.0);
    let run = |seed: u64| {
        let drawn = scenario.draw(seed);
        let mut est = ConvergenceEstimator::swiftest();
        run_swiftest(
            drawn.build(),
            &scenario.model,
            &mut est,
            &SwiftestConfig::default(),
            seed,
        )
    };
    let mut imperfect = 0;
    for seed in 0..25u64 {
        let a = run(seed);
        let b = run(seed);
        assert!(a.duration <= SIM_DEADLINE, "seed {seed}: {:?}", a.duration);
        assert_eq!(
            a.estimate_mbps, b.estimate_mbps,
            "seed {seed} not deterministic"
        );
        assert_eq!(a.status, b.status, "seed {seed} status not deterministic");
        assert_eq!(
            a.duration, b.duration,
            "seed {seed} duration not deterministic"
        );
        if !a.status.is_complete() {
            imperfect += 1;
        }
    }
    // Every path carries a mobile fault-episode mix; some runs must have
    // visibly felt it (otherwise the injection is not reaching the path).
    assert!(imperfect > 0, "no run was affected by injected faults");
}

// ---------------------------------------------------------------------
// Fault class 1 again: blackout, real sockets.
// ---------------------------------------------------------------------

#[tokio::test(flavor = "multi_thread")]
async fn wire_mid_test_blackout_terminates_degraded_within_deadline() {
    let _net = net_lock().lock().await;
    let server = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        ..Default::default()
    })
    .await
    .expect("server");
    let link = FaultyLink::start(server.local_addr(), FaultyLinkConfig::default())
        .await
        .expect("proxy");
    let addr = link.local_addr();
    let task = tokio::spawn(async move {
        let client = SwiftestClient::new(wire_model(), WireTestConfig::default());
        client.measure(&[addr]).await
    });
    // Let the probe get going, then pull the plug for 250 ms — shorter
    // than the client's stall timeout, so the test resumes afterwards.
    tokio::time::sleep(Duration::from_millis(300)).await;
    link.set_blackout(true);
    tokio::time::sleep(Duration::from_millis(250)).await;
    link.set_blackout(false);

    let report = tokio::time::timeout(WIRE_DEADLINE, task)
        .await
        .expect("test must finish inside the deadline")
        .expect("join")
        .expect("a transient blackout must not fail the test");
    assert!(report.status.is_degraded(), "status {:?}", report.status);
    assert!(report.estimate_mbps > 0.0, "partial estimate expected");
    assert!(link.stats().blackout_dropped > 0, "blackout never engaged");
    link.shutdown().await;
    server.shutdown().await;
}

// ---------------------------------------------------------------------
// Fault class 2 again: burst loss, real sockets.
// ---------------------------------------------------------------------

#[tokio::test(flavor = "multi_thread")]
async fn wire_lossy_link_still_measures() {
    let _net = net_lock().lock().await;
    let server = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        ..Default::default()
    })
    .await
    .expect("server");
    // Seeded chaos: drop/dup/reorder/corrupt/delay a few percent of
    // everything, each link an independent deterministic stream. Three
    // lossy paths to the same server serve as failover candidates: the
    // initial RateRequest has no retransmission, so a seed whose first
    // upstream draw is a drop stalls that path — failover (itself under
    // test) moves to the next, and three independent streams make a
    // total wipe-out astronomically unlikely.
    let mut links = Vec::new();
    let mut order = Vec::new();
    for seed in [9u64, 10, 11] {
        let link = FaultyLink::start(server.local_addr(), FaultyLinkConfig::lossy(seed))
            .await
            .expect("proxy");
        order.push(link.local_addr());
        links.push(link);
    }
    let client = SwiftestClient::new(wire_model(), WireTestConfig::default());
    let report = tokio::time::timeout(WIRE_DEADLINE, client.measure_ranked(&order, Duration::ZERO))
        .await
        .expect("test must finish inside the deadline")
        .expect("a lossy link must not fail the test");
    assert!(
        report.estimate_mbps > 2.0 && report.estimate_mbps < 20.0,
        "estimate {:.1} Mbps through a lossy link",
        report.estimate_mbps
    );
    let total: u64 = links
        .iter()
        .map(|l| {
            let s = l.stats();
            s.dropped + s.corrupted + s.duplicated
        })
        .sum();
    assert!(total > 0, "chaos never engaged");
    for link in links {
        link.shutdown().await;
    }
    server.shutdown().await;
}

// ---------------------------------------------------------------------
// Fault class 3: server stall + failover, real sockets.
// ---------------------------------------------------------------------

#[tokio::test(flavor = "multi_thread")]
async fn wire_stalling_server_fails_over_and_flags_degraded() {
    let _net = net_lock().lock().await;
    let stall = StallServer::start().await.expect("stall server");
    let live = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        ..Default::default()
    })
    .await
    .expect("server");
    let client = SwiftestClient::new(wire_model(), WireTestConfig::default());
    // Scripted preference order: the stalling server ranks first.
    let order = vec![stall.local_addr(), live.local_addr()];
    let report = tokio::time::timeout(WIRE_DEADLINE, client.measure_ranked(&order, Duration::ZERO))
        .await
        .expect("failover must finish inside the deadline")
        .expect("the live server should rescue the test");
    assert_eq!(report.failovers, 1);
    assert_eq!(report.server, live.local_addr());
    assert!(report.status.is_degraded(), "status {:?}", report.status);
    assert!(
        report.estimate_mbps > 2.0,
        "estimate {:.1}",
        report.estimate_mbps
    );
    stall.shutdown().await;
    live.shutdown().await;
}

// ---------------------------------------------------------------------
// Fault class 5: server restart mid-session, real sockets.
// ---------------------------------------------------------------------

#[tokio::test(flavor = "multi_thread")]
async fn wire_server_restart_mid_session_fails_over_to_the_restarted_server() {
    let _net = net_lock().lock().await;
    let mut log_path = std::env::temp_dir();
    log_path.push(format!("mbw-chaos-restart-{}.reslog", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let admission =
        || Some(AdmissionConfig::open(16).with_tenants(vec![TenantConfig::new(7, 0x5EC12E7)]));
    let first = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        admission: admission(),
        results_log: Some(log_path.clone()),
        ..Default::default()
    })
    .await
    .expect("first server");
    let addr = first.local_addr();

    let task = tokio::spawn(async move {
        let client = SwiftestClient::new(
            wire_model(),
            WireTestConfig {
                auth: Some(SessionAuth {
                    tenant: 7,
                    token: 0x5EC12E7,
                }),
                ..WireTestConfig::default()
            },
        );
        // The same address twice: the "next-best server" after the
        // restart is the restarted instance itself.
        client.measure_ranked(&[addr, addr], Duration::ZERO).await
    });

    // Mid-probe, take the server down hard and bring a fresh instance
    // up on the same address with the same results log.
    tokio::time::sleep(Duration::from_millis(300)).await;
    first.shutdown().await;
    let second = UdpTestServer::start(ServerConfig {
        bind: addr,
        emulated_capacity_bps: Some(10_000_000),
        admission: admission(),
        results_log: Some(log_path.clone()),
        ..Default::default()
    })
    .await
    .expect("restarted server on the same address");
    // Restart recovery must replay the aborted session the first
    // instance logged on shutdown.
    let replayed = second.log_recovery().expect("log configured");
    assert_eq!(replayed.records.len(), 1, "{replayed:?}");
    assert!(
        !replayed.records[0].complete,
        "aborted session logged complete"
    );
    assert!(replayed.clean(), "shutdown left a torn log: {replayed:?}");

    let report = tokio::time::timeout(WIRE_DEADLINE, task)
        .await
        .expect("failover must finish inside the deadline")
        .expect("join")
        .expect("the restarted server should rescue the test");
    assert_eq!(report.failovers, 1);
    assert_eq!(report.server, addr);
    assert!(report.status.is_degraded(), "status {:?}", report.status);
    assert!(
        report.estimate_mbps > 2.0,
        "estimate {:.1}",
        report.estimate_mbps
    );

    second.shutdown().await;
    // The completed test left exactly one complete record; the aborted
    // first half is on file as incomplete.
    let recovery = ResultsLog::read_all(&log_path).expect("read results log");
    assert!(recovery.clean(), "{recovery:?}");
    let complete: Vec<_> = recovery.records.iter().filter(|r| r.complete).collect();
    assert_eq!(
        complete.len(),
        1,
        "expected exactly one complete record: {:?}",
        recovery.records
    );
    assert_eq!(complete[0].tenant, 7);
    assert!(complete[0].estimate_mbps > 2.0);
    let _ = std::fs::remove_file(&log_path);
}

// ---------------------------------------------------------------------
// Fault class 4: malformed datagrams, real sockets.
// ---------------------------------------------------------------------

#[tokio::test(flavor = "multi_thread")]
async fn wire_garbage_blast_does_not_disturb_a_running_test() {
    let _net = net_lock().lock().await;
    let server = UdpTestServer::start(ServerConfig {
        emulated_capacity_bps: Some(10_000_000),
        ..Default::default()
    })
    .await
    .expect("server");
    let addr = server.local_addr();
    let task = tokio::spawn(async move {
        let client = SwiftestClient::new(wire_model(), WireTestConfig::default());
        client.measure(&[addr]).await
    });
    tokio::time::sleep(Duration::from_millis(100)).await;

    // Attack traffic: wrong magic, bare magic, bad tag, truncated PING,
    // and an oversized frame — all while the legitimate test runs.
    let attacker = tokio::net::UdpSocket::bind("127.0.0.1:0")
        .await
        .expect("bind");
    let wrong_magic = [0x00u8, 0x01, 0x02];
    let bare_magic = [0xB7u8];
    let bad_tag = [0xB7u8, 0xFF, 0, 0];
    let truncated_ping = [0xB7u8, 0x01];
    let oversized = [0xB7u8; 4096];
    let frames: [&[u8]; 5] = [
        &wrong_magic,
        &bare_magic,
        &bad_tag,
        &truncated_ping,
        &oversized,
    ];
    for _ in 0..40 {
        for f in frames {
            let _ = attacker.send_to(f, addr).await;
        }
        // Pace the blast so the server's receive queue drains between
        // rounds — the point is malformed input, not queue overflow.
        tokio::time::sleep(Duration::from_millis(2)).await;
    }

    let report = tokio::time::timeout(WIRE_DEADLINE, task)
        .await
        .expect("test must finish inside the deadline")
        .expect("join")
        .expect("garbage at the server must not fail a legitimate test");
    assert!(
        report.estimate_mbps > 2.0 && report.estimate_mbps < 20.0,
        "estimate {:.1} Mbps under attack",
        report.estimate_mbps
    );
    let stats = server.stats();
    assert!(
        stats.malformed >= 50,
        "malformed counted: {}",
        stats.malformed
    );
    assert!(
        stats.oversized >= 10,
        "oversized counted: {}",
        stats.oversized
    );
    server.shutdown().await;
}
