//! Adversarial sample patterns against the estimators: the network
//! pathologies §5.3 describes (severe fluctuation, traffic shaping,
//! sudden drops) expressed as crafted sample streams.

use mobile_bandwidth::core::estimator::{
    BandwidthEstimator, ConvergenceEstimator, CrucialIntervalEstimator, EstimatorDecision,
    GroupedTrimmedMean,
};

fn feed(est: &mut dyn BandwidthEstimator, samples: &[f64]) -> Option<f64> {
    for &s in samples {
        if let EstimatorDecision::Done(v) = est.push(s) {
            return Some(v);
        }
    }
    None
}

/// On/off traffic shaping: 500 ms at 100 Mbps, 500 ms at 20 Mbps.
fn shaped_stream(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if (i / 10) % 2 == 0 { 100.0 } else { 20.0 })
        .collect()
}

#[test]
fn convergence_never_fires_on_a_shaping_pattern() {
    // The 3%-over-10-samples rule straddles the shaping period (10
    // samples = 500 ms = exactly one phase), so the window always sees
    // both levels except precisely at phase boundaries — and those
    // windows still span a transition. The estimator must keep probing
    // and let the deadline + finalize() handle it.
    let mut est = ConvergenceEstimator::swiftest();
    let result = feed(&mut est, &shaped_stream(200));
    // Either it never converges (good), or — if a pure-phase window
    // slips through — the result must be one of the two plateau levels,
    // not something in between.
    if let Some(v) = result {
        assert!(
            (v - 100.0).abs() < 3.0 || (v - 20.0).abs() < 1.0,
            "converged between the shaping levels: {v}"
        );
    }
}

#[test]
fn grouped_trimmed_mean_absorbs_shaping_into_an_average() {
    // BTS-APP's 10-second window sees many shaping periods; the grouped
    // trimmed mean lands between the levels — which is why the paper's
    // shaped links show >30% deviations between BTSes with different
    // windows.
    let mut est = GroupedTrimmedMean::bts_app();
    let v = feed(&mut est, &shaped_stream(200)).expect("200 samples complete");
    assert!(
        v > 25.0 && v < 95.0,
        "trimmed mean {v} should sit between the levels"
    );
}

#[test]
fn sudden_capacity_drop_moves_the_convergence_window() {
    // 300 Mbps for 2 s, then the link collapses to 30 Mbps (handover).
    let mut samples = vec![300.0; 40];
    samples.extend(std::iter::repeat(30.0).take(40));
    let mut est = ConvergenceEstimator::swiftest();
    // It converges on the *first* plateau — by design: a 1-second test
    // reports what the link did during the test.
    let v = feed(&mut est, &samples).expect("first plateau converges");
    assert!((v - 300.0).abs() < 5.0);
}

#[test]
fn crucial_interval_picks_the_majority_plateau() {
    // Interleaved 1/3 at 200, 2/3 at 60 (a flapping dual-carrier link):
    // density×quantity favours the bigger cluster.
    let samples: Vec<f64> = (0..60)
        .map(|i| if i % 3 == 0 { 200.0 } else { 60.0 })
        .collect();
    let mut est = CrucialIntervalEstimator::fastbts();
    let v = feed(&mut est, &samples)
        .or_else(|| est.finalize())
        .expect("samples present");
    assert!((v - 60.0).abs() < 10.0, "crucial interval {v}");
}

#[test]
fn single_spike_does_not_move_any_estimator() {
    let mut base = vec![100.0; 30];
    base[15] = 900.0; // one spurious spike
    let mut grouped = GroupedTrimmedMean::new(6, 5, 1, 1);
    let g = feed(&mut grouped, &base)
        .or_else(|| grouped.finalize())
        .unwrap();
    assert!((g - 100.0).abs() < 8.0, "grouped {g}");

    let mut conv = ConvergenceEstimator::swiftest();
    let c = feed(&mut conv, &base).unwrap();
    assert!((c - 100.0).abs() < 2.0, "convergence {c}");

    let mut ci = CrucialIntervalEstimator::fastbts();
    let i = feed(&mut ci, &base).or_else(|| ci.finalize()).unwrap();
    assert!((i - 100.0).abs() < 5.0, "crucial interval {i}");
}

#[test]
fn zero_bandwidth_streams_are_survivable() {
    // A dead link: all samples zero. Estimators must terminate/finalize
    // without NaN or panic.
    let zeros = vec![0.0; 200];
    let mut grouped = GroupedTrimmedMean::bts_app();
    let g = feed(&mut grouped, &zeros)
        .or_else(|| grouped.finalize())
        .unwrap();
    assert_eq!(g, 0.0);
    let mut conv = ConvergenceEstimator::swiftest();
    // max == 0 → the 3% rule cannot fire; finalize reports 0.
    assert_eq!(feed(&mut conv, &zeros), None);
    assert_eq!(conv.finalize(), Some(0.0));
}

#[test]
fn slowly_draining_link_is_not_mistaken_for_convergence() {
    // A 1%-per-sample decay: each 10-sample window spans ~9.6% — above
    // the 3% tolerance, so the estimator must keep waiting.
    let samples: Vec<f64> = (0..100).map(|i| 300.0 * 0.99f64.powi(i)).collect();
    let mut est = ConvergenceEstimator::swiftest();
    assert_eq!(
        feed(&mut est, &samples),
        None,
        "decay mistaken for convergence"
    );
}
