//! The full Swiftest pipeline, crossing every crate boundary:
//! generate measurement data → fit the multi-modal bandwidth model →
//! probe simulated links with it → verify the paper's speed/accuracy
//! claims hold with the *fitted* (not hand-written) model.
//!
//! This is exactly the production loop §5.1 describes: "by updating the
//! statistical model periodically, we can leverage it to guide the
//! selection of the initial data rate".

use mobile_bandwidth::core::estimator::ConvergenceEstimator;
use mobile_bandwidth::core::probe::{run_swiftest, SwiftestConfig};
use mobile_bandwidth::core::{AccessScenario, BtsKind, TechClass, TestHarness};
use mobile_bandwidth::dataset::{AccessTech, DatasetConfig, Generator, Year};
use mobile_bandwidth::stats::{descriptive, Gmm};
use std::time::Duration;

/// Fit a 5G bandwidth model from generated measurement records.
fn fitted_5g_model() -> Gmm {
    let records = Generator::new(DatasetConfig {
        seed: 0xE2E,
        tests: 200_000,
        year: Year::Y2021,
        ..Default::default()
    })
    .generate();
    let bw: Vec<f64> = records
        .iter()
        .filter(|r| r.tech == AccessTech::Cellular5g && r.outcome.is_usable())
        .map(|r| r.bandwidth_mbps)
        .collect();
    assert!(bw.len() > 5_000, "enough 5G records to fit from");
    Gmm::fit_auto(&bw, 5, 0xF17).expect("model fits")
}

#[test]
fn dataset_fitted_model_drives_fast_accurate_probing() {
    let model = fitted_5g_model();
    assert!(model.k() >= 2, "5G population is multi-modal (Fig 19)");

    // Probe fresh simulated 5G links with the fitted model.
    let scenario = AccessScenario {
        model: model.clone(),
        ..AccessScenario::default_for(TechClass::Nr)
    };
    let mut durations = Vec::new();
    let mut accuracy = Vec::new();
    for i in 0..40u64 {
        let drawn = scenario.draw(0xAB0 + i * 7);
        let mut est = ConvergenceEstimator::swiftest();
        let r = run_swiftest(
            drawn.build(),
            &model,
            &mut est,
            &SwiftestConfig::default(),
            i,
        );
        durations.push(r.duration.as_secs_f64());
        accuracy.push(1.0 - descriptive::relative_deviation(r.estimate_mbps, drawn.truth_mbps));
    }
    let mean_duration = descriptive::mean(&durations);
    let mean_accuracy = descriptive::mean(&accuracy);
    assert!(
        mean_duration < 2.0,
        "fitted model keeps tests around a second: {mean_duration}"
    );
    assert!(
        mean_accuracy > 0.85,
        "fitted model stays accurate: {mean_accuracy}"
    );
}

#[test]
fn headline_claims_hold_per_technology() {
    // §5.3's three headline numbers, checked end to end on the default
    // harness: ~1 s tests, ~8x data reduction, ~5% deviation.
    for tech in TechClass::ALL {
        let harness = TestHarness::new(tech);
        let mut durations = Vec::new();
        let mut ratios = Vec::new();
        let mut deviations = Vec::new();
        for i in 0..25u64 {
            let pair = harness.back_to_back(BtsKind::Swiftest, BtsKind::BtsApp, 0xE20 + i);
            durations.push(pair.first.total_duration().as_secs_f64());
            ratios.push(pair.second.data_bytes / pair.first.data_bytes.max(1.0));
            deviations.push(pair.deviation());
        }
        let dur = descriptive::mean(&durations);
        let ratio = descriptive::mean(&ratios);
        let dev = descriptive::mean(&deviations);
        assert!(dur < 2.5, "{tech}: Swiftest total duration {dur}");
        assert!(ratio > 3.0, "{tech}: data reduction {ratio}");
        assert!(dev < 0.15, "{tech}: deviation {dev}");
    }
}

#[test]
fn bts_app_remains_the_ten_second_reference() {
    let harness = TestHarness::new(TechClass::Wifi);
    for seed in [1u64, 2, 3] {
        let o = harness.run(BtsKind::BtsApp, seed);
        assert!(o.duration >= Duration::from_millis(9_900));
        assert!(o.duration < Duration::from_millis(11_000));
    }
}
