//! Property-based tests over the public API (proptest).
//!
//! Invariants that must hold for *any* input, not just the calibrated
//! configurations: estimator results stay within the sample range,
//! mixtures integrate to one, ILP plans always cover demand within
//! stock, ECDFs are monotone, token buckets never exceed their rate.

use mobile_bandwidth::core::estimator::{
    BandwidthEstimator, ConvergenceEstimator, EstimatorDecision, GroupedTrimmedMean,
};
use mobile_bandwidth::deploy::{solve_greedy, solve_ilp, PurchaseProblem, ServerOffer};
use mobile_bandwidth::netsim::{SimTime, TokenBucket};
use mobile_bandwidth::stats::{descriptive, Ecdf, Gmm, SeededRng};
use proptest::prelude::*;

fn positive_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..2000.0, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimators_stay_within_sample_range(samples in positive_samples()) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0, f64::max);
        let mut estimators: Vec<Box<dyn BandwidthEstimator>> = vec![
            Box::new(GroupedTrimmedMean::bts_app()),
            Box::new(ConvergenceEstimator::swiftest()),
        ];
        for est in &mut estimators {
            let mut result = None;
            for &s in &samples {
                if let EstimatorDecision::Done(v) = est.push(s) {
                    result = Some(v);
                    break;
                }
            }
            let v = result.or_else(|| est.finalize()).expect("non-empty input");
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9,
                "{}: {v} outside [{lo}, {hi}]", est.name());
        }
    }

    #[test]
    fn convergence_done_means_tail_really_converged(
        samples in prop::collection::vec(1.0f64..500.0, 10..100)
    ) {
        let mut est = ConvergenceEstimator::swiftest();
        for &s in &samples {
            if let EstimatorDecision::Done(v) = est.push(s) {
                // The last 10 samples must genuinely sit within 3%.
                let n = est.len();
                let tail = &samples[n - 10..n];
                let max = tail.iter().cloned().fold(0.0, f64::max);
                let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!((max - min) / max <= 0.03 + 1e-12);
                prop_assert!((v - descriptive::mean(tail)).abs() < 1e-9);
                return Ok(());
            }
        }
    }

    #[test]
    fn gmm_sampling_matches_cdf(
        w1 in 0.1f64..0.9,
        mu1 in 10.0f64..200.0,
        mu2 in 250.0f64..900.0,
        sigma in 5.0f64..50.0,
        seed in 0u64..1000,
    ) {
        let g = Gmm::from_triples(&[(w1, mu1, sigma), (1.0 - w1, mu2, sigma)]).unwrap();
        let mut rng = SeededRng::new(seed);
        let samples = g.sample_n(&mut rng, 4000);
        // Empirical CDF tracks the analytic CDF at the midpoint.
        let mid = (mu1 + mu2) / 2.0;
        let empirical = samples.iter().filter(|&&x| x <= mid).count() as f64 / 4000.0;
        let analytic = g.cdf(mid);
        prop_assert!((empirical - analytic).abs() < 0.05,
            "empirical {empirical} vs analytic {analytic}");
    }

    #[test]
    fn gmm_mean_is_weighted_mode_mean(
        triples in prop::collection::vec(
            (0.05f64..1.0, 1.0f64..1000.0, 1.0f64..100.0), 1..5)
    ) {
        let g = Gmm::from_triples(&triples).unwrap();
        let total_w: f64 = triples.iter().map(|t| t.0).sum();
        let want: f64 = triples.iter().map(|t| t.0 / total_w * t.1).sum();
        prop_assert!((g.mean() - want).abs() < 1e-6);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(samples in positive_samples()) {
        let e = Ecdf::new(&samples);
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 * 40.0;
            let f = e.eval(x);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn percentiles_are_order_statistics(samples in positive_samples()) {
        let p50 = descriptive::percentile(&samples, 50.0);
        let p90 = descriptive::percentile(&samples, 90.0);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0, f64::max);
        prop_assert!(p50 <= p90 + 1e-12);
        prop_assert!(p50 >= lo - 1e-12 && p90 <= hi + 1e-12);
    }

    #[test]
    fn ilp_plans_cover_demand_within_stock(
        offers in prop::collection::vec(
            (50u32..2000, 5.0f64..500.0, 1u32..20), 1..12),
        demand in 100.0f64..5000.0,
    ) {
        let offers: Vec<ServerOffer> = offers
            .iter()
            .enumerate()
            .map(|(i, &(bw, price, avail))| ServerOffer {
                id: i as u32,
                bandwidth_mbps: bw as f64,
                price,
                available: avail,
            })
            .collect();
        let problem = PurchaseProblem { offers: offers.clone(), demand_mbps: demand, margin: 0.05 };
        match (solve_ilp(&problem), solve_greedy(&problem)) {
            (Ok(ilp), Ok(greedy)) => {
                prop_assert!(ilp.total_bandwidth_mbps >= demand * 1.05 - 1e-6);
                prop_assert!(ilp.total_cost <= greedy.total_cost + 1e-6);
                for (id, n) in &ilp.purchases {
                    let offer = offers.iter().find(|o| o.id == *id).unwrap();
                    prop_assert!(*n <= offer.available);
                }
            }
            (Err(_), Err(_)) => {} // both agree the market is too small
            (a, b) => prop_assert!(false, "solver disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn token_bucket_never_exceeds_long_run_rate(
        rate in 1e6f64..1e9,
        burst in 1500.0f64..1e6,
        packets in 100usize..2000,
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut t = SimTime::ZERO;
        for _ in 0..packets {
            t = bucket.consume_paced(t, 1500.0);
        }
        let elapsed = t.as_secs_f64();
        if elapsed > 0.0 {
            let achieved = packets as f64 * 1500.0 * 8.0 / elapsed;
            // Long-run rate ≤ configured rate + the burst allowance.
            let slack = burst * 8.0 / elapsed;
            // 1% relative headroom: the bound is exactly tight when the
            // initial burst covers most of the packets.
            prop_assert!(achieved <= (rate + slack) * 1.01,
                "achieved {achieved} vs rate {rate} (+{slack})");
        }
    }

    #[test]
    fn relative_deviation_is_symmetric_bounded(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let d1 = descriptive::relative_deviation(a, b);
        let d2 = descriptive::relative_deviation(b, a);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d1));
    }
}
